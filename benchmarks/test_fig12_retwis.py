"""Figure 12: BokiStore vs MongoDB on Retwis (§7.3).

Paper (8 function / 3 storage nodes; MongoDB with 3 replicas):

- 12a: BokiStore achieves 1.18-1.25x higher throughput at 64-192 clients;
- 12b: at 192 clients, BokiStore's non-transactional reads are *slower*
  (log replay: 1.47 vs 0.86 ms UserLogin) but its transactions are up to
  2.3x faster (GetTimeline 3.35 vs 7.57 ms).
"""

import pytest

from benchmarks._common import (
    emit_artifact,
    lat_ms,
    make_cluster,
    ms,
    print_table,
    run_once,
    throughput,
)
from benchmarks._retwis_common import run_retwis_bokistore, run_retwis_mongo
from repro.baselines.mongodb import MongoDBService

CLIENT_COUNTS = [32, 64, 96]
DURATION = 0.25
NUM_USERS = 100


def run_boki(num_clients):
    cluster = make_cluster(
        num_function_nodes=8, num_storage_nodes=3, index_engines_per_log=8,
        workers_per_node=32,
    )
    return run_retwis_bokistore(
        cluster, num_clients=num_clients, duration=DURATION, num_users=NUM_USERS
    )


def run_mongo(num_clients):
    cluster = make_cluster(
        num_function_nodes=8, num_storage_nodes=3, workers_per_node=32
    )
    MongoDBService(cluster.env, cluster.net, cluster.streams)
    return run_retwis_mongo(
        cluster, num_clients=num_clients, duration=DURATION, num_users=NUM_USERS
    )


def experiment():
    return {
        "BokiStore": {n: run_boki(n) for n in CLIENT_COUNTS},
        "MongoDB": {n: run_mongo(n) for n in CLIENT_COUNTS},
    }


KIND_LABELS = {
    "login": "UserLogin (non-txn read)",
    "profile": "UserProfile (non-txn read)",
    "timeline": "GetTimeline (read-only txn)",
    "tweet": "NewTweet (read-write txn)",
}


@pytest.mark.benchmark(group="fig12")
def test_fig12_retwis_bokistore_vs_mongodb(benchmark):
    results = run_once(benchmark, experiment)

    # 12a: throughput.
    rows = []
    for system in ["MongoDB", "BokiStore"]:
        rows.append(
            [system]
            + [f"{results[system][n].throughput / 1e3:.2f}K" for n in CLIENT_COUNTS]
        )
    ratio_row = ["ratio"] + [
        f"{results['BokiStore'][n].throughput / results['MongoDB'][n].throughput:.2f}x"
        for n in CLIENT_COUNTS
    ]
    rows.append(ratio_row)
    print_table(
        "Figure 12a: Retwis throughput",
        ["", *(f"{n} clients" for n in CLIENT_COUNTS)],
        rows,
    )

    # 12b: latency breakdown at the highest client count.
    top = CLIENT_COUNTS[-1]
    rows = []
    for kind in ["login", "profile", "timeline", "tweet"]:
        mongo = results["MongoDB"][top].by_kind[kind]
        boki = results["BokiStore"][top].by_kind[kind]
        rows.append(
            [KIND_LABELS[kind], ms(mongo.median()), ms(boki.median()),
             ms(mongo.p99()), ms(boki.p99())]
        )
    print_table(
        f"Figure 12b: latencies at {top} clients",
        ["request type", "Mongo p50", "Boki p50", "Mongo p99", "Boki p99"],
        rows,
    )

    metrics = {}
    for system in ("MongoDB", "BokiStore"):
        slug = system.lower()
        for n in CLIENT_COUNTS:
            metrics[f"{slug}.c{n}.throughput"] = throughput(results[system][n].throughput)
        for kind in KIND_LABELS:
            rec = results[system][top].by_kind[kind]
            metrics[f"{slug}.{kind}.p50_ms"] = lat_ms(rec.median())
            metrics[f"{slug}.{kind}.p99_ms"] = lat_ms(rec.p99())
    emit_artifact(
        "fig12_retwis",
        metrics,
        title="Figure 12: BokiStore vs MongoDB on Retwis",
        config={"client_counts": CLIENT_COUNTS, "duration_s": DURATION, "num_users": NUM_USERS},
    )

    # Claim 1: BokiStore's overall throughput beats MongoDB at every scale
    # (paper: 1.18-1.25x).
    for n in CLIENT_COUNTS:
        assert results["BokiStore"][n].throughput > results["MongoDB"][n].throughput

    mongo_top, boki_top = results["MongoDB"][top], results["BokiStore"][top]
    # Claim 2: non-transactional reads are slower on BokiStore (log replay).
    assert boki_top.by_kind["login"].median() > mongo_top.by_kind["login"].median()
    # Claim 3: transactions are faster on BokiStore (paper: up to 2.3x).
    assert boki_top.by_kind["timeline"].median() < mongo_top.by_kind["timeline"].median()
    assert boki_top.by_kind["tweet"].median() < mongo_top.by_kind["tweet"].median()
