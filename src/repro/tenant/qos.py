"""Per-tenant QoS primitives: the deterministic token bucket and the
typed throttle error.

The bucket is lazy-refill arithmetic over virtual time — no kernel
events, no RNG — so an unconfigured or under-rate tenant never perturbs
the simulation (the same transparency discipline as ``repro.admission``).
A throttle is an :class:`~repro.admission.errors.Overloaded` subclass:
the request was never executed, so ``repro.resil`` retries it without
charging the retry budget, floors its backoff on the bucket's
``retry_after`` hint, and leaves circuit breakers untouched.
"""

from __future__ import annotations

from repro.admission.errors import INTERACTIVE, Overloaded


class TenantThrottled(Overloaded):
    """A request shed by its own tenant's rate limit at the gateway."""

    def __init__(self, tenant: str, retry_after: float,
                 priority: str = INTERACTIVE):
        super().__init__(f"tenant.{tenant}", "rate-limit",
                         retry_after=retry_after, priority=priority)
        self.tenant = tenant


class TokenBucket:
    """Deterministic token bucket: ``rate`` tokens/s, capacity ``burst``.

    :meth:`try_take` refills lazily from the elapsed virtual time and
    either takes one token (returns 0.0) or returns the positive
    retry-after until the next token accrues. Plain arithmetic — the
    decision consumes no randomness and schedules nothing.
    """

    __slots__ = ("rate", "burst", "tokens", "last", "taken", "throttled")

    def __init__(self, rate: float, burst: float = 1.0, t0: float = 0.0):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1.0:
            raise ValueError(f"burst must be >= 1 token, got {burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last = t0
        self.taken = 0
        self.throttled = 0

    def try_take(self, now: float) -> float:
        """Take one token if available; returns 0.0 on success or the
        retry-after (seconds until one token accrues) on throttle."""
        if now > self.last:
            self.tokens = min(self.burst, self.tokens + (now - self.last) * self.rate)
            self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.taken += 1
            return 0.0
        self.throttled += 1
        return (1.0 - self.tokens) / self.rate

    def snapshot(self) -> dict:
        return {
            "rate": self.rate,
            "burst": self.burst,
            "taken": self.taken,
            "throttled": self.throttled,
        }
