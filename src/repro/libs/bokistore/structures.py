"""Durable data structures over BokiStore (Tango/vCorfu style).

Tango's headline capability is "distributed data structures over a shared
log" (§2.1, §8); BokiStore gives us JSON objects, and this module builds
the familiar typed structures on top: a map, a counter, a list, and a
register. Each structure is one BokiStore object; operations are logged
updates; reads replay with aux-accelerated views; and because they are
plain objects, they compose with BokiStore transactions (e.g. atomically
move an item between two DurableMaps).

All methods are generator functions (``yield from``). Handles are cheap
and stateless — the durable state lives in the log.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.libs.bokistore.store import BokiStore
from repro.libs.bokistore.txn import Transaction


class DurableCounter:
    """A durable integer counter."""

    def __init__(self, store: BokiStore, name: str):
        self.store = store
        self.name = f"counter:{name}"

    def get(self) -> Generator:
        view = yield from self.store.get_object(self.name)
        return view.get("value", 0)

    def add(self, amount: int = 1) -> Generator:
        yield from self.store.update(
            self.name, [{"op": "inc", "path": "value", "value": amount}]
        )

    def increment(self) -> Generator:
        yield from self.add(1)

    def decrement(self) -> Generator:
        yield from self.add(-1)


class DurableRegister:
    """A durable single-value register."""

    def __init__(self, store: BokiStore, name: str):
        self.store = store
        self.name = f"register:{name}"

    def get(self, default: Any = None) -> Generator:
        view = yield from self.store.get_object(self.name)
        return view.get("value", default)

    def set(self, value: Any) -> Generator:
        yield from self.store.update(
            self.name, [{"op": "set", "path": "value", "value": value}]
        )

    def compare_and_set(self, expected: Any, value: Any) -> Generator:
        """Linearizable CAS via a BokiStore transaction: the commit fails
        if a concurrent write landed in the conflict window."""
        txn = yield from Transaction(self.store).begin()
        obj = yield from txn.get_object(self.name)
        if obj.get("value") != expected:
            yield from txn.abort()
            return False
        obj.set("value", value)
        return (yield from txn.commit())


class DurableMap:
    """A durable string-keyed map.

    Keys are stored under a ``data`` sub-object; dots in user keys are
    escaped so they cannot traverse the JSON path.
    """

    def __init__(self, store: BokiStore, name: str):
        self.store = store
        self.name = f"map:{name}"

    @staticmethod
    def _slot(key: str) -> str:
        return "data." + str(key).replace(".", "·")

    def get(self, key: str, default: Any = None) -> Generator:
        view = yield from self.store.get_object(self.name)
        return view.get(self._slot(key), default)

    def put(self, key: str, value: Any) -> Generator:
        yield from self.store.update(
            self.name, [{"op": "set", "path": self._slot(key), "value": value}]
        )

    def delete(self, key: str) -> Generator:
        yield from self.store.update(
            self.name, [{"op": "delete", "path": self._slot(key)}]
        )

    def contains(self, key: str) -> Generator:
        sentinel = object()
        value = yield from self.get(key, sentinel)
        return value is not sentinel

    def keys(self) -> Generator:
        view = yield from self.store.get_object(self.name)
        data = view.get("data", {}) or {}
        return sorted(k.replace("·", ".") for k in data)

    def items(self) -> Generator:
        view = yield from self.store.get_object(self.name)
        data = view.get("data", {}) or {}
        return sorted((k.replace("·", "."), v) for k, v in data.items())

    def size(self) -> Generator:
        view = yield from self.store.get_object(self.name)
        data = view.get("data", {}) or {}
        return len(data)


class DurableList:
    """A durable append-only-ish list (append, read, pop-front)."""

    def __init__(self, store: BokiStore, name: str):
        self.store = store
        self.name = f"list:{name}"

    def append(self, value: Any) -> Generator:
        yield from self.store.update(
            self.name, [{"op": "push", "path": "items", "value": value}]
        )

    def all(self) -> Generator:
        view = yield from self.store.get_object(self.name)
        return list(view.get("items", []) or [])

    def length(self) -> Generator:
        items = yield from self.all()
        return len(items)

    def get(self, index: int) -> Generator:
        items = yield from self.all()
        return items[index]

    def pop_front(self) -> Generator:
        """Remove and return the first item (None when empty); atomic via
        a transaction so concurrent pops never take the same item."""
        txn = yield from Transaction(self.store).begin()
        obj = yield from txn.get_object(self.name)
        items = list(obj.get("items", []) or [])
        if not items:
            yield from txn.abort()
            return None
        head, rest = items[0], items[1:]
        obj.set("items", rest)
        committed = yield from txn.commit()
        return head if committed else None
