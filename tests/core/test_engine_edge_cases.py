"""Engine-level edge cases: batched reads, consistency waits, retries."""

import pytest

from repro.core import BokiCluster, BokiConfig
from repro.core.types import MetalogPosition
from repro.core.logbook import LogBookError


def make_cluster(**kwargs):
    cluster = BokiCluster(**kwargs)
    cluster.boot()
    return cluster


class TestReadRange:
    def test_range_returns_all_matching(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            seqnums = []
            for i in range(6):
                seqnums.append((yield from book.append({"i": i}, tags=[4])))
            records = yield from book.read_range(tag=4)
            return seqnums, [r.seqnum for r in records], [r.data["i"] for r in records]

        seqnums, got, values = c.drive(flow())
        assert got == seqnums
        assert values == list(range(6))

    def test_range_respects_bounds(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            seqnums = []
            for i in range(5):
                seqnums.append((yield from book.append({"i": i}, tags=[4])))
            records = yield from book.read_range(
                tag=4, min_seqnum=seqnums[1], max_seqnum=seqnums[3]
            )
            return [r.data["i"] for r in records]

        assert c.drive(flow()) == [1, 2, 3]

    def test_range_includes_cached_aux(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            s = yield from book.append("x", tags=[4])
            yield from book.set_auxdata(s, "cached")
            records = yield from book.read_range(tag=4)
            return records[0].auxdata

        assert c.drive(flow()) == "cached"

    def test_range_from_non_indexing_engine(self):
        c = make_cluster(num_function_nodes=4, index_engines_per_log=2)
        non_indexer = next(n for n, e in c.engines.items() if not e.indexes(0))

        def flow():
            writer = c.logbook(1)
            for i in range(3):
                yield from writer.append({"i": i}, tags=[4])
            reader = c.logbook(1, engine=c.engine_of(non_indexer))
            records = yield from reader.read_range(tag=4)
            return [r.data["i"] for r in records]

        assert c.drive(flow()) == [0, 1, 2]

    def test_empty_range(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            return (yield from book.read_range(tag=99))

        assert c.drive(flow()) == []


class TestConsistencyWaits:
    def test_read_waits_for_index_catchup(self):
        """A reader holding a future metalog position must block until the
        index applies it — never see stale state (Figure 5)."""
        c = make_cluster(num_function_nodes=2, index_engines_per_log=2)

        def flow():
            writer = c.logbook(1, engine=c.engine_of("func-0"))
            yield from writer.append("visible", tags=[3])
            # Steal the writer's (advanced) position for a fresh reader on
            # the other engine: its read must return the record even if its
            # local index lags.
            reader = c.logbook(1, engine=c.engine_of("func-1"))
            reader._positions.update(writer._positions)
            record = yield from reader.read_next(tag=3, min_seqnum=0)
            return record.data

        assert c.drive(flow()) == "visible"

    def test_position_from_future_term_satisfied_after_reconfig(self):
        c = make_cluster(num_sequencer_nodes=6)

        def flow():
            book = c.logbook(1)
            yield from book.append("old")
            yield from c.controller.reconfigure()
            yield from book.append("new")
            # Position now references term 2; reading again is fine.
            tail = yield from book.check_tail()
            return tail.data

        assert c.drive(flow()) == "new"


class TestLogBookApi:
    def test_tag_zero_reserved_for_append(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            yield from book.append("x", tags=[0])

        with pytest.raises(LogBookError):
            c.drive(flow())

    def test_read_prev_bounds(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            s1 = yield from book.append("a", tags=[2])
            s2 = yield from book.append("b", tags=[2])
            at_s1 = yield from book.read_prev(tag=2, max_seqnum=s1)
            below_s1 = yield from book.read_prev(tag=2, max_seqnum=s1 - 1)
            return at_s1.data, below_s1

        assert c.drive(flow()) == ("a", None)

    def test_multiple_tags_per_record(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            s = yield from book.append("multi", tags=[5, 6, 7])
            via_5 = yield from book.read_next(tag=5, min_seqnum=0)
            via_7 = yield from book.read_next(tag=7, min_seqnum=0)
            return via_5.seqnum == s and via_7.seqnum == s

        assert c.drive(flow()) is True

    def test_large_tag_values(self):
        c = make_cluster()
        big_tag = (1 << 61) - 7

        def flow():
            book = c.logbook(1)
            yield from book.append("big", tags=[big_tag])
            record = yield from book.read_next(tag=big_tag, min_seqnum=0)
            return record.data

        assert c.drive(flow()) == "big"


class TestCacheBehavior:
    def test_second_read_hits_cache(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            s = yield from book.append("data", tags=[2])
            engine = book.engine
            yield from book.read_next(tag=2, min_seqnum=s)
            hits_before = engine.cache.hits
            yield from book.read_next(tag=2, min_seqnum=s)
            return engine.cache.hits - hits_before

        assert c.drive(flow()) >= 1

    def test_tiny_cache_still_correct(self):
        config = BokiConfig(cache_bytes=2048)
        c = make_cluster(config=config)

        def flow():
            book = c.logbook(1)
            for i in range(20):
                yield from book.append("x" * 500, tags=[2])
            records = yield from book.iter_records(tag=2)
            return len(records)

        assert c.drive(flow()) == 20


class TestAppendRetry:
    def test_append_retries_when_storage_briefly_down(self):
        """A storage node that misses a replicate and comes back lets the
        engine's retry loop complete the append without reconfiguration."""
        c = make_cluster(num_function_nodes=1, num_storage_nodes=3)

        def flow():
            book = c.logbook(1)
            target = c.storage_nodes[0]
            target.node.crash()

            def revive():
                yield c.env.timeout(0.02)
                target.node.restart()
                target.configure(c.term)

            c.env.process(revive())
            seqnum = yield from book.append("persistent")
            record = yield from book.check_tail()
            return record.data

        assert c.drive(flow(), limit=120.0) == "persistent"
