"""Benchmark artifacts, baseline comparator, and the regression-gate CLI."""

import json
import os

import pytest

from repro.core.cluster import BokiCluster
from repro.obs.bench import (
    ADDED,
    ARTIFACT_DIR_ENV,
    CHANGED,
    IMPROVED,
    REGRESSED,
    REMOVED,
    UNCHANGED,
    ArtifactWriter,
    BenchmarkArtifact,
    classify_metric,
    compare_artifacts,
    info,
    lat_ms,
    load_artifact,
    main,
    metric,
    throughput,
    validate_artifact,
)
from repro.obs.critical_path import AttributionAggregate
from repro.workloads.harness import run_closed_loop


# ----------------------------------------------------------------------
# Comparator classification
# ----------------------------------------------------------------------
def test_lower_better_classifications():
    base = lat_ms(0.010)
    assert classify_metric("m", base, lat_ms(0.008)).classification == IMPROVED
    assert classify_metric("m", base, lat_ms(0.012)).classification == REGRESSED
    assert classify_metric("m", base, lat_ms(0.0105)).classification == UNCHANGED


def test_higher_better_classifications():
    base = throughput(100.0)
    assert classify_metric("m", base, throughput(120.0)).classification == IMPROVED
    assert classify_metric("m", base, throughput(80.0)).classification == REGRESSED
    assert classify_metric("m", base, throughput(105.0)).classification == UNCHANGED


def test_tolerance_edge_is_unchanged():
    base = lat_ms(0.010)  # default tolerance 0.10
    exactly = classify_metric("m", base, lat_ms(0.011))
    assert exactly.classification == UNCHANGED
    assert exactly.rel_delta == pytest.approx(0.10)
    beyond = classify_metric("m", base, lat_ms(0.0111))
    assert beyond.classification == REGRESSED


def test_per_metric_tolerance_overrides_default():
    base = lat_ms(0.010, tolerance=0.5)
    assert classify_metric("m", base, lat_ms(0.014)).classification == UNCHANGED
    assert classify_metric("m", base, lat_ms(0.016)).classification == REGRESSED


def test_directionless_added_removed_and_zero_baseline():
    base = info(4.0)
    assert classify_metric("m", base, info(4.2)).classification == UNCHANGED
    assert classify_metric("m", base, info(40.0)).classification == CHANGED
    assert classify_metric("m", None, info(1.0)).classification == ADDED
    assert classify_metric("m", base, None).classification == REMOVED
    zero = metric(0.0, better="lower")
    assert classify_metric("m", zero, metric(0.0, better="lower")).classification == UNCHANGED
    assert classify_metric("m", zero, metric(1.0, better="lower")).classification == REGRESSED


def test_compare_artifacts_covers_both_sides():
    baseline = {"metrics": {"a": lat_ms(0.01), "gone": info(1.0)}}
    current = {"metrics": {"a": lat_ms(0.02), "new": info(1.0)}}
    deltas = compare_artifacts(baseline, current)
    assert [(d.name, d.classification) for d in deltas] == [
        ("a", REGRESSED), ("gone", REMOVED), ("new", ADDED),
    ]


# ----------------------------------------------------------------------
# Artifact schema and determinism
# ----------------------------------------------------------------------
def _run_artifact(seed):
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3, seed=seed
    )
    obs = cluster.enable_observability()
    cluster.boot()
    engines = list(cluster.engines.values())

    def make_op(client):
        book = cluster.logbook(1, engine=engines[client % len(engines)])

        def op():
            yield from book.append("y" * 128)

        return op

    result = run_closed_loop(
        cluster.env, make_op, num_clients=2, duration=0.04, warmup=0.01, obs=obs
    )
    agg = AttributionAggregate()
    agg.add_spans(obs.tracer.spans)
    return BenchmarkArtifact(
        benchmark_id="unit_append",
        title="unit append run",
        seed=seed,
        config={"clients": 2, "duration_s": 0.04},
        metrics={
            "append.p50_ms": lat_ms(result.median_latency()),
            "append.throughput": throughput(result.throughput),
        },
        counters={"completed": float(result.completed)},
        critical_path=agg.to_dict(),
    )


def test_same_seed_runs_are_byte_identical():
    first = _run_artifact(seed=13).to_json()
    second = _run_artifact(seed=13).to_json()
    assert first == second
    # And the payload is schema-valid with a populated attribution block.
    doc = json.loads(first)
    validate_artifact(doc)
    assert doc["critical_path"]["traces"] > 0


def test_validate_artifact_lists_problems():
    doc = _run_artifact(seed=13).to_dict()
    validate_artifact(doc)  # the real thing passes
    broken = dict(doc, schema="bogus/0", metrics={})
    del broken["critical_path"]
    with pytest.raises(ValueError) as excinfo:
        validate_artifact(broken)
    message = str(excinfo.value)
    assert "schema" in message
    assert "metrics" in message
    assert "critical_path" in message


def test_writer_honors_env_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path / "arts"))
    artifact = _run_artifact(seed=13)
    path = ArtifactWriter().write(artifact)
    assert path == str(tmp_path / "arts" / "unit_append.json")
    assert load_artifact(path)["benchmark_id"] == "unit_append"


# ----------------------------------------------------------------------
# CLI gate
# ----------------------------------------------------------------------
@pytest.fixture()
def gate_dirs(tmp_path):
    baselines = tmp_path / "baselines"
    artifacts = tmp_path / "artifacts"
    baselines.mkdir()
    artifacts.mkdir()
    artifact = _run_artifact(seed=13)
    (baselines / "unit_append.json").write_text(artifact.to_json())
    (artifacts / "unit_append.json").write_text(artifact.to_json())
    return baselines, artifacts


def _compare(baselines, artifacts, *extra):
    return main(
        ["bench", "compare", "--baselines", str(baselines), "--artifacts", str(artifacts), *extra]
    )


def test_compare_unchanged_tree_exits_zero(gate_dirs, capsys):
    baselines, artifacts = gate_dirs
    assert _compare(baselines, artifacts) == 0
    assert "no regressions" in capsys.readouterr().out


def test_compare_perturbed_metric_exits_nonzero(gate_dirs, capsys):
    baselines, artifacts = gate_dirs
    doc = load_artifact(str(artifacts / "unit_append.json"))
    doc["metrics"]["append.p50_ms"]["value"] *= 1.5  # regress beyond tolerance
    (artifacts / "unit_append.json").write_text(
        json.dumps(doc, sort_keys=True, indent=2) + "\n"
    )
    assert _compare(baselines, artifacts) == 1
    out = capsys.readouterr().out
    assert "regressed" in out


def test_compare_within_tolerance_perturbation_passes(gate_dirs):
    baselines, artifacts = gate_dirs
    doc = load_artifact(str(artifacts / "unit_append.json"))
    doc["metrics"]["append.p50_ms"]["value"] *= 1.05  # inside the 10% band
    (artifacts / "unit_append.json").write_text(
        json.dumps(doc, sort_keys=True, indent=2) + "\n"
    )
    assert _compare(baselines, artifacts) == 0


def test_compare_missing_artifact_only_fails_strict(gate_dirs, capsys):
    baselines, artifacts = gate_dirs
    os.remove(str(artifacts / "unit_append.json"))
    assert _compare(baselines, artifacts) == 0
    assert "NO ARTIFACT" in capsys.readouterr().out
    assert _compare(baselines, artifacts, "--strict") == 1


def test_report_renders_artifact(gate_dirs, capsys):
    _, artifacts = gate_dirs
    assert main(["bench", "report", str(artifacts / "unit_append.json")]) == 0
    out = capsys.readouterr().out
    assert "unit_append" in out
    assert "critical path" in out


def test_committed_baselines_are_valid():
    baseline_dir = os.path.join(os.path.dirname(__file__), "..", "..", "bench", "baselines")
    entries = [e for e in sorted(os.listdir(baseline_dir)) if e.endswith(".json")]
    assert entries, "no committed baselines"
    for entry in entries:
        doc = load_artifact(os.path.join(baseline_dir, entry))
        assert doc["benchmark_id"] == entry[: -len(".json")]
