"""The tenancy runtime hub: QoS enforcement and per-tenant accounting.

One hub per cluster (``BokiCluster.enable_tenancy``). The gateway calls
into it on every labelled arrival:

1. **Rate limit** — the tenant's deterministic token bucket
   (:class:`~repro.tenant.qos.TokenBucket`) sheds the excess of an
   aggressor tenant *before* any shared resource is touched, as
   :class:`~repro.tenant.qos.TenantThrottled` with a retry-after hint.
2. **Weighted admission** — under overload, the gateway concurrency
   limit is divided into weighted fair shares: a tenant above its share
   faces the full admission check (and sheds first), a tenant below it
   is admitted even at the global limit (bounded overshoot, never
   starved). Composes with ``repro.admission`` without changing it.
3. **Fair dispatch** (opt-in) — above a configured concurrency, admitted
   requests drain through a :class:`~repro.faas.scheduling.DeficitRoundRobin`
   gate, so a flood of one tenant's accepted work cannot monopolize the
   worker fleet. Below the threshold requests pass straight through
   (work-conserving, zero extra events).

The hub also keeps the per-tenant observability state: windowed arrival
and shed rates exported as ``tenant.<id>.rps`` / ``tenant.<id>.shed_rate``
metric gauges (Chrome-trace counter lanes via
:func:`repro.obs.export.tenant_counters`), per-tenant freshness windows
for SLO checks, and demand signals for ``repro.elastic``.

Determinism and transparency: every decision is arithmetic over observed
state. With no tenants registered (or only the default tenant active) no
limit can trip and no event is scheduled, so same-seed runs are
byte-identical with the layer on or off — the PR 6–9 bar.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generator, List, Optional

from repro.admission.errors import INTERACTIVE, Overloaded
from repro.tenant.qos import TenantThrottled, TokenBucket
from repro.tenant.registry import DEFAULT_TENANT, TenantRegistry

#: Width of the sliding window behind the rps / shed-rate gauges.
RATE_WINDOW = 1.0


class _TenantState:
    """Mutable runtime counters for one tenant."""

    __slots__ = ("bucket", "inflight", "inflight_peak", "admitted", "shed",
                 "throttled", "arrivals", "sheds", "slot_held")

    def __init__(self, bucket: Optional[TokenBucket]):
        self.bucket = bucket
        self.inflight = 0
        self.inflight_peak = 0
        self.admitted = 0
        self.shed = 0          # every rejection: throttle + admission
        self.throttled = 0     # rate-limit rejections only
        self.arrivals: deque = deque()
        self.sheds: deque = deque()
        self.slot_held = 0     # fair-dispatch slots currently held

    def rate(self, times: deque, now: float) -> float:
        while times and times[0] < now - RATE_WINDOW:
            times.popleft()
        return len(times) / RATE_WINDOW


class TenancyHub:
    """Runtime QoS enforcement + per-tenant accounting for one cluster."""

    def __init__(self, env, registry: Optional[TenantRegistry] = None,
                 cluster=None):
        self.env = env
        self.registry = registry or TenantRegistry()
        self.cluster = cluster
        self._states: Dict[str, _TenantState] = {}
        #: Per-tenant freshness lag windows (append -> readable seconds),
        #: fed by workloads; summarized for SLO checks and verdicts.
        self.freshness: Dict[str, object] = {}
        # Fair-dispatch gate state (enable_fair_dispatch).
        self.fair_capacity: Optional[int] = None
        self.fair_active = 0
        self.fair_queued_peak = 0
        self._drr = None

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    def state(self, tenant: str) -> _TenantState:
        st = self._states.get(tenant)
        if st is None:
            qos = self.registry.qos(tenant)
            bucket = None
            if qos.rate is not None:
                bucket = TokenBucket(qos.rate, qos.burst, t0=self.env.now)
            st = self._states[tenant] = _TenantState(bucket)
        return st

    def tag_scope(self, tenant: Optional[str]):
        return self.registry.tag_scope(tenant)

    # ------------------------------------------------------------------
    # Gateway hooks (arrival -> admit -> dispatch -> done)
    # ------------------------------------------------------------------
    def on_arrival(self, tenant: str, priority: str = INTERACTIVE) -> None:
        """Account one labelled arrival and enforce the tenant's rate
        limit; raises :class:`TenantThrottled` on shed."""
        now = self.env.now
        st = self.state(tenant)
        st.arrivals.append(now)
        self._record_rate(tenant, st, now)
        if st.bucket is not None:
            retry_after = st.bucket.try_take(now)
            if retry_after > 0.0:
                self._count_shed(tenant, st, now, priority, "rate-limit",
                                 throttle=True)
                raise TenantThrottled(tenant, retry_after, priority=priority)

    def admission_check(self, controller, inflight: int, tenant: str,
                        priority: str = INTERACTIVE,
                        deadline: Optional[float] = None) -> None:
        """The weighted-fair composition with ``repro.admission``.

        A tenant at or above its weighted share of the concurrency limit
        faces the full admission check (sheds first under overload); a
        tenant below its share bypasses the concurrency check (never
        starved — overshoot is bounded by one request per under-share
        tenant). Deadline-based rejection applies to everyone.
        """
        limit = max(1, int(controller.limiter.limit))
        share = self._fair_share(tenant, limit)
        st = self.state(tenant)
        over_share = st.inflight >= share
        effective = inflight if over_share else 0
        try:
            controller.check(effective, priority=priority, deadline=deadline)
        except Overloaded as exc:
            now = self.env.now
            self._count_shed(tenant, st, now, priority, exc.reason)
            exc.tenant = tenant
            raise

    def on_admit(self, tenant: str) -> None:
        st = self.state(tenant)
        st.admitted += 1
        st.inflight += 1
        if st.inflight > st.inflight_peak:
            st.inflight_peak = st.inflight

    def acquire_dispatch(self, tenant: str) -> Generator:
        """Fair-dispatch gate: pass through below capacity, otherwise
        park in the tenant's DRR queue until a slot frees up. Yields no
        event on the uncontended path."""
        st = self.state(tenant)
        if self.fair_capacity is None:
            return
        if self.fair_active < self.fair_capacity:
            self.fair_active += 1
            st.slot_held += 1
            return
        event = self.env.event()
        self._drr.enqueue(tenant, event, cost=1.0)
        queued = len(self._drr)
        if queued > self.fair_queued_peak:
            self.fair_queued_peak = queued
        yield event
        self.fair_active += 1
        st.slot_held += 1

    def on_done(self, tenant: str) -> None:
        st = self.state(tenant)
        st.inflight -= 1
        if st.slot_held > 0:
            st.slot_held -= 1
            self.fair_active -= 1
            if self._drr is not None:
                event = self._drr.next()
                if event is not None:
                    event.succeed()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def enable_fair_dispatch(self, capacity: int, quantum: float = 1.0) -> None:
        """Engage the DRR dispatch gate above ``capacity`` concurrent
        dispatches (size it at the worker fleet's saturation point).
        Call before driving load — the gate assumes symmetric
        acquire/release pairs."""
        from repro.faas.scheduling import DeficitRoundRobin

        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.fair_capacity = capacity
        self._drr = DeficitRoundRobin(quantum=quantum)
        for tenant in self.registry.tenants():
            self._drr.set_weight(tenant, self.registry.weight(tenant))

    @property
    def drr(self):
        return self._drr

    # ------------------------------------------------------------------
    # Fair shares
    # ------------------------------------------------------------------
    def _fair_share(self, tenant: str, limit: int) -> int:
        """``tenant``'s weighted share of ``limit`` over the currently
        active tenants (inflight > 0, plus the arriving tenant)."""
        weights = {tenant: self.registry.weight(tenant)}
        for name, st in self._states.items():
            if st.inflight > 0 and name not in weights:
                weights[name] = self.registry.weight(name)
        total = sum(weights.values())
        return max(1, int(limit * weights[tenant] / total))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _metrics(self):
        obs = getattr(self.cluster, "obs", None) if self.cluster else None
        if obs is not None and obs.enabled:
            return obs.metrics
        return None

    def _record_rate(self, tenant: str, st: _TenantState, now: float) -> None:
        metrics = self._metrics()
        if metrics is not None:
            metrics.gauge(f"tenant.{tenant}.rps").record(
                now, st.rate(st.arrivals, now)
            )

    def _count_shed(self, tenant: str, st: _TenantState, now: float,
                    priority: str, reason: str, throttle: bool = False) -> None:
        st.shed += 1
        st.sheds.append(now)
        if throttle:
            st.throttled += 1
            monitor = getattr(self.cluster, "monitor", None) if self.cluster else None
            if monitor is not None:
                monitor.on_admission(now, False, priority,
                                     f"tenant.{tenant}:{reason}")
        metrics = self._metrics()
        if metrics is not None:
            metrics.gauge(f"tenant.{tenant}.shed_rate").record(
                now, st.rate(st.sheds, now)
            )

    def observe_freshness(self, tenant: str, t: float, lag: float) -> None:
        """Record one append->readable freshness sample for ``tenant``
        (fed by workloads that measure their own read-your-append lag);
        forwarded to the monitor hub's freshness monitor when present."""
        from repro.obs.monitor import SampleWindow

        window = self.freshness.get(tenant)
        if window is None:
            window = self.freshness[tenant] = SampleWindow()
        window.record(t, lag)
        monitor = getattr(self.cluster, "monitor", None) if self.cluster else None
        if monitor is not None and monitor.freshness is not None:
            monitor.freshness.observe_tenant(tenant, t, lag)

    def freshness_summary(self) -> Dict[str, dict]:
        out: Dict[str, dict] = {}
        for tenant in sorted(self.freshness):
            window = self.freshness[tenant]
            stats = window.stats()
            out[tenant] = {
                "samples": stats["count"],
                "mean_s": round(stats["mean"], 9) if stats["count"] else None,
                "p99_s": (round(window.quantile(0.99), 9)
                          if stats["count"] else None),
            }
        return out

    # ------------------------------------------------------------------
    # Signals + verdict snapshot
    # ------------------------------------------------------------------
    def demand(self) -> Dict[str, float]:
        """Per-tenant arrival rates over the last window — the demand
        signal ``repro.elastic`` policies can scale on."""
        now = self.env.now
        return {
            tenant: round(st.rate(st.arrivals, now), 6)
            for tenant, st in sorted(self._states.items())
        }

    def total_shed(self) -> int:
        return sum(st.shed for st in self._states.values())

    def fairness_snapshot(self) -> dict:
        """Deterministic per-tenant fairness block for verdict artifacts:
        who was admitted, who was shed, and what fraction of all sheds
        each tenant absorbed."""
        total_shed = self.total_shed()
        tenants = {}
        for tenant in sorted(self._states):
            st = self._states[tenant]
            tenants[tenant] = {
                "weight": self.registry.weight(tenant),
                "admitted": st.admitted,
                "shed": st.shed,
                "throttled": st.throttled,
                "inflight_peak": st.inflight_peak,
                "shed_share": (round(st.shed / total_shed, 6)
                               if total_shed else 0.0),
                "bucket": st.bucket.snapshot() if st.bucket else None,
            }
        doc = {
            "tenants": tenants,
            "total_shed": total_shed,
            "fair_dispatch": {
                "capacity": self.fair_capacity,
                "queued_peak": self.fair_queued_peak,
                "served": (dict(sorted(self._drr.served.items()))
                           if self._drr is not None else {}),
            },
        }
        if self.freshness:
            doc["freshness"] = self.freshness_summary()
        return doc


def resolve_tenant(tenant: Optional[str], hub: Optional[TenancyHub]) -> Optional[str]:
    """The tenant label an invocation should carry.

    With tenancy enabled, unlabelled invocations belong to the reserved
    default tenant; with it disabled, labels stay off the payload
    entirely (byte-identical seeds) and naming a non-default tenant is
    an error rather than a silently unenforced contract.
    """
    if hub is not None:
        tenant = tenant or DEFAULT_TENANT
        hub.registry.require(tenant)
        return tenant
    if tenant is not None and tenant != DEFAULT_TENANT:
        raise ValueError(
            f"tenant {tenant!r} given but tenancy is not enabled: call "
            f"BokiCluster.enable_tenancy() first"
        )
    return None
