"""Tests for the simulated external services (DynamoDB, MongoDB,
Cloudburst, SQS, Pulsar, Redis)."""

import pytest

from repro.baselines.cloudburst import CloudburstClient, CloudburstService
from repro.baselines.dynamodb import ConditionFailedError, DynamoDBClient, DynamoDBService
from repro.baselines.mongodb import MongoDBClient, MongoDBService, WriteConflictError
from repro.baselines.pulsar import PulsarBroker, PulsarClient
from repro.baselines.redis import RedisClient, RedisService
from repro.baselines.sqs import SQSClient, SQSService
from repro.sim import Environment, Network, Node
from repro.sim.randvar import RandomStreams


@pytest.fixture
def world():
    env = Environment()
    streams = RandomStreams(seed=17)
    net = Network(env, streams)
    client_node = net.register(Node(env, "app"))
    return env, net, streams, client_node


def drive(env, gen, limit=120.0):
    return env.run_until(env.process(gen), limit=limit)


class TestDynamoDB:
    def test_put_get(self, world):
        env, net, streams, node = world
        DynamoDBService(env, net, streams)
        db = DynamoDBClient(net, node)

        def flow():
            yield from db.put("t", "k", {"Value": 1})
            return (yield from db.get("t", "k"))

        assert drive(env, flow()) == {"Value": 1}

    def test_get_missing(self, world):
        env, net, streams, node = world
        DynamoDBService(env, net, streams)
        db = DynamoDBClient(net, node)

        def flow():
            return (yield from db.get("t", "nope"))

        assert drive(env, flow()) is None

    def test_conditional_put_absent(self, world):
        env, net, streams, node = world
        DynamoDBService(env, net, streams)
        db = DynamoDBClient(net, node)

        def flow():
            yield from db.put("t", "k", {"v": 1}, condition=("absent",))
            yield from db.put("t", "k", {"v": 2}, condition=("absent",))

        with pytest.raises(ConditionFailedError):
            drive(env, flow())

    def test_version_guard(self, world):
        env, net, streams, node = world
        DynamoDBService(env, net, streams)
        db = DynamoDBClient(net, node)

        def flow():
            yield from db.update("t", "k", set_attrs={"Version": 5, "Value": "a"})
            # Stale write (version 3 < 5) must fail.
            yield from db.update(
                "t", "k", set_attrs={"Version": 3, "Value": "stale"},
                condition=("attr_lt_or_absent", "Version", 3),
            )

        with pytest.raises(ConditionFailedError):
            drive(env, flow())

    def test_attr_lt_or_absent_on_missing_item(self, world):
        env, net, streams, node = world
        DynamoDBService(env, net, streams)
        db = DynamoDBClient(net, node)

        def flow():
            yield from db.update(
                "t", "new", set_attrs={"Version": 1, "Value": "x"},
                condition=("attr_lt_or_absent", "Version", 1),
            )
            return (yield from db.get("t", "new"))

        assert drive(env, flow())["Value"] == "x"

    def test_atomic_counter(self, world):
        env, net, streams, node = world
        DynamoDBService(env, net, streams)
        db = DynamoDBClient(net, node)

        def flow():
            a = yield from db.update("t", "ctr", add_attrs={"n": 1})
            b = yield from db.update("t", "ctr", add_attrs={"n": 1})
            return a["n"], b["n"]

        assert drive(env, flow()) == (1, 2)

    def test_latency_is_milliseconds(self, world):
        env, net, streams, node = world
        DynamoDBService(env, net, streams)
        db = DynamoDBClient(net, node)

        def flow():
            yield from db.get("t", "k")

        drive(env, flow())
        assert 0.5e-3 < env.now < 20e-3


class TestMongoDB:
    def test_upsert_find(self, world):
        env, net, streams, node = world
        MongoDBService(env, net, streams)
        db = MongoDBClient(net, node)

        def flow():
            yield from db.upsert("users", "u1", {"name": "alice"})
            return (yield from db.find("users", "u1"))

        assert drive(env, flow()) == {"name": "alice"}

    def test_update_ops(self, world):
        env, net, streams, node = world
        MongoDBService(env, net, streams)
        db = MongoDBClient(net, node)

        def flow():
            yield from db.update("users", "u1", [{"op": "set", "path": "n", "value": 1}])
            yield from db.update("users", "u1", [{"op": "inc", "path": "n", "value": 4}])
            return (yield from db.find("users", "u1"))

        assert drive(env, flow()) == {"n": 5}

    def test_txn_commit(self, world):
        env, net, streams, node = world
        MongoDBService(env, net, streams)
        db = MongoDBClient(net, node)

        def flow():
            yield from db.upsert("acct", "a", {"bal": 10})
            txn = yield from db.txn_begin()
            yield from db.txn_update("acct", "a", [{"op": "inc", "path": "bal", "value": -3}])

        # wrong arg order should raise TypeError before any sim logic
        with pytest.raises(TypeError):
            drive(env, flow())

    def test_txn_commit_correct(self, world):
        env, net, streams, node = world
        MongoDBService(env, net, streams)
        db = MongoDBClient(net, node)

        def flow():
            yield from db.upsert("acct", "a", {"bal": 10})
            txn = yield from db.txn_begin()
            yield from db.txn_update(txn, "acct", "a", [{"op": "inc", "path": "bal", "value": -3}])
            yield from db.txn_commit(txn)
            return (yield from db.find("acct", "a"))

        assert drive(env, flow()) == {"bal": 7}

    def test_txn_snapshot_reads(self, world):
        env, net, streams, node = world
        MongoDBService(env, net, streams)
        db = MongoDBClient(net, node)

        def flow():
            yield from db.upsert("c", "k", {"v": 1})
            txn = yield from db.txn_begin()
            yield from db.txn_update(txn, "c", "k", [{"op": "set", "path": "v", "value": 9}])
            inside = yield from db.txn_find(txn, "c", "k")
            outside = yield from db.find("c", "k")
            yield from db.txn_abort(txn)
            return inside, outside

        assert drive(env, flow()) == ({"v": 9}, {"v": 1})

    def test_write_conflict_aborts(self, world):
        env, net, streams, node = world
        MongoDBService(env, net, streams)
        db = MongoDBClient(net, node)

        def flow():
            yield from db.upsert("c", "k", {"v": 1})
            txn = yield from db.txn_begin()
            yield from db.txn_update(txn, "c", "k", [{"op": "set", "path": "v", "value": 2}])
            # Concurrent non-txn write bumps the version.
            yield from db.upsert("c", "k", {"v": 99})
            yield from db.txn_commit(txn)

        with pytest.raises(WriteConflictError):
            drive(env, flow())


class TestCloudburst:
    def test_put_get(self, world):
        env, net, streams, node = world
        CloudburstService(env, net, streams)
        cb = CloudburstClient(net, node)

        def flow():
            yield from cb.put("k", "v")
            return (yield from cb.get("k"))

        assert drive(env, flow()) == "v"

    def test_stale_read_from_other_cache(self, world):
        """Causal consistency: a second site's cached value lags a put
        until propagation."""
        env, net, streams, node = world
        CloudburstService(env, net, streams)
        node2 = net.register(Node(env, "app2"))
        cb1 = CloudburstClient(net, node)
        cb2 = CloudburstClient(net, node2)

        def flow():
            yield from cb1.put("k", "v1")
            yield from cb2.get("k")        # warms app2's cache with v1
            yield from cb1.put("k", "v2")
            stale = yield from cb2.get("k")  # still v1 (not propagated)
            yield env.timeout(0.02)
            fresh = yield from cb2.get("k")
            return stale, fresh

        assert drive(env, flow()) == ("v1", "v2")

    def test_read_your_writes_same_site(self, world):
        env, net, streams, node = world
        CloudburstService(env, net, streams)
        cb = CloudburstClient(net, node)

        def flow():
            yield from cb.put("k", "v1")
            yield from cb.put("k", "v2")
            return (yield from cb.get("k"))

        assert drive(env, flow()) == "v2"


class TestSQS:
    def test_send_receive(self, world):
        env, net, streams, node = world
        SQSService(env, net, streams)
        sqs = SQSClient(net, node)

        def flow():
            yield from sqs.send("q", "m1")
            result = yield from sqs.receive("q")
            return result

        message, delay = drive(env, flow())
        assert message == "m1"
        assert delay > 0

    def test_receive_empty(self, world):
        env, net, streams, node = world
        SQSService(env, net, streams)
        sqs = SQSClient(net, node)

        def flow():
            return (yield from sqs.receive("q"))

        assert drive(env, flow()) is None

    def test_fifo_per_queue(self, world):
        env, net, streams, node = world
        SQSService(env, net, streams)
        sqs = SQSClient(net, node)

        def flow():
            for i in range(3):
                yield from sqs.send("q", i)
            out = []
            for _ in range(3):
                m, _ = yield from sqs.receive("q")
                out.append(m)
            return out

        assert drive(env, flow()) == [0, 1, 2]


class TestPulsar:
    def test_publish_receive_across_partitions(self, world):
        env, net, streams, node = world
        brokers = [PulsarBroker(env, net, streams, f"broker-{i}") for i in range(2)]
        client = PulsarClient(net, node, [b.node.name for b in brokers], num_partitions=2)

        def flow():
            for i in range(4):
                yield from client.publish("t", i)
            out = []
            for partition in range(2):
                while True:
                    result = yield from client.receive("t", partition)
                    if result is None:
                        break
                    out.append(result[0])
            return sorted(out)

        assert drive(env, flow()) == [0, 1, 2, 3]


class TestRedis:
    def test_set_get(self, world):
        env, net, streams, node = world
        RedisService(env, net, streams)
        r = RedisClient(net, node)

        def flow():
            yield from r.set("k", {"nested": True})
            return (yield from r.get("k"))

        assert drive(env, flow()) == {"nested": True}

    def test_get_missing(self, world):
        env, net, streams, node = world
        RedisService(env, net, streams)
        r = RedisClient(net, node)

        def flow():
            return (yield from r.get("missing"))

        assert drive(env, flow()) is None
