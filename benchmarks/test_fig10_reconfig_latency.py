"""Figure 10: append latency across a reconfiguration (§7.1).

Paper: Boki is reconfigured onto a new (pre-provisioned) set of sequencer
nodes at t=0; append latency spikes briefly and recovers to normal within
100 ms; the sealing protocol itself takes 15.7 ms (nmeta=3) / 18.1 ms
(nmeta=5).

Here: an append-only run with a controller-triggered reconfiguration
mid-way; latencies are bucketed into a timeline around the event.
"""

import pytest

from benchmarks._common import emit_artifact, lat_ms, make_cluster, ms, print_table, run_once
from repro.core import BokiConfig
from repro.sim.metrics import percentile

RECONFIG_AT = 0.3
DURATION = 0.6
BUCKET = 0.05


def run_for_nmeta(nmeta: int):
    config = BokiConfig(nmeta=nmeta)
    cluster = make_cluster(
        num_function_nodes=4,
        num_storage_nodes=4,
        num_sequencer_nodes=2 * nmeta,  # spares pre-provisioned
        config=config,
    )
    from repro.workloads.microbench import RECORD_1KB

    env = cluster.env
    series = []
    engines = list(cluster.engines.values())

    def client(index):
        from repro.sim.kernel import Interrupt

        book = cluster.logbook(1, engine=engines[index % len(engines)])
        try:
            while env.now < env_zero + DURATION:
                started = env.now
                yield from book.append(RECORD_1KB)
                series.append((env.now - env_zero, env.now - started))
        except Interrupt:
            return

    def reconfigure():
        yield env.timeout(RECONFIG_AT)
        spares = [f"seq-{i}" for i in range(nmeta, 2 * nmeta)]
        yield from cluster.controller.reconfigure(sequencer_names=spares)
        # The drained sequencers are decommissioned (the paper moves the
        # metalog onto a fresh set): cut every link to them. Post-reconfig
        # appends must not depend on the old trio, so the latency recovery
        # asserted below is measured with them genuinely unreachable.
        for i in range(nmeta):
            cluster.net.isolate(f"seq-{i}")

    env_zero = env.now
    procs = [env.process(client(i)) for i in range(24)]
    reconfig = env.process(reconfigure())
    stopper = env.timeout(DURATION)
    env.run_until(stopper, limit=env.now + 120.0)
    for proc in procs:
        if proc.is_alive:
            proc.interrupt("done")
    return series, cluster.controller.last_reconfig_duration


def timeline(series, p):
    buckets = []
    t = 0.0
    while t < DURATION:
        values = [lat for at, lat in series if t <= at < t + BUCKET]
        buckets.append((t - RECONFIG_AT, percentile(values, p) if values else None))
        t += BUCKET
    return buckets


def experiment():
    return {nmeta: run_for_nmeta(nmeta) for nmeta in (3, 5)}


@pytest.mark.benchmark(group="fig10")
def test_fig10_append_latency_during_reconfiguration(benchmark):
    results = run_once(benchmark, experiment)

    for nmeta, (series, seal_duration) in results.items():
        rows = [
            [f"{t:+.2f}s", ms(median) if median is not None else "-",
             ms(p99) if p99 is not None else "-"]
            for (t, median), (_, p99) in zip(timeline(series, 50), timeline(series, 99))
        ]
        print_table(
            f"Figure 10: append latency timeline (nmeta={nmeta}; reconfig at t=0)",
            ["t", "median", "p99"],
            rows,
        )
        print(f"reconfiguration protocol took {ms(seal_duration)}")

    metrics = {}
    for nmeta, (series, seal_duration) in results.items():
        steady = [lat for at, lat in series if at < RECONFIG_AT - BUCKET]
        recovered = [lat for at, lat in series if at > RECONFIG_AT + 0.1]
        metrics[f"nmeta{nmeta}.seal_ms"] = lat_ms(seal_duration)
        metrics[f"nmeta{nmeta}.steady_p50_ms"] = lat_ms(percentile(steady, 50))
        metrics[f"nmeta{nmeta}.recovered_p50_ms"] = lat_ms(percentile(recovered, 50))
    emit_artifact(
        "fig10_reconfig_latency",
        metrics,
        title="Figure 10: append latency across a reconfiguration",
        config={"reconfig_at_s": RECONFIG_AT, "duration_s": DURATION, "bucket_s": BUCKET},
    )

    for nmeta, (series, seal_duration) in results.items():
        before = [lat for at, lat in series if at < RECONFIG_AT - BUCKET]
        spike = [
            lat for at, lat in series if RECONFIG_AT <= at < RECONFIG_AT + 2 * BUCKET
        ]
        after = [lat for at, lat in series if at > RECONFIG_AT + 0.1]
        # Claim 1: the reconfiguration produces a visible latency spike.
        assert max(spike) > 3 * percentile(before, 50)
        # Claim 2: latency recovers to normal within 100 ms.
        assert percentile(after, 50) < 2 * percentile(before, 50)
        # Claim 3: the protocol itself completes in tens of ms at most.
        assert seal_duration < 0.1
