"""The observability on/off switch.

Instrumented components (network, engines, storage, sequencers, gateway,
function nodes) hold an ``obs`` attribute that is :data:`DISABLED` by
default. Hot paths guard all span/metric work with one attribute check::

    if self.obs.enabled:
        ...

so a build that never enables observability pays a single boolean read
per instrumented operation and allocates nothing.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.profile import KernelProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer
from repro.sim.kernel import Environment


class ObsRecorder:
    """An enabled recorder: tracer + metrics registry (+ optional profiler)."""

    def __init__(self, env: Environment, profile: bool = False, profile_bucket: float = 1.0):
        self.enabled = True
        self.env = env
        self.tracer = Tracer(env)
        self.metrics = MetricsRegistry()
        self.profiler: Optional[KernelProfiler] = (
            KernelProfiler(env, bucket=profile_bucket) if profile else None
        )

    def enable_profiling(self, bucket: float = 1.0) -> KernelProfiler:
        if self.profiler is None:
            self.profiler = KernelProfiler(self.env, bucket=bucket)
        return self.profiler


class _Disabled:
    """Shared no-op stand-in; only its ``enabled`` flag is ever read."""

    __slots__ = ()
    enabled = False
    tracer = None
    metrics = None
    profiler = None

    def __repr__(self) -> str:
        return "<observability disabled>"


#: The module-wide disabled singleton components default to.
DISABLED = _Disabled()
