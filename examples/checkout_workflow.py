"""BokiFlow example: an exactly-once checkout workflow (§5.1).

Run:  python examples/checkout_workflow.py

The §2.1 motivating scenario: a checkout must decrement inventory, charge
the customer, and record the order — and a crash in the middle must not
double-charge or lose the order. The script runs the workflow, injects a
crash right after the payment step, re-executes with the same workflow id
(Beldi-style recovery), and shows that every effect applied exactly once.
"""

from repro.baselines.dynamodb import DynamoDBClient, DynamoDBService
from repro.core import BokiCluster
from repro.libs.bokiflow import BokiFlowRuntime, WorkflowTxn
from repro.libs.bokiflow.env import WorkflowCrash


def main():
    cluster = BokiCluster(num_function_nodes=4, num_storage_nodes=3)
    DynamoDBService(cluster.env, cluster.net, cluster.streams)
    cluster.boot()
    runtime = BokiFlowRuntime(cluster)

    crash_once = {"armed": True}

    def charge_payment(env, arg):
        # Charging a card is the canonical "externally visible effect":
        # env.write's logged step makes it idempotent across re-executions.
        charges = (yield from env.read("payments", arg["customer"])) or 0
        yield from env.write("payments", arg["customer"], charges + arg["amount"])
        return f"charge-{env.workflow_id}"

    def checkout(env, arg):
        # Reserve inventory transactionally (locks over the LogBook).
        txn = WorkflowTxn(env)
        ok = yield from txn.acquire([("inventory", arg["item"])])
        if not ok:
            return {"status": "busy"}
        stock = yield from txn.read("inventory", arg["item"])
        if stock is None or stock <= 0:
            yield from txn.abort()
            return {"status": "out-of-stock"}
        txn.write("inventory", arg["item"], stock - 1)
        yield from txn.commit()

        receipt = yield from env.invoke("charge-payment", arg)

        if crash_once["armed"]:
            crash_once["armed"] = False
            raise WorkflowCrash("node died right after charging!")

        yield from env.write("orders", f"order-{env.workflow_id}",
                             {"item": arg["item"], "receipt": receipt})
        return {"status": "confirmed", "receipt": receipt}

    runtime.register_workflow("charge-payment", charge_payment)
    runtime.register_workflow("checkout", checkout)

    def scenario():
        db = DynamoDBClient(cluster.net, cluster.client_node)
        yield from db.update("inventory", "espresso-machine", set_attrs={"Value": 5})

        request = {"customer": "ada", "item": "espresso-machine", "amount": 499}
        wf_id = runtime.new_workflow_id("checkout")
        print(f"starting workflow {wf_id} ...")
        try:
            yield from runtime.start_workflow("checkout", request, book_id=7, workflow_id=wf_id)
        except WorkflowCrash as crash:
            print(f"CRASH mid-workflow: {crash}")

        print(f"re-executing workflow {wf_id} (same id -> exactly-once) ...")
        result = yield from runtime.start_workflow(
            "checkout", request, book_id=7, workflow_id=wf_id
        )
        print(f"result: {result}")

        stock = yield from db.get("inventory", "espresso-machine")
        charges = yield from db.get("payments", "ada")
        order = yield from db.get("orders", f"order-{wf_id}")
        print(f"inventory:    {stock['Value']}   (5 - exactly one reservation)")
        print(f"ada charged:  {charges['Value']} (exactly one charge of 499)")
        print(f"order stored: {order['Value']}")
        assert stock["Value"] == 4
        assert charges["Value"] == 499

    cluster.drive(scenario())
    print("exactly-once semantics held across the crash.")


if __name__ == "__main__":
    main()
