"""Named chaos scenarios.

Each scenario builds its own cluster from the given seed, drives client
load while a :class:`~repro.chaos.faults.FaultInjector` replays a fault
plan, then runs the offline checkers. Scenarios return the raw material
for a verdict artifact: the checks, the applied fault timeline, and a few
deterministic stats.

Scenarios marked ``expect_violations`` run the same workload against the
non-fault-tolerant baseline (``repro.baselines.unsafe``) and *must* be
flagged by the checkers — they prove the checkers have teeth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.baselines.dynamodb import DynamoDBService
from repro.chaos.checkers import (
    CheckResult,
    check_exactly_once,
    check_metalog,
    check_queue_delivery,
    check_store_linearizability,
)
from repro.chaos.faults import FaultInjector, FaultPlan
from repro.chaos.history import History
from repro.core.cluster import BokiCluster
from repro.libs.bokiqueue.queue import BokiQueue
from repro.libs.bokistore.store import BokiStore


@dataclass
class ScenarioResult:
    checks: List[CheckResult]
    timeline: List[dict]
    stats: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class Scenario:
    name: str
    description: str
    fn: Callable[[int], ScenarioResult]
    expect_violations: bool = False
    fast: bool = False


SCENARIOS: Dict[str, Scenario] = {}


def _scenario(name: str, description: str, expect_violations: bool = False,
              fast: bool = False):
    def deco(fn):
        SCENARIOS[name] = Scenario(name, description, fn, expect_violations, fast)
        return fn
    return deco


# ----------------------------------------------------------------------
# Shared load helpers
# ----------------------------------------------------------------------
def _store_load(cluster: BokiCluster, history: History, num_clients: int = 3,
                ops_per_client: int = 25, num_keys: int = 4,
                think_base: float = 0.02, book_id: int = 1):
    """Client processes doing put/get on shared keys through ONE engine.

    All clients share an engine because BokiStore's linearizability claim
    is per-index: cross-engine reads only get read-your-writes/monotonic
    reads (§4.4), which a linearizability checker would rightly reject.
    """
    env = cluster.env
    engine = cluster.engines["func-0"]
    rng = cluster.streams.stream("chaos-load")

    def client(i: int):
        store = BokiStore(cluster.logbook(book_id, engine=engine))
        store.history = history
        store.client_name = f"client-{i}"
        for j in range(ops_per_client):
            key = f"obj-{j % num_keys}"
            try:
                if rng.random() < 0.5:
                    yield from store.put(key, {"writer": f"c{i}", "n": j})
                else:
                    yield from store.get_object(key)
            except Exception:
                # The op stays indeterminate in the history; the client
                # moves on, as a retrying application would.
                pass
            yield env.timeout(think_base + rng.random() * think_base)

    return [env.process(client(i), name=f"chaos-client-{i}")
            for i in range(num_clients)]


def _drive_all(cluster: BokiCluster, procs, limit: float = 300.0) -> None:
    cluster.env.run_until(cluster.env.all_of(procs), limit=limit)


def _sanity(conditions: List) -> CheckResult:
    """Scenario self-check: did the faults actually overlap the load?

    A scenario whose workload finishes before its fault window closes is
    not testing what it claims, even if every guarantee checker passes —
    so overlap failures are verdict failures, not silent no-ops.
    """
    violations = [message for ok, message in conditions if not ok]
    return CheckResult("scenario-sanity", violations, len(conditions))


def _ok_ops_after(history: History, t: float) -> int:
    return sum(1 for op in history.ops if op.status == "ok" and op.t_invoke >= t)


def _base_stats(cluster: BokiCluster, history: History) -> Dict[str, float]:
    return {
        "virtual_time_s": round(cluster.env.now, 6),
        "ops_recorded": len(history),
        "messages_sent": cluster.net.messages_sent,
    }


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
@_scenario(
    "crash-primary-sequencer",
    "Crash the primary sequencer mid-append under store load; the failure "
    "detector seals the term and reconfigures; linearizability and metalog "
    "consistency must survive.",
)
def crash_primary_sequencer(seed: int) -> ScenarioResult:
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=4,
        seed=seed, use_coord_sessions=True,
    )
    cluster.boot()
    history = History(cluster.env)
    initial_term = cluster.controller.current_term.term_id
    primary = cluster.term.assignment(0).primary
    crash_at = 0.5
    plan = FaultPlan().crash(crash_at, primary)
    injector = FaultInjector(cluster.env, cluster.net, plan)
    injector.start()
    # Appends stall from the crash until the session-based failure detector
    # seals the term and the controller reconfigures (~session timeout),
    # so the load must carry enough operations to ride through the stall
    # and keep operating in the new term.
    procs = _store_load(cluster, history, num_clients=3, ops_per_client=30)
    _drive_all(cluster, procs, limit=300.0)
    final_term = cluster.controller.current_term.term_id
    ops_after = _ok_ops_after(history, crash_at)
    checks = [
        check_store_linearizability(history),
        check_metalog(cluster),
        _sanity([
            (final_term > initial_term,
             f"no reconfiguration happened: term stayed {initial_term}"),
            (ops_after > 0, "no operation completed after the crash"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["initial_term"] = initial_term
    stats["final_term"] = final_term
    stats["ops_ok_after_crash"] = ops_after
    return ScenarioResult(checks, injector.timeline, stats)


@_scenario(
    "partition-storage-under-load",
    "Partition one storage node away from the rest of the cluster during "
    "store load, then heal; appends stall on the replication quorum but "
    "no acknowledged write may be lost or reordered.",
)
def partition_storage_under_load(seed: int) -> ScenarioResult:
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3,
        seed=seed,
    )
    cluster.boot()
    history = History(cluster.env)
    victim = cluster.storage_nodes[0].name
    others = sorted(set(cluster.net.nodes) - {victim})
    part_at, heal_at = 0.3, 0.9
    plan = (
        FaultPlan()
        .partition_groups(part_at, [[victim], others])
        .heal_all(heal_at)
    )
    injector = FaultInjector(cluster.env, cluster.net, plan)
    injector.start()
    procs = _store_load(cluster, history, num_clients=3, ops_per_client=25)
    _drive_all(cluster, procs, limit=300.0)
    ops_after = _ok_ops_after(history, heal_at)
    checks = [
        check_store_linearizability(history),
        check_metalog(cluster),
        _sanity([
            (len(injector.timeline) == 2, "partition/heal did not both fire"),
            (ops_after > 0, "no operation completed after the heal"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["ops_ok_after_heal"] = ops_after
    return ScenarioResult(checks, injector.timeline, stats)


@_scenario(
    "storage-node-flap",
    "Crash and recover a storage node twice under load (restart hooks "
    "re-configure it into the current term); replication retries must "
    "preserve linearizability without a reconfiguration.",
)
def storage_node_flap(seed: int) -> ScenarioResult:
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3,
        seed=seed,
    )
    cluster.boot()
    history = History(cluster.env)
    snode = cluster.storage_nodes[0]
    # Recovery: records survive the crash (durable disk); the restart hook
    # re-installs the term so progress reporting resumes.
    snode.node.restart_hooks.append(lambda n, s=snode: s.configure(s.term_config))
    last_restart = 1.2
    plan = (
        FaultPlan()
        .crash(0.3, snode.name)
        .restart(0.6, snode.name)
        .crash(0.9, snode.name)
        .restart(last_restart, snode.name)
    )
    injector = FaultInjector(cluster.env, cluster.net, plan)
    injector.start()
    procs = _store_load(cluster, history, num_clients=3, ops_per_client=25)
    _drive_all(cluster, procs, limit=300.0)
    ops_after = _ok_ops_after(history, last_restart)
    checks = [
        check_store_linearizability(history),
        check_metalog(cluster),
        _sanity([
            (snode.node.crash_count == 2,
             f"expected 2 crashes, saw {snode.node.crash_count}"),
            (len(injector.timeline) == 4, "not all crash/restart events fired"),
            (ops_after > 0, "no operation completed after the final restart"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["storage_crashes"] = snode.node.crash_count
    stats["ops_ok_after_final_restart"] = ops_after
    return ScenarioResult(checks, injector.timeline, stats)


@_scenario(
    "slow-primary-sequencer",
    "Degrade the primary sequencer's CPU (every message it handles takes "
    "2 ms longer) for a window; ordering slows but linearizability and "
    "metalog invariants must hold.",
    fast=True,
)
def slow_primary_sequencer(seed: int) -> ScenarioResult:
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3,
        seed=seed,
    )
    cluster.boot()
    history = History(cluster.env)
    primary = cluster.term.assignment(0).primary
    restore_at = 0.9
    plan = (
        FaultPlan()
        .slowdown(0.2, primary, 2e-3)
        .slowdown(restore_at, primary, 0.0)
    )
    injector = FaultInjector(cluster.env, cluster.net, plan)
    injector.start()
    procs = _store_load(cluster, history, num_clients=2, ops_per_client=30)
    _drive_all(cluster, procs, limit=300.0)
    ops_after = _ok_ops_after(history, restore_at)
    checks = [
        check_store_linearizability(history),
        check_metalog(cluster),
        _sanity([
            (len(injector.timeline) == 2, "slowdown/restore did not both fire"),
            (ops_after > 0, "no operation completed after the restore"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["ops_ok_after_restore"] = ops_after
    return ScenarioResult(checks, injector.timeline, stats)


# ----------------------------------------------------------------------
# BokiFlow exactly-once (and the unsafe baseline that breaks it)
# ----------------------------------------------------------------------
def _flow_crash_retry(seed: int, runtime_cls) -> ScenarioResult:
    cluster = BokiCluster(num_function_nodes=2, seed=seed)
    db = DynamoDBService(cluster.env, cluster.net, cluster.streams)
    cluster.boot()
    runtime = runtime_cls(cluster)

    def body(env, arg):
        current = (yield from env.read("t", "counter")) or 0
        yield from env.write("t", "counter", current + 1)   # step 0
        yield from env.write("t", "audit", f"run-{arg}")    # step 1
        yield from env.write("t", "final", "done")          # step 2
        return (yield from env.read("t", "counter"))

    runtime.register_workflow("wf", body)

    # Crash the first execution after step 1 has applied its effect.
    state = {"crashed": False}

    def hook(step):
        from repro.libs.bokiflow.env import WorkflowCrash
        if step == 2 and not state["crashed"]:
            state["crashed"] = True
            raise WorkflowCrash("injected mid-workflow crash")

    runtime.fault_hook = hook
    wf_id = "chaos-wf-1"
    outcome = {}

    def flow():
        from repro.libs.bokiflow.env import WorkflowCrash
        try:
            yield from runtime.start_workflow("wf", 1, book_id=1, workflow_id=wf_id)
            outcome["first"] = "completed"
        except WorkflowCrash:
            outcome["first"] = "crashed"
        outcome["result"] = yield from runtime.start_workflow(
            "wf", 1, book_id=1, workflow_id=wf_id
        )

    cluster.drive(flow(), limit=300.0)
    expected = [(wf_id, 0), (wf_id, 1), (wf_id, 2)]
    checks = [
        check_exactly_once(db.effect_log, expected),
        _sanity([
            (outcome.get("first") == "crashed",
             "first execution did not crash at the fault hook"),
            (outcome.get("result") is not None, "retry did not complete"),
        ]),
    ]
    stats = {
        "virtual_time_s": round(cluster.env.now, 6),
        "first_execution": 1.0 if outcome.get("first") == "crashed" else 0.0,
        "counter_result": float(outcome.get("result") or 0),
        "effects_applied": len(db.effect_log),
    }
    timeline = [{"t": 0.0, "action": "fault_hook",
                 "args": ["crash-before-step-2-first-execution"]}]
    return ScenarioResult(checks, timeline, stats)


@_scenario(
    "flow-crash-retry",
    "Crash a BokiFlow workflow mid-execution and re-execute it with the "
    "same workflow id; every database effect must apply exactly once "
    "(Figure 6a's test-and-append + idempotent writes).",
    fast=True,
)
def flow_crash_retry(seed: int) -> ScenarioResult:
    from repro.libs.bokiflow import BokiFlowRuntime
    return _flow_crash_retry(seed, BokiFlowRuntime)


@_scenario(
    "unsafe-flow-crash-retry",
    "The same crash-and-retry workload against repro.baselines.unsafe "
    "(no logging): the re-executed prefix re-applies its writes and the "
    "exactly-once checker MUST flag duplicated effects.",
    expect_violations=True,
    fast=True,
)
def unsafe_flow_crash_retry(seed: int) -> ScenarioResult:
    from repro.baselines.unsafe import UnsafeRuntime
    return _flow_crash_retry(seed, UnsafeRuntime)


# ----------------------------------------------------------------------
# BokiQueue under link chaos
# ----------------------------------------------------------------------
@_scenario(
    "queue-link-chaos",
    "Drop, duplicate, and delay metalog broadcasts between the primary "
    "sequencer and its subscribers for the whole run while producing and "
    "consuming a 2-shard queue (with a mid-run consumer replacement); "
    "delivery must be no-loss and no-duplicate.",
    fast=True,
)
def queue_link_chaos(seed: int) -> ScenarioResult:
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3,
        seed=seed,
    )
    cluster.boot()
    env = cluster.env
    history = History(env)
    engine = cluster.engines["func-0"]
    queue = BokiQueue(cluster.logbook(1, engine=engine), "chaos-q", num_shards=2)
    queue.history = history
    primary = cluster.term.assignment(0).primary
    subscribers = sorted(
        list(cluster.engines) + [s.name for s in cluster.storage_nodes]
    )
    plan = FaultPlan()
    for sub in subscribers:
        plan.link_fault(0.2, primary, sub, drop=0.10, dup=0.20, delay=0.5e-3,
                        symmetric=False)
    injector = FaultInjector(env, cluster.net, plan)
    injector.start()

    total = 40
    produced = []

    def producer_proc():
        producer = queue.producer()
        for i in range(total):
            value = f"msg-{i:04d}"
            yield from producer.push(value)
            produced.append(value)
            yield env.timeout(0.02)

    got: Dict[int, int] = {0: 0, 1: 0}

    def consumer_proc(shard: int, rounds: int):
        consumer = queue.consumer(shard)
        for _ in range(rounds):
            value = yield from consumer.pop_wait(poll_interval=0.01, max_polls=50)
            if value is None:
                return
            got[shard] += 1

    # Phase 1: pop roughly half while faults are active; consumer 0 is
    # then REPLACED by a fresh instance (cold start: rebuilds its shard
    # view from the log and aux caches).
    phase1 = [
        env.process(producer_proc(), name="chaos-producer"),
        env.process(consumer_proc(0, 10), name="chaos-consumer-0"),
        env.process(consumer_proc(1, 10), name="chaos-consumer-1"),
    ]
    _drive_all(cluster, phase1, limit=300.0)

    def drain_proc(shard: int):
        consumer = queue.consumer(shard)  # fresh: no local view
        while True:
            value = yield from consumer.pop()
            if value is None:
                return
            got[shard] += 1

    phase2 = [env.process(drain_proc(s), name=f"chaos-drain-{s}") for s in (0, 1)]
    _drive_all(cluster, phase2, limit=300.0)

    checks = [
        check_queue_delivery(history, drained=True),
        check_metalog(cluster),
        _sanity([
            (len(injector.timeline) == len(subscribers),
             "not every link fault was installed"),
            (len(produced) == total, "producer did not finish"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["pushed"] = len(produced)
    stats["popped"] = got[0] + got[1]
    return ScenarioResult(checks, injector.timeline, stats)


def fast_scenarios() -> List[str]:
    return sorted(name for name, s in SCENARIOS.items() if s.fast)


def all_scenarios() -> List[str]:
    return sorted(SCENARIOS)
