"""Tenancy observes, never perturbs unlabelled traffic.

Mirrors the admission layer's transparency suite: a run that never
enables tenancy and a run that enables it but labels nothing must be
byte-identical (virtual clock, message count, operation history) and
leave every RNG stream untouched. This is the invariant that makes
``enable_tenancy()`` safe to leave on: unlabelled invocations resolve
to the implicit default tenant — identity log space, no rate bucket,
no DRR queue — so the hub attributes the traffic without perturbing it.
"""

import json

import pytest

from repro.chaos.history import History
from repro.chaos.scenarios import (
    _drive_all,
    _gateway_store_clients,
    _register_store_fn,
)
from repro.core.cluster import BokiCluster

pytestmark = [pytest.mark.chaos, pytest.mark.tenant]


def _run(tenancy, labelled=False, seed=5):
    """Identical fault-free gateway store workload; returns the cluster
    and a comparable fingerprint of the whole run."""
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3,
        num_sequencer_nodes=3, seed=seed,
    )
    if tenancy:
        hub = cluster.enable_tenancy()
        if labelled:
            hub.registry.register("acme")
    cluster.boot()
    history = History(cluster.env)
    _register_store_fn(cluster)
    procs = _gateway_store_clients(cluster, history, num_clients=2,
                                   ops_per_client=10)
    _drive_all(cluster, procs, limit=300.0)
    fingerprint = json.dumps({
        "now": round(cluster.env.now, 9),
        "messages_sent": cluster.net.messages_sent,
        "history": history.to_dicts(),
    }, sort_keys=True)
    return cluster, fingerprint


def test_tenancy_invisible_to_an_unlabelled_run():
    _, plain = _run(tenancy=False)
    enabled_cluster, enabled = _run(tenancy=True)
    assert plain == enabled
    # The hub attributed every op to the implicit default tenant (not a
    # vacuous pass) and perturbed none of it: no bucket, no sheds.
    hub = enabled_cluster.tenancy
    assert hub is not None
    snap = hub.fairness_snapshot()["tenants"]
    assert set(snap) == {"default"}
    assert snap["default"]["admitted"] == 20
    assert snap["default"]["bucket"] is None
    assert hub.total_shed() == 0


def test_registered_but_idle_tenants_change_nothing():
    """Registering tenants nobody uses must also be a no-op: log-space
    assignment is bookkeeping until a labelled invocation arrives."""
    _, plain = _run(tenancy=False)
    _, enabled = _run(tenancy=True, labelled=True)
    assert plain == enabled


def test_tenancy_consumes_no_rng():
    """Same streams created, every stream's state identical — scoping is
    arithmetic and QoS state is built lazily, never from draws."""
    states = []
    for tenancy in (False, True):
        cluster, _ = _run(tenancy=tenancy)
        states.append({
            name: rng.getstate()
            for name, rng in cluster.streams._streams.items()
        })
    assert sorted(states[0]) == sorted(states[1])
    for name in states[0]:
        assert states[0][name] == states[1][name], f"stream {name} diverged"


def test_labelled_traffic_is_actually_counted():
    """Sanity against a vacuous transparency pass: the moment traffic is
    labelled, the hub sees it."""
    cluster, _ = _run(tenancy=True, labelled=True)
    hub = cluster.tenancy

    def burst():
        result = yield from cluster.invoke(
            "store-op", {"op": "put", "key": "k", "value": {"v": 1}},
            book_id=2, tenant="acme")
        return result

    cluster.drive(burst())
    snap = hub.fairness_snapshot()["tenants"]["acme"]
    assert snap["admitted"] == 1
    assert snap["shed"] == 0
