"""A central registry of named counters, gauges, and histograms.

Subsumes the ad-hoc per-component dataclasses of ``repro.core.stats``:
every metric lives under one dotted name (``engine.func-0.appends``),
so experiments and tests query a single namespace instead of walking
component objects. :func:`registry_from_cluster` snapshots a running
:class:`~repro.core.cluster.BokiCluster` into a registry;
``repro.core.stats.collect_stats`` remains as a typed view built on the
same underlying component counters.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sim.metrics import LatencyRecorder


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, cache bytes).

    ``set``/``add`` keep the plain scalar behaviour. :meth:`record`
    additionally appends a ``(time, value)`` sample so consumers that
    need *windowed* views (autoscaling policies, availability SLOs) can
    query :meth:`MetricsRegistry.gauge_window` instead of re-implementing
    their own ring buffers. Samples must be recorded in non-decreasing
    time order (virtual time is monotone, so this is free).
    """

    __slots__ = ("name", "help", "value", "samples")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0.0
        self.samples: List[Tuple[float, float]] = []

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def record(self, t: float, value: float) -> None:
        """Set the gauge and remember the timestamped sample."""
        if self.samples and t < self.samples[-1][0]:
            raise ValueError(
                f"gauge {self.name!r} samples must be time-ordered "
                f"({t} < {self.samples[-1][0]})"
            )
        self.value = value
        self.samples.append((t, value))


def window_stats(
    samples: List[Tuple[float, float]],
    window: Optional[float] = None,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> Dict[str, Any]:
    """Mean/max/min/last over the time-ordered ``(t, value)`` samples with
    ``start <= t <= end``.

    ``end`` defaults to the last sample's time; ``window`` is a lookback
    duration ending at ``end`` (combined with ``start``, the later of the
    two bounds wins). Empty selections return ``count == 0`` with None
    statistics — callers decide what "no data" means.
    """
    if end is None:
        end = samples[-1][0] if samples else 0.0
    if window is not None:
        lookback = end - window
        start = lookback if start is None else max(start, lookback)
    lo = 0 if start is None else bisect_left(samples, (start, -float("inf")))
    hi = bisect_left(samples, (end, float("inf")))
    values = [v for _, v in samples[lo:hi]]
    if not values:
        return {"count": 0, "mean": None, "max": None, "min": None, "last": None}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "max": max(values),
        "min": min(values),
        "last": values[-1],
    }


class Histogram(LatencyRecorder):
    """A distribution of samples; percentile math shared with the
    benchmark harness (sorted once per summary, cached between)."""

    __slots__ = ()

    def __init__(self, name: str, help: str = ""):
        super().__init__(name)
        self.help = help

    # LatencyRecorder rejects negatives (they are latencies); a general
    # histogram accepts any float.
    def record(self, value: float) -> None:
        self.samples.append(value)
        self._ordered = None

    observe = record


class MetricsRegistry:
    """Get-or-create registry of metrics keyed by dotted name."""

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(name, Histogram, help)

    def _get_or_create(self, name: str, cls, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def get(self, name: str) -> Any:
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Tuple[str, Any]]:
        return iter(sorted(self._metrics.items()))

    def names(self, prefix: str = "") -> List[str]:
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def value(self, name: str) -> float:
        """Scalar value of a counter/gauge (histograms have summaries)."""
        metric = self._metrics[name]
        if isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is a histogram; use .get(name).summary()")
        return metric.value

    def gauge_window(
        self,
        name: str,
        window: Optional[float] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Windowed statistics (count/mean/max/min/last) over a gauge's
        recent :meth:`Gauge.record` samples; see :func:`window_stats` for
        the window semantics. ``set``/``add`` updates are not sampled —
        only explicit ``record`` calls enter the window."""
        metric = self._metrics[name]
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name!r} is not a gauge")
        return window_stats(metric.samples, window=window, start=start, end=end)

    def snapshot(self) -> Dict[str, Any]:
        """All metrics as plain values: scalars for counters/gauges,
        summary dicts for histograms (sorted by name — deterministic)."""
        out: Dict[str, Any] = {}
        for name, metric in self:
            if isinstance(metric, Histogram):
                out[name] = metric.summary() if len(metric) else {"count": 0}
            else:
                out[name] = metric.value
        return out

    def render_text(self) -> str:
        """Plain-text dump, one metric per line, sorted by name."""
        lines = []
        for name, metric in self:
            if isinstance(metric, Histogram):
                if len(metric):
                    s = metric.summary()
                    lines.append(
                        f"{name} count={s['count']} median={s['median']:.6g} "
                        f"p99={s['p99']:.6g} mean={s['mean']:.6g} max={s['max']:.6g}"
                    )
                else:
                    lines.append(f"{name} count=0")
            else:
                lines.append(f"{name} {metric.value:g}")
        return "\n".join(lines)


def registry_from_cluster(cluster, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Snapshot a :class:`BokiCluster`'s component counters into a registry.

    Covers everything ``repro.core.stats`` reports — appends, reads, cache
    behaviour, index sizes (including per-index lookup counts), storage
    record counts, sequencer entries — under stable dotted names.
    """
    reg = registry or MetricsRegistry()
    reg.gauge("cluster.virtual_time").set(cluster.env.now)
    term = cluster.controller.current_term
    reg.gauge("cluster.term_id").set(term.term_id if term else 0)
    reg.gauge("cluster.reconfigurations").set(cluster.controller.reconfig_count)
    reg.gauge("net.messages_sent").set(cluster.net.messages_sent)
    # Queue-state gauges (``queue.*`` names are point-in-time: the
    # benchmark harness deliberately excludes them from artifact
    # counters; the Chrome-trace exporter renders their recorded samples
    # as counter events).
    gateway = getattr(cluster, "gateway", None)
    if gateway is not None:
        reg.gauge("queue.gateway.inflight").set(gateway.inflight)
        reg.gauge("queue.gateway.inflight_peak").set(gateway.inflight_peak)
    for fnode in getattr(cluster, "function_nodes", []):
        reg.gauge(f"queue.worker.{fnode.name}.depth").set(fnode.queue_depth)
    for name, engine in sorted(cluster.engines.items()):
        reg.gauge(f"queue.engine.{name}.depth").set(engine.appends_inflight)
        reg.gauge(f"queue.engine.{name}.peak").set(engine.appends_inflight_peak)
    for node in cluster.storage_nodes:
        reg.gauge(f"queue.storage.{node.name}.pending").set(node.pending_writes)
        reg.gauge(f"queue.storage.{node.name}.peak").set(node.pending_writes_peak)
    for name, engine in sorted(cluster.engines.items()):
        prefix = f"engine.{name}"
        reg.gauge(f"{prefix}.appends_started").set(engine.appends_started)
        reg.gauge(f"{prefix}.reads_served").set(engine.reads_served)
        reg.gauge(f"{prefix}.remote_reads").set(engine.remote_reads)
        reg.gauge(f"{prefix}.cache.hits").set(engine.cache.hits)
        reg.gauge(f"{prefix}.cache.misses").set(engine.cache.misses)
        reg.gauge(f"{prefix}.cache.used_bytes").set(engine.cache.used_bytes)
        reg.gauge(f"{prefix}.cache.evictions").set(engine.cache.evictions)
        for log_id, index in sorted(engine.indices.items()):
            reg.gauge(f"{prefix}.index.{log_id}.records").set(index.record_count)
            reg.gauge(f"{prefix}.index.{log_id}.lookups").set(index.lookups)
    for node in cluster.storage_nodes:
        prefix = f"storage.{node.name}"
        reg.gauge(f"{prefix}.records").set(len(node._by_seqnum))
        reg.gauge(f"{prefix}.aux_backups").set(len(node._aux_backup))
        reg.gauge(f"{prefix}.trimmed").set(node.trimmed_count)
    for node in cluster.sequencer_nodes:
        prefix = f"sequencer.{node.name}"
        reg.gauge(f"{prefix}.entries_appended").set(node.entries_appended)
        reg.gauge(f"{prefix}.replicas").set(len(node.replicas))
        reg.gauge(f"{prefix}.sealed_replicas").set(
            sum(1 for r in node.replicas.values() if r.sealed)
        )
    # Per-tenant counters (repro.tenant): admitted/shed totals per tenant
    # under stable names; the windowed rps/shed_rate *time series* live in
    # the live obs registry (tenant.<id>.rps samples), recorded by the
    # hub as traffic arrives.
    tenancy = getattr(cluster, "tenancy", None)
    if tenancy is not None:
        for tenant, stats in tenancy.fairness_snapshot()["tenants"].items():
            prefix = f"tenant.{tenant}"
            reg.gauge(f"{prefix}.admitted").set(stats["admitted"])
            reg.gauge(f"{prefix}.shed").set(stats["shed"])
            reg.gauge(f"{prefix}.throttled").set(stats["throttled"])
            reg.gauge(f"{prefix}.inflight_peak").set(stats["inflight_peak"])
    return reg
