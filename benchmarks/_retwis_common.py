"""Shared Retwis runners for the §7.3 / §7.5 experiments."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.baselines.mongodb import MongoDBClient, MongoDBService
from repro.core.cluster import BokiCluster
from repro.libs.bokistore import BokiStore
from repro.sim.kernel import Interrupt
from repro.sim.metrics import LatencyRecorder
from repro.workloads.retwis import MIXTURE, RetwisBokiStore, RetwisMongo, retwis_op


class RetwisRun:
    """Results of one Retwis run: total throughput + per-kind latencies."""

    def __init__(self, duration: float):
        self.duration = duration
        self.completed = 0
        self.errors = 0
        self.by_kind: Dict[str, LatencyRecorder] = {
            kind: LatencyRecorder(kind) for kind, _ in MIXTURE
        }

    @property
    def throughput(self) -> float:
        return self.completed / self.duration


def _run_mixture(
    cluster: BokiCluster,
    backend_for_client: Callable[[int], object],
    num_clients: int,
    duration: float,
    warmup: float = 0.05,
) -> RetwisRun:
    env = cluster.env
    run = RetwisRun(duration)
    rng = cluster.streams.stream("retwis-mixture")
    t_start = env.now + warmup
    t_end = t_start + duration
    stop = {"flag": False}

    def client(index: int):
        backend = backend_for_client(index)
        i = 0
        try:
            while not stop["flag"]:
                kind, op = retwis_op(backend, rng, i)
                i += 1
                started = env.now
                try:
                    yield env.process(op, name=f"retwis-{kind}")
                except Interrupt:
                    raise
                except Exception:  # noqa: BLE001
                    run.errors += 1
                    continue
                if t_start <= env.now <= t_end:
                    run.by_kind[kind].record(env.now - started)
                    run.completed += 1
        except Interrupt:
            return

    procs = [env.process(client(i), name=f"retwis-client-{i}") for i in range(num_clients)]
    stopper = env.timeout(warmup + duration)
    env.run_until(stopper, limit=env.now + (warmup + duration) * 100 + 600.0)
    stop["flag"] = True
    for proc in procs:
        if proc.is_alive:
            proc.interrupt("done")
    env.run(until=env.now)
    return run


def run_retwis_bokistore(
    cluster: BokiCluster,
    num_clients: int,
    duration: float,
    num_users: int = 100,
    local_fraction: float = 1.0,
    fill_aux: bool = True,
    aux_channel: Optional[Callable[[BokiStore], None]] = None,
    book_id: int = 60,
    history: int = 0,
) -> RetwisRun:
    """Retwis over BokiStore.

    ``local_fraction`` binds that share of clients to engines that index
    the log (local reads); the rest read through remote engines (Table 6).
    ``aux_channel`` rewires aux storage (Table 5's Redis variant);
    ``fill_aux=False`` disables the replay optimization entirely.
    ``history`` pre-appends that many updates per user/timeline object,
    modelling a long-running deployment whose objects have accumulated
    writes (the Table 5 duration axis).
    """
    log_id = cluster.term.log_for_book(book_id)
    indexers = [e for e in cluster.engines.values() if e.indexes(log_id)]
    others = [e for e in cluster.engines.values() if not e.indexes(log_id)]

    def make_store(engine) -> BokiStore:
        store = BokiStore(cluster.logbook(book_id, engine=engine), fill_aux=fill_aux)
        if aux_channel is not None:
            aux_channel(store)
        return store

    # Initialize the dataset through a local store.
    init_backend = RetwisBokiStore(make_store(indexers[0]), num_users=num_users)
    cluster.drive(init_backend.init_users(), limit=3600.0)
    if history:
        def build_history():
            store = init_backend.store
            for u in range(num_users):
                for i in range(history):
                    yield from store.update(
                        f"user:{u}",
                        [{"op": "set", "path": "last_seen", "value": i}],
                    )
                    yield from store.update(
                        f"timeline:{u}",
                        [{"op": "push", "path": "posts", "value": 0}],
                    )

        cluster.drive(build_history(), limit=36000.0)

        # Steady state of a long-running deployment: every serving
        # engine's caches are warm (one read per object per engine).
        def warm(engine):
            store = make_store(engine)
            for u in range(num_users):
                yield from store.get_object(f"user:{u}")
                yield from store.get_object(f"timeline:{u}")

        for engine in indexers:
            cluster.drive(warm(engine), limit=36000.0)

    backends: Dict[int, RetwisBokiStore] = {}

    def backend_for_client(index: int) -> RetwisBokiStore:
        if index not in backends:
            local_quota = round(local_fraction * num_clients)
            if index < local_quota or not others:
                engine = indexers[index % len(indexers)]
            else:
                engine = others[index % len(others)]
            backends[index] = RetwisBokiStore(make_store(engine), num_users=num_users)
        return backends[index]

    return _run_mixture(cluster, backend_for_client, num_clients, duration)


def run_retwis_mongo(
    cluster: BokiCluster,
    num_clients: int,
    duration: float,
    num_users: int = 100,
) -> RetwisRun:
    """Retwis over simulated MongoDB (requires MongoDBService registered)."""
    client = MongoDBClient(cluster.net, cluster.client_node)
    init_backend = RetwisMongo(client, num_users=num_users)
    cluster.drive(init_backend.init_users(), limit=3600.0)
    backends: Dict[int, RetwisMongo] = {}

    def backend_for_client(index: int) -> RetwisMongo:
        if index not in backends:
            node = cluster.function_nodes[index % len(cluster.function_nodes)].node
            backends[index] = RetwisMongo(
                MongoDBClient(cluster.net, node), num_users=num_users
            )
        return backends[index]

    return _run_mixture(cluster, backend_for_client, num_clients, duration)
