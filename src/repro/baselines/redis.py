"""Simulated Redis: the remote aux-data store ablation (§7.5, Table 5).

"To demonstrate the efficiency of Boki's storage mechanism for auxiliary
data, we modify Boki to store auxiliary data in a dedicated Redis
instance." Boki's co-located record cache wins by ~1.17x because every
Redis aux access is a network round trip.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from repro.baselines.latency import REDIS_CONCURRENCY, REDIS_GET, REDIS_PUT
from repro.sim.kernel import Environment
from repro.sim.network import Network, RpcError
from repro.sim.node import Node
from repro.sim.randvar import RandomStreams
from repro.sim.sync import Resource


class RedisService:
    def __init__(self, env: Environment, net: Network, streams: RandomStreams, name: str = "redis"):
        self.env = env
        self.net = net
        self.node = net.register(Node(env, name, cpu_capacity=REDIS_CONCURRENCY))
        self._rng = streams.stream(f"{name}-latency")
        self._slots = Resource(env, capacity=REDIS_CONCURRENCY)
        self.data: Dict[Any, Any] = {}
        self.op_count = 0
        self.node.handle("redis.get", self._h_get)
        self.node.handle("redis.set", self._h_set)

    def _service(self, model) -> Generator:
        self.op_count += 1
        req = self._slots.request()
        yield req
        try:
            yield self.env.timeout(model.sample(self._rng))
        finally:
            self._slots.release(req)

    def _h_get(self, payload: dict) -> Generator:
        yield from self._service(REDIS_GET)
        return self.data.get(payload["key"])

    def _h_set(self, payload: dict) -> Generator:
        yield from self._service(REDIS_PUT)
        self.data[payload["key"]] = payload["value"]
        return True


class RedisClient:
    def __init__(self, net: Network, node: Node, service_name: str = "redis"):
        self.net = net
        self.node = node
        self.service_name = service_name

    def _call(self, method: str, payload: dict) -> Generator:
        try:
            result = yield self.net.rpc(self.node, self.service_name, method, payload, timeout=30.0)
        except RpcError as exc:
            raise exc.cause from None
        return result

    def get(self, key: Any) -> Generator:
        return (yield from self._call("redis.get", {"key": key}))

    def set(self, key: Any, value: Any) -> Generator:
        return (yield from self._call("redis.set", {"key": key, "value": value}))


def redis_aux_channel(store, client: RedisClient) -> None:
    """Rewire a BokiStore to keep auxiliary data in Redis instead of the
    engine's record cache (the Table 5 'AuxData w/ Redis' configuration)."""

    def aux_get(record):
        value = yield from client.get(("aux", record.seqnum))
        return value

    def aux_put(record, aux):
        yield from client.set(("aux", record.seqnum), aux)

    store.aux_get = aux_get
    store.aux_put = aux_put
