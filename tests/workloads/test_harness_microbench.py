"""Tests for the load harness and LogBook microbenchmarks."""

import pytest

from repro.core import BokiCluster
from repro.workloads.harness import run_closed_loop, run_open_loop
from repro.workloads.microbench import append_and_read, append_latency_timeline, append_only


@pytest.fixture
def cluster():
    c = BokiCluster(num_function_nodes=4, num_storage_nodes=4)
    c.boot()
    return c


class TestClosedLoop:
    def test_counts_and_latencies(self, cluster):
        def make_op(i):
            def op():
                yield cluster.env.timeout(0.01)

            return op

        result = run_closed_loop(cluster.env, make_op, num_clients=2, duration=0.5)
        # 2 clients x ~50 ops of 10ms each in 0.5s.
        assert 80 <= result.completed <= 110
        assert result.median_latency() == pytest.approx(0.01, rel=0.01)

    def test_errors_counted_not_fatal(self, cluster):
        calls = {"n": 0}

        def make_op(i):
            def op():
                calls["n"] += 1
                yield cluster.env.timeout(0.01)
                if calls["n"] % 2 == 0:
                    raise RuntimeError("flaky")

            return op

        result = run_closed_loop(cluster.env, make_op, num_clients=1, duration=0.3)
        assert result.errors > 0
        assert result.completed > 0

    def test_throughput_scales_with_clients(self, cluster):
        def make_op(i):
            def op():
                yield cluster.env.timeout(0.01)

            return op

        one = run_closed_loop(cluster.env, make_op, num_clients=1, duration=0.3)
        four = run_closed_loop(cluster.env, make_op, num_clients=4, duration=0.3)
        assert four.completed > 3 * one.completed


class TestOpenLoop:
    def test_offered_rate_met_when_fast(self, cluster):
        rng = cluster.streams.stream("openloop-test")

        def make_op(i):
            def op():
                yield cluster.env.timeout(0.001)

            return op()

        result = run_open_loop(cluster.env, make_op, rate=500.0, duration=0.5, rng=rng)
        assert result.throughput == pytest.approx(500.0, rel=0.25)

    def test_latency_grows_under_overload(self, cluster):
        """A capacity-1 resource at 2x its service rate: open-loop latency
        should blow past the service time."""
        from repro.sim.sync import Resource

        rng = cluster.streams.stream("openloop-test2")
        bottleneck = Resource(cluster.env, capacity=1)

        def make_op(i):
            def op():
                req = bottleneck.request()
                yield req
                try:
                    yield cluster.env.timeout(0.01)  # 100/s capacity
                finally:
                    bottleneck.release(req)

            return op()

        result = run_open_loop(cluster.env, make_op, rate=200.0, duration=0.5, rng=rng)
        assert result.p99_latency() > 0.05


class TestAppendOnly:
    def test_produces_throughput(self, cluster):
        result = append_only(cluster, num_clients=16, duration=0.2)
        assert result.completed > 100
        assert result.errors == 0
        assert 0.0005 < result.median_latency() < 0.01

    def test_many_books(self, cluster):
        result = append_only(
            cluster, num_clients=8, duration=0.2, book_ids=list(range(20))
        )
        assert result.completed > 50

    def test_custom_logbook_factory(self, cluster):
        from repro.baselines.fixed_sharding import fixed_sharding_logbook

        result = append_only(
            cluster,
            num_clients=8,
            duration=0.2,
            book_ids=[1, 2, 3],
            logbook_factory=lambda client, book: fixed_sharding_logbook(cluster, book),
        )
        assert result.completed > 50


class TestAppendAndRead:
    def test_read_latency_hierarchy(self):
        """Local cache hit < local cache miss < remote engine (Table 3's
        defining ordering)."""
        def fresh():
            c = BokiCluster(num_function_nodes=8, num_storage_nodes=4, index_engines_per_log=4)
            c.boot()
            return c

        hit = append_and_read(fresh(), num_clients=8, duration=0.2)
        miss = append_and_read(fresh(), num_clients=8, duration=0.2, evict_between_reads=True)
        remote = append_and_read(fresh(), num_clients=8, duration=0.2, force_remote_engine=True)
        assert (
            hit["read"].median_latency()
            < miss["read"].median_latency()
            < remote["read"].median_latency()
        )

    def test_reads_counted(self, cluster):
        result = append_and_read(cluster, num_clients=4, duration=0.2)
        # 4 reads per append.
        assert result["read"].completed >= 3 * result["append"].completed


class TestTimeline:
    def test_timeline_records_latencies_over_time(self, cluster):
        series = append_latency_timeline(cluster, num_clients=8, duration=0.3)
        assert len(series["append"]) > 50
        times = [t for t, _ in series["append"].points]
        assert times == sorted(times)

    def test_mixed_read_workload(self, cluster):
        series = append_latency_timeline(cluster, num_clients=8, duration=0.3, read_ratio=4)
        assert len(series["read"]) > len(series["append"])
