"""Seeded random variates for simulations.

Each logical consumer of randomness gets its own named stream so that adding
a new consumer does not perturb the draws seen by existing ones — a standard
technique for keeping discrete-event experiments comparable across runs.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import List, Sequence


class RandomStreams:
    """A family of independent, deterministically seeded RNG streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict = {}

    def stream(self, name: str) -> random.Random:
        """Return the named stream, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomStreams":
        """Derive an independent child family (for sub-experiments)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))


def zipf_weights(n: int, s: float) -> List[float]:
    """Normalized Zipf weights for ranks 1..n with exponent ``s``.

    Used by Table 8's skewed LogBook-popularity workloads.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if s < 0:
        raise ValueError("exponent must be non-negative")
    raw = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def weighted_choice(rng: random.Random, weights: Sequence[float]) -> int:
    """Pick an index proportionally to ``weights`` (need not be normalized)."""
    total = sum(weights)
    x = rng.random() * total
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if x < acc:
            return i
    return len(weights) - 1


def lognormal_from_median(rng: random.Random, median: float, sigma: float) -> float:
    """Draw a lognormal sample parameterized by its median.

    Service-time distributions in the latency models are lognormal: the
    median equals ``exp(mu)`` so ``mu = ln(median)``, and ``sigma`` controls
    tail heaviness (p99 ≈ median * exp(2.33 * sigma)).
    """
    if median <= 0:
        raise ValueError("median must be positive")
    return rng.lognormvariate(math.log(median), sigma)
