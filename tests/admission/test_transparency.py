"""Admission control observes, never perturbs under-capacity traffic.

Mirrors the monitoring layer's transparency suite: the same seed with
admission control enabled must produce a byte-identical simulation
(virtual clock, message count, operation history) and leave every RNG
stream untouched, because every admission decision is plain arithmetic
over observed state and under-capacity load never trips a limit. This is
the invariant that makes it safe to leave admission enabled in
production runs: it only exists at saturation.
"""

import json

import pytest

from repro.chaos.history import History
from repro.chaos.scenarios import (
    _drive_all,
    _gateway_store_clients,
    _register_store_fn,
)
from repro.core.cluster import BokiCluster

pytestmark = [pytest.mark.chaos, pytest.mark.admission]


def _run(admitted, seed=5):
    """Identical fault-free gateway store workload; returns the cluster
    and a comparable fingerprint of the whole run."""
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3,
        num_sequencer_nodes=3, seed=seed,
    )
    if admitted:
        cluster.enable_admission()
    cluster.boot()
    history = History(cluster.env)
    _register_store_fn(cluster)
    procs = _gateway_store_clients(cluster, history, num_clients=2,
                                   ops_per_client=10)
    _drive_all(cluster, procs, limit=300.0)
    fingerprint = json.dumps({
        "now": round(cluster.env.now, 9),
        "messages_sent": cluster.net.messages_sent,
        "history": history.to_dicts(),
    }, sort_keys=True)
    return cluster, fingerprint


def test_admission_invisible_to_an_under_capacity_run():
    _, plain = _run(admitted=False)
    admitted_cluster, admitted = _run(admitted=True)
    assert plain == admitted
    # The controller actually saw the traffic (not a vacuous pass)...
    ctl = admitted_cluster.admission
    assert sum(ctl.admitted.values()) == 20
    # ...and shed none of it: limits exist only at saturation.
    assert ctl.total_shed() == 0
    assert ctl.downstream_overloads == 0
    assert ctl.limiter.decreases == 0


def test_admission_consumes_no_rng():
    """Same streams created, every stream's state identical — admission
    decisions are arithmetic, never draws."""
    states = []
    for admitted in (False, True):
        cluster, _ = _run(admitted=admitted)
        states.append({
            name: rng.getstate()
            for name, rng in cluster.streams._streams.items()
        })
    assert sorted(states[0]) == sorted(states[1])
    for name in states[0]:
        assert states[0][name] == states[1][name], f"stream {name} diverged"


def test_node_windows_tracked_but_never_full():
    cluster, _ = _run(admitted=True)
    nodes = cluster.admission.nodes
    assert len(nodes) == 5  # 2 engines + 3 storage nodes guarded
    for node in nodes:
        assert node.window.admitted > 0 or "storage" in node.resource
        assert node.window.shed == 0
        assert node.codel.dropped == 0
        assert node.window.inflight == 0  # every enter paired with exit
