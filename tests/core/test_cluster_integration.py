"""Integration tests: full Boki cluster, end to end."""

import pytest

from repro.core import BokiCluster, BokiConfig
from repro.core.types import seqnum_log_id, seqnum_term, unpack_seqnum


def make_cluster(**kwargs):
    cluster = BokiCluster(**kwargs)
    cluster.boot()
    return cluster


class TestAppendRead:
    def test_append_returns_increasing_seqnums(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            seqnums = []
            for i in range(5):
                seqnums.append((yield from book.append({"i": i})))
            return seqnums

        seqnums = c.drive(flow())
        assert seqnums == sorted(seqnums)
        assert len(set(seqnums)) == 5

    def test_read_next_iterates_in_order(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            for i in range(4):
                yield from book.append({"i": i}, tags=[9])
            records = yield from book.iter_records(tag=9)
            return [r.data["i"] for r in records]

        assert c.drive(flow()) == [0, 1, 2, 3]

    def test_read_prev_and_check_tail(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            first = yield from book.append("first", tags=[4])
            last = yield from book.append("last", tags=[4])
            tail = yield from book.check_tail(tag=4)
            prev = yield from book.read_prev(tag=4, max_seqnum=last - 1)
            return tail.data, prev.data

        assert c.drive(flow()) == ("last", "first")

    def test_tag_selective_reads(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            yield from book.append("a", tags=[1])
            yield from book.append("b", tags=[2])
            yield from book.append("c", tags=[1])
            only_1 = yield from book.iter_records(tag=1)
            only_2 = yield from book.iter_records(tag=2)
            return [r.data for r in only_1], [r.data for r in only_2]

        assert c.drive(flow()) == (["a", "c"], ["b"])

    def test_empty_book_reads_none(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            r = yield from book.read_next(tag=0, min_seqnum=0)
            t = yield from book.check_tail()
            return r, t

        assert c.drive(flow()) == (None, None)

    def test_books_are_isolated(self):
        c = make_cluster()

        def flow():
            book_a = c.logbook(1)
            book_b = c.logbook(2)
            yield from book_a.append("for-a")
            yield from book_b.append("for-b")
            a = yield from book_a.check_tail()
            b = yield from book_b.check_tail()
            return a.data, b.data

        assert c.drive(flow()) == ("for-a", "for-b")

    def test_concurrent_appenders_no_seqnum_collision(self):
        c = make_cluster(num_function_nodes=4)
        results = []

        def appender(engine_name):
            book = c.logbook(1, engine=c.engine_of(engine_name))
            seqnums = []
            for i in range(10):
                seqnums.append((yield from book.append({"from": engine_name})))
            results.append(seqnums)

        procs = [
            c.env.process(appender(f"func-{i}")) for i in range(4)
        ]
        for proc in procs:
            c.env.run_until(proc, limit=120.0)
        all_seqnums = [s for group in results for s in group]
        assert len(set(all_seqnums)) == 40

    def test_total_order_agreed_across_engines(self):
        """Readers on different engines see the same record order."""
        c = make_cluster(num_function_nodes=4, index_engines_per_log=4)

        def write():
            for i in range(8):
                book = c.logbook(1, engine=c.engine_of(f"func-{i % 4}"))
                yield from book.append({"i": i}, tags=[5])

        c.drive(write())

        def read_from(name):
            book = c.logbook(1, engine=c.engine_of(name))
            records = yield from book.iter_records(tag=5)
            return [r.seqnum for r in records]

        orders = [c.drive(read_from(f"func-{i}")) for i in range(4)]
        assert all(o == orders[0] for o in orders)
        assert len(orders[0]) == 8


class TestConsistency:
    def test_read_your_writes_single_function(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            seqnum = yield from book.append("mine", tags=[3])
            record = yield from book.read_next(tag=3, min_seqnum=seqnum)
            return record.data

        assert c.drive(flow()) == "mine"

    def test_child_inherits_parent_view(self):
        """A child function must see its parent's appends (§4.4)."""
        c = make_cluster(num_function_nodes=4, index_engines_per_log=4)
        seen = []

        def child(ctx, arg):
            book = c.logbook_for(ctx)
            record = yield from book.check_tail(tag=8)
            seen.append(record.data if record else None)
            return None

        def parent(ctx, arg):
            book = c.logbook_for(ctx)
            yield from book.append("parent-write", tags=[8])
            yield from ctx.invoke("child")
            return None

        c.register_function("child", child)
        c.register_function("parent", parent)

        def flow():
            yield from c.invoke("parent", book_id=1)

        c.drive(flow())
        assert seen == ["parent-write"]

    def test_parent_absorbs_child_position(self):
        """After a child returns, the parent sees the child's appends."""
        c = make_cluster(num_function_nodes=4, index_engines_per_log=4)
        seen = []

        def child(ctx, arg):
            book = c.logbook_for(ctx)
            yield from book.append("child-write", tags=[8])
            return None

        def parent(ctx, arg):
            book = c.logbook_for(ctx)
            yield from ctx.invoke("child")
            record = yield from book.check_tail(tag=8)
            seen.append(record.data if record else None)
            return None

        c.register_function("child", child)
        c.register_function("parent", parent)

        def flow():
            yield from c.invoke("parent", book_id=1)

        c.drive(flow())
        assert seen == ["child-write"]


class TestVirtualization:
    def test_books_spread_over_logs(self):
        c = make_cluster(num_logs=4, num_storage_nodes=4)
        logs_used = {c.term.log_for_book(b) for b in range(200)}
        assert logs_used == {0, 1, 2, 3}

    def test_many_books_roundtrip_multi_log(self):
        c = make_cluster(num_logs=2, num_storage_nodes=4)

        def flow():
            out = {}
            for book_id in range(10):
                book = c.logbook(book_id)
                yield from book.append({"book": book_id})
                tail = yield from book.check_tail()
                out[book_id] = tail.data["book"]
            return out

        result = c.drive(flow())
        assert result == {b: b for b in range(10)}

    def test_seqnum_embeds_log_id(self):
        c = make_cluster(num_logs=4, num_storage_nodes=4)

        def flow():
            book = c.logbook(5)
            return (yield from book.append("x"))

        seqnum = c.drive(flow())
        assert seqnum_log_id(seqnum) == c.term.log_for_book(5)
        assert seqnum_term(seqnum) == 1


class TestAuxData:
    def test_aux_roundtrip_local(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            seqnum = yield from book.append("data", tags=[2])
            yield from book.set_auxdata(seqnum, {"view": 42})
            record = yield from book.read_next(tag=2, min_seqnum=seqnum)
            return record.auxdata

        assert c.drive(flow()) == {"view": 42}

    def test_aux_not_shared_across_engines_without_backup(self):
        """Aux data is per-node cache only (§4.4): another engine's reads
        do not see it (no exchange between nodes)."""
        c = make_cluster(num_function_nodes=2, index_engines_per_log=2)

        def flow():
            book_a = c.logbook(1, engine=c.engine_of("func-0"))
            seqnum = yield from book_a.append("data", tags=[2])
            yield from book_a.set_auxdata(seqnum, "aux-on-0")
            book_b = c.logbook(1, engine=c.engine_of("func-1"))
            record = yield from book_b.read_next(tag=2, min_seqnum=seqnum)
            return record.auxdata

        assert c.drive(flow()) is None

    def test_aux_backup_on_storage(self):
        """With aux backup enabled (Table 7), other engines recover aux
        data from storage nodes on cache miss."""
        config = BokiConfig(aux_backup=True)
        c = make_cluster(num_function_nodes=2, index_engines_per_log=2, config=config)

        def flow():
            book_a = c.logbook(1, engine=c.engine_of("func-0"))
            seqnum = yield from book_a.append("data", tags=[2])
            yield from book_a.set_auxdata(seqnum, "backed-up")
            yield c.env.timeout(0.01)  # let the backup propagate
            book_b = c.logbook(1, engine=c.engine_of("func-1"))
            record = yield from book_b.read_next(tag=2, min_seqnum=seqnum)
            return record.auxdata

        assert c.drive(flow()) == "backed-up"


class TestTrim:
    def test_trim_removes_from_reads(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            s1 = yield from book.append("old", tags=[2])
            s2 = yield from book.append("new", tags=[2])
            yield from book.trim(s1, tag=2)
            yield c.env.timeout(0.05)  # let the trim order + apply
            first = yield from book.read_next(tag=2, min_seqnum=0)
            return first.data

        assert c.drive(flow()) == "new"

    def test_trim_whole_book(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            yield from book.append("a", tags=[1])
            s = yield from book.append("b", tags=[2])
            yield from book.trim(s)  # tag 0: everything
            yield c.env.timeout(0.05)
            return (yield from book.read_next(tag=0, min_seqnum=0))

        assert c.drive(flow()) is None

    def test_storage_reclaims_trimmed(self):
        c = make_cluster()

        def flow():
            book = c.logbook(1)
            s = yield from book.append("x", tags=[1])
            yield from book.trim(s)
            yield c.env.timeout(0.05)

        c.drive(flow())
        assert sum(s.trimmed_count for s in c.storage_nodes) > 0


class TestRemoteEngineReads:
    def test_non_indexing_engine_reads_remotely(self):
        c = make_cluster(num_function_nodes=4, index_engines_per_log=2)
        # func-2 / func-3 do not index log 0.
        non_indexer = next(
            name for name, e in c.engines.items() if not e.indexes(0)
        )

        def flow():
            writer = c.logbook(1, engine=c.any_engine())
            seqnum = yield from writer.append("remote-me", tags=[3])
            reader = c.logbook(1, engine=c.engine_of(non_indexer))
            record = yield from reader.read_next(tag=3, min_seqnum=0)
            return record.data

        assert c.drive(flow()) == "remote-me"
        assert sum(e.remote_reads for e in c.engines.values()) == 1


class TestReconfiguration:
    def test_term_changes_and_appends_continue(self):
        c = make_cluster(num_sequencer_nodes=6)

        def flow():
            book = c.logbook(1)
            s1 = yield from book.append("before")
            yield from c.controller.reconfigure(
                sequencer_names=["seq-3", "seq-4", "seq-5"]
            )
            s2 = yield from book.append("after")
            return s1, s2

        s1, s2 = c.drive(flow())
        assert seqnum_term(s1) == 1
        assert seqnum_term(s2) == 2
        assert s2 > s1

    def test_records_readable_across_terms(self):
        c = make_cluster(num_sequencer_nodes=6)

        def flow():
            book = c.logbook(1)
            yield from book.append("old-term", tags=[2])
            yield from c.controller.reconfigure()
            yield from book.append("new-term", tags=[2])
            records = yield from book.iter_records(tag=2)
            return [r.data for r in records]

        assert c.drive(flow()) == ["old-term", "new-term"]

    def test_append_in_flight_during_reconfig_retries(self):
        """An append racing the seal must eventually complete (in the old
        term if ordered before sealing, else retried into the new term)."""
        c = make_cluster(num_sequencer_nodes=6)
        results = []

        def appender():
            book = c.logbook(1)
            for i in range(20):
                results.append((yield from book.append({"i": i})))

        def reconfigurer():
            yield c.env.timeout(0.004)
            yield from c.controller.reconfigure(
                sequencer_names=["seq-3", "seq-4", "seq-5"]
            )

        pa = c.env.process(appender())
        pr = c.env.process(reconfigurer())
        c.env.run_until(pa, limit=120.0)
        c.env.run_until(pr, limit=120.0)
        assert len(results) == 20
        assert results == sorted(results)
        assert len(set(results)) == 20

    def test_sequencer_crash_detected_and_recovered(self):
        """With sessions on, killing the primary sequencer triggers
        automatic reconfiguration and appends keep working."""
        c = BokiCluster(num_sequencer_nodes=6, use_coord_sessions=True)
        c.boot()

        def flow():
            book = c.logbook(1)
            yield from book.append("pre-crash")
            primary = c.term.assignment(0).primary
            node = c.controller.components[primary].node
            node.crash()
            # Session timeout (2s) + sweep + reconfig.
            yield c.env.timeout(6.0)
            seqnum = yield from book.append("post-crash")
            return seqnum

        seqnum = c.drive(flow(), limit=200.0)
        assert seqnum_term(seqnum) == 2
        assert c.controller.reconfig_count == 1

    def test_storage_crash_recovered(self):
        c = BokiCluster(
            num_storage_nodes=5, num_sequencer_nodes=3, use_coord_sessions=True
        )
        c.boot()

        def flow():
            book = c.logbook(1)
            yield from book.append("pre")
            c.storage_nodes[0].node.crash()
            yield c.env.timeout(6.0)
            yield from book.append("post")
            tail = yield from book.check_tail()
            return tail.data

        assert c.drive(flow(), limit=200.0) == "post"
        assert c.controller.reconfig_count >= 1
