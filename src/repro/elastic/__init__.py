"""repro.elastic — load-driven autoscaling and shard rebalancing.

A deterministic control plane layer over the Boki cluster: an
:class:`Autoscaler` kernel process samples ``repro.obs`` load signals
through an EWMA/hysteresis :class:`HysteresisPolicy` and resizes the
engine and storage fleets via serialized controller reconfigurations,
with minimal-movement replica placement (:mod:`repro.elastic.rebalance`)
and fencing of decommissioned nodes. See ``docs/elasticity.md``.
"""

from repro.elastic.autoscaler import Autoscaler
from repro.elastic.policy import Ewma, HysteresisPolicy, PolicyConfig
from repro.elastic.rebalance import (
    count_moves,
    optimal_moves,
    rebalance_replicas,
    replica_quota,
)
from repro.elastic.signals import SignalSampler

__all__ = [
    "Autoscaler",
    "Ewma",
    "HysteresisPolicy",
    "PolicyConfig",
    "SignalSampler",
    "count_moves",
    "optimal_moves",
    "rebalance_replicas",
    "replica_quota",
]
