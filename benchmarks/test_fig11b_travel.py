"""Figure 11b: the travel-reservation workload, latency vs throughput (§7.2).

Paper: at 500 rps BokiFlow's median latency is 18 ms — 4.3x lower than
Beldi's 78 ms; exactly-once + transactions cost 1.8x over the unsafe
baseline.
"""

import pytest

from benchmarks._common import emit_artifact, lat_ms, run_once
from benchmarks._workflow_common import latency_vs_throughput, print_sweep
from repro.workloads.travel import register_travel_workflows, reserve_request

RATES = [100.0, 200.0, 400.0]


def experiment():
    return latency_vs_throughput(
        register=lambda runtime: register_travel_workflows(
            runtime, prefix=f"tr-{runtime.__class__.__name__}"
        ),
        make_request=reserve_request,
        rates=RATES,
    )


@pytest.mark.benchmark(group="fig11b")
def test_fig11b_travel_reservation_workload(benchmark):
    results = run_once(benchmark, experiment)
    print_sweep("Figure 11b: travel reservation workload", RATES, results)

    emit_artifact(
        "fig11b_travel",
        {
            f"{system.lower().replace(' ', '_')}.r{int(rate)}.p50_ms": lat_ms(
                results[system][i].median_latency()
            )
            for system in results
            for i, rate in enumerate(RATES)
        },
        title="Figure 11b: travel reservation workload",
        config={"rates": RATES},
    )

    mid = 1
    unsafe = results["Unsafe baseline"][mid].median_latency()
    beldi = results["Beldi"][mid].median_latency()
    boki = results["BokiFlow"][mid].median_latency()

    # Claim 1: BokiFlow beats Beldi by a wide margin (paper: 4.3x; our
    # substrate lands ~2.4x because its LogBook appends are relatively
    # more expensive than the paper's — see EXPERIMENTS.md).
    assert beldi > 2.0 * boki
    # Claim 2: unsafe < BokiFlow (fault tolerance isn't free; paper 1.8x).
    assert unsafe < boki
    # Claim 3: ordering at every rate.
    for i in range(len(RATES)):
        assert (
            results["Unsafe baseline"][i].median_latency()
            < results["BokiFlow"][i].median_latency()
            < results["Beldi"][i].median_latency()
        )
