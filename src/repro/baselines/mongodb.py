"""Simulated MongoDB: the document store BokiStore is compared with (§7.3).

Models the behaviours the Retwis comparison exercises:

- JSON documents in named collections, primary reads/writes (sub-ms);
- a 3-replica set: writes pay majority acknowledgement;
- multi-document transactions with snapshot reads and write-conflict
  aborts, costing per-statement overhead plus a commit round — which is
  why the paper's MongoDB transactions run at ~7.5 ms while BokiStore's
  log-based ones run at 3-5 ms (Figure 12b).
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Dict, Generator, List, Tuple

from repro.baselines.latency import (
    MONGODB_CONCURRENCY,
    MONGODB_READ,
    MONGODB_TXN_COMMIT,
    MONGODB_TXN_STMT,
    MONGODB_WRITE,
)
from repro.libs.bokistore.jsonpath import apply_ops
from repro.sim.kernel import Environment
from repro.sim.network import Network, RpcError
from repro.sim.node import Node
from repro.sim.randvar import RandomStreams
from repro.sim.sync import Resource


class WriteConflictError(Exception):
    """A transactional write conflicted with a concurrent committed write."""


class MongoDBService:
    """The simulated replica-set primary."""

    def __init__(self, env: Environment, net: Network, streams: RandomStreams, name: str = "mongodb"):
        self.env = env
        self.net = net
        self.node = net.register(Node(env, name, cpu_capacity=MONGODB_CONCURRENCY))
        self._rng = streams.stream(f"{name}-latency")
        self._slots = Resource(env, capacity=MONGODB_CONCURRENCY)
        self.collections: Dict[str, Dict[Any, dict]] = {}
        #: doc (collection, key) -> version, for txn write-conflict checks.
        self._versions: Dict[Tuple[str, Any], int] = {}
        self._txn_ids = itertools.count(1)
        #: open txn id -> {"reads": {(coll,key): version}, "writes": {...}}
        self._txns: Dict[int, dict] = {}
        self.op_count = 0
        for method, handler in {
            "mongo.find": self._h_find,
            "mongo.upsert": self._h_upsert,
            "mongo.update": self._h_update,
            "mongo.delete": self._h_delete,
            "mongo.txn_begin": self._h_txn_begin,
            "mongo.txn_find": self._h_txn_find,
            "mongo.txn_update": self._h_txn_update,
            "mongo.txn_commit": self._h_txn_commit,
            "mongo.txn_abort": self._h_txn_abort,
        }.items():
            self.node.handle(method, handler)

    def collection(self, name: str) -> Dict[Any, dict]:
        return self.collections.setdefault(name, {})

    def _service(self, model) -> Generator:
        self.op_count += 1
        req = self._slots.request()
        yield req
        try:
            yield self.env.timeout(model.sample(self._rng))
        finally:
            self._slots.release(req)

    def _bump(self, coll: str, key: Any) -> None:
        self._versions[(coll, key)] = self._versions.get((coll, key), 0) + 1

    # -- plain operations ------------------------------------------------
    def _h_find(self, payload: dict) -> Generator:
        yield from self._service(MONGODB_READ)
        doc = self.collection(payload["collection"]).get(payload["key"])
        return copy.deepcopy(doc) if doc is not None else None

    def _h_upsert(self, payload: dict) -> Generator:
        yield from self._service(MONGODB_WRITE)
        self.collection(payload["collection"])[payload["key"]] = copy.deepcopy(payload["doc"])
        self._bump(payload["collection"], payload["key"])
        return True

    def _h_update(self, payload: dict) -> Generator:
        """Apply json-path ops to a document (upsert semantics)."""
        yield from self._service(MONGODB_WRITE)
        coll = self.collection(payload["collection"])
        doc = coll.get(payload["key"])
        coll[payload["key"]] = apply_ops(doc, payload["ops"])
        self._bump(payload["collection"], payload["key"])
        return True

    def _h_delete(self, payload: dict) -> Generator:
        yield from self._service(MONGODB_WRITE)
        self.collection(payload["collection"]).pop(payload["key"], None)
        self._bump(payload["collection"], payload["key"])
        return True

    # -- transactions ------------------------------------------------------
    def _h_txn_begin(self, payload: dict) -> Generator:
        yield from self._service(MONGODB_TXN_STMT)
        txn_id = next(self._txn_ids)
        self._txns[txn_id] = {"reads": {}, "writes": {}}
        return txn_id

    def _h_txn_find(self, payload: dict) -> Generator:
        yield from self._service(MONGODB_TXN_STMT)
        txn = self._txns[payload["txn_id"]]
        coll, key = payload["collection"], payload["key"]
        if (coll, key) in txn["writes"]:
            return copy.deepcopy(txn["writes"][(coll, key)])
        doc = self.collection(coll).get(key)
        txn["reads"][(coll, key)] = self._versions.get((coll, key), 0)
        return copy.deepcopy(doc) if doc is not None else None

    def _h_txn_update(self, payload: dict) -> Generator:
        yield from self._service(MONGODB_TXN_STMT)
        txn = self._txns[payload["txn_id"]]
        coll, key = payload["collection"], payload["key"]
        base = txn["writes"].get((coll, key))
        if base is None:
            base = copy.deepcopy(self.collection(coll).get(key))
            txn["reads"].setdefault((coll, key), self._versions.get((coll, key), 0))
        txn["writes"][(coll, key)] = apply_ops(base, payload["ops"])
        return True

    def _h_txn_commit(self, payload: dict) -> Generator:
        yield from self._service(MONGODB_TXN_COMMIT)
        txn = self._txns.pop(payload["txn_id"], None)
        if txn is None:
            raise KeyError(payload["txn_id"])
        # Write-conflict check: any written doc changed since first touch?
        for (coll, key) in txn["writes"]:
            seen = txn["reads"].get((coll, key), 0)
            if self._versions.get((coll, key), 0) != seen:
                raise WriteConflictError(f"{coll}/{key}")
        for (coll, key), doc in txn["writes"].items():
            self.collection(coll)[key] = doc
            self._bump(coll, key)
        return True

    def _h_txn_abort(self, payload: dict) -> Generator:
        yield from self._service(MONGODB_TXN_STMT)
        self._txns.pop(payload["txn_id"], None)
        return True


class MongoDBClient:
    """Client handle bound to a caller node."""

    def __init__(self, net: Network, node: Node, service_name: str = "mongodb"):
        self.net = net
        self.node = node
        self.service_name = service_name

    def _call(self, method: str, payload: dict) -> Generator:
        try:
            result = yield self.net.rpc(self.node, self.service_name, method, payload, timeout=30.0)
        except RpcError as exc:
            raise exc.cause from None
        return result

    def find(self, collection: str, key: Any) -> Generator:
        return (yield from self._call("mongo.find", {"collection": collection, "key": key}))

    def upsert(self, collection: str, key: Any, doc: dict) -> Generator:
        return (yield from self._call("mongo.upsert", {"collection": collection, "key": key, "doc": doc}))

    def update(self, collection: str, key: Any, ops: List[dict]) -> Generator:
        return (yield from self._call("mongo.update", {"collection": collection, "key": key, "ops": ops}))

    def delete(self, collection: str, key: Any) -> Generator:
        return (yield from self._call("mongo.delete", {"collection": collection, "key": key}))

    def txn_begin(self) -> Generator:
        return (yield from self._call("mongo.txn_begin", {}))

    def txn_find(self, txn_id: int, collection: str, key: Any) -> Generator:
        return (
            yield from self._call(
                "mongo.txn_find", {"txn_id": txn_id, "collection": collection, "key": key}
            )
        )

    def txn_update(self, txn_id: int, collection: str, key: Any, ops: List[dict]) -> Generator:
        return (
            yield from self._call(
                "mongo.txn_update",
                {"txn_id": txn_id, "collection": collection, "key": key, "ops": ops},
            )
        )

    def txn_commit(self, txn_id: int) -> Generator:
        return (yield from self._call("mongo.txn_commit", {"txn_id": txn_id}))

    def txn_abort(self, txn_id: int) -> Generator:
        return (yield from self._call("mongo.txn_abort", {"txn_id": txn_id}))
