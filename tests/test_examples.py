"""Smoke tests: every example script must run to completion.

Examples double as end-to-end acceptance tests (each asserts its own
outcome internally), so breaking one is a test failure, not a docs bug.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_discovered():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example, capsys):
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        runpy.run_path(str(EXAMPLES_DIR / f"{example}.py"), run_name="__main__")
    finally:
        sys.path.remove(str(EXAMPLES_DIR))
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates its progress
