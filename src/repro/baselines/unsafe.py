"""The unsafe baseline: workflows with no logging (§7.2).

"Unsafe baseline refers to running workflows without Beldi's techniques,
where it cannot guarantee exactly-once semantics or support transactions."
Every operation maps to its bare cost: a write is one DynamoDB update, an
invoke is a plain function call. Used as the lower bound in Figure 11.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.baselines.dynamodb import DynamoDBClient
from repro.core.cluster import BokiCluster
from repro.faas import FunctionContext


class UnsafeEnv:
    """Same API surface as WorkflowEnv/BeldiEnv, with no fault tolerance."""

    def __init__(self, runtime: "UnsafeRuntime", ctx: FunctionContext, workflow_id: str):
        self.runtime = runtime
        self.ctx = ctx
        self.workflow_id = workflow_id
        self.step = 0
        self.db = DynamoDBClient(runtime.cluster.net, ctx.node, runtime.db_service)
        self.fault_hook: Optional[Callable[[int], None]] = runtime.fault_hook

    def _pre_step(self) -> None:
        if self.fault_hook is not None:
            self.fault_hook(self.step)

    def read(self, table: str, key: Any) -> Generator:
        item = yield from self.db.get(table, key)
        return item.get("Value") if item is not None else None

    def write(self, table: str, key: Any, value: Any) -> Generator:
        self._pre_step()
        # Same logical effect identity as WorkflowEnv.write, but applied
        # with a plain (unconditional) update: a re-executed workflow
        # re-applies the effect — the duplication the chaos checkers catch.
        yield from self.db.update(
            table, key, set_attrs={"Value": value},
            effect_id=(self.workflow_id, self.step),
        )
        self.step += 1

    def cond_write(self, table: str, key: Any, value: Any, expected: Any) -> Generator:
        self._pre_step()
        current = yield from self.db.get(table, key)
        outcome = current is not None and current.get("Value") == expected
        if outcome:
            yield from self.db.update(
                table, key, set_attrs={"Value": value},
                effect_id=(self.workflow_id, self.step),
            )
        self.step += 1
        return outcome

    def invoke(self, callee: str, arg: Any = None) -> Generator:
        self._pre_step()
        callee_id = f"{self.workflow_id}/{self.step}"
        retval = yield from self.ctx.invoke(callee, {"workflow_id": callee_id, "input": arg})
        self.step += 1
        return retval

    def invoke_parallel(self, calls) -> Generator:
        """Fan-out without any logging (and thus no exactly-once)."""
        self._pre_step()
        step = self.step
        sim = self.runtime.cluster.env

        def branch(i: int, callee: str, arg: Any) -> Generator:
            callee_id = f"{self.workflow_id}/{step}.{i}"
            return (
                yield from self.ctx.invoke(
                    callee, {"workflow_id": callee_id, "input": arg}
                )
            )

        procs = [
            sim.process(branch(i, callee, arg), name=f"fanout-{i}")
            for i, (callee, arg) in enumerate(calls)
        ]
        results = []
        for proc in procs:
            results.append((yield proc))
        self.step += 1
        return results

    def raw_db_write(self, table: str, key: Any, value: Any) -> Generator:
        yield from self.db.update(table, key, set_attrs={"Value": value})


class UnsafeTxn:
    """No isolation, no atomicity: plain writes, no locks, no logging."""

    def __init__(self, env: UnsafeEnv):
        self.env = env
        self._writes: Dict[Tuple[str, Any], Any] = {}

    def acquire(self, keys: List[Tuple[str, Any]]) -> Generator:
        if False:
            yield  # generator for interface compatibility; nothing to lock
        return True

    def read(self, table: str, key: Any) -> Generator:
        if (table, key) in self._writes:
            return self._writes[(table, key)]
        return (yield from self.env.read(table, key))

    def write(self, table: str, key: Any, value: Any) -> None:
        self._writes[(table, key)] = value

    def commit(self) -> Generator:
        for (table, key), value in self._writes.items():
            yield from self.env.raw_db_write(table, key, value)

    def abort(self) -> Generator:
        if False:
            yield
        self._writes.clear()


class UnsafeRuntime:
    env_class = UnsafeEnv
    txn_class = UnsafeTxn

    def __init__(self, cluster: BokiCluster, db_service: str = "dynamodb"):
        self.cluster = cluster
        self.db_service = db_service
        self._wf_ids = itertools.count(1)
        self.fault_hook: Optional[Callable[[int], None]] = None

    def new_workflow_id(self, prefix: str = "unsafe") -> str:
        return f"{prefix}-{next(self._wf_ids)}"

    def register_workflow(self, name: str, body: Callable) -> None:
        def handler(ctx: FunctionContext, arg: dict) -> Generator:
            env = UnsafeEnv(self, ctx, arg["workflow_id"])
            return (yield from body(env, arg.get("input")))

        self.cluster.register_function(name, handler)

    def start_workflow(
        self, name: str, arg: Any = None, book_id: int = 0, workflow_id: Optional[str] = None
    ) -> Generator:
        workflow_id = workflow_id or self.new_workflow_id()
        result = yield from self.cluster.invoke(
            name, {"workflow_id": workflow_id, "input": arg}, book_id=book_id
        )
        return result
