"""Boki: Stateful Serverless Computing with Shared Logs — reproduction.

A from-scratch Python implementation of the SOSP 2021 paper by Zhipeng Jia
and Emmett Witchel, on a deterministic discrete-event simulation substrate.

Packages:

- :mod:`repro.sim` — simulation kernel, network, nodes, metrics.
- :mod:`repro.coord` — coordination service (ZooKeeper substitute).
- :mod:`repro.faas` — FaaS runtime (Nightcore substitute).
- :mod:`repro.core` — Boki itself: metalog, sequencers, storage, LogBook
  engines, the LogBook API, and the reconfiguration control plane.
- :mod:`repro.libs` — BokiFlow, BokiStore, BokiQueue, GC functions.
- :mod:`repro.baselines` — every comparator the paper evaluates against.
- :mod:`repro.workloads` — the evaluation workloads and load harness.

Entry point: :class:`repro.core.BokiCluster`.
"""

__version__ = "1.0.0"
