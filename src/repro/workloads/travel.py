"""The travel-reservation workflow (Figure 11b), adapted from
DeathStarBench.

The §2.1 motivating example: a reservation books a flight *and* a hotel,
and the two updates must be consistent despite mid-workflow failures. The
workflow transactionally decrements both capacities (locks + exactly-once
writes in BokiFlow/Beldi; bare writes in the unsafe baseline), then invokes
a payment function.
"""

from __future__ import annotations

from typing import Any, Dict

TABLE_FLIGHTS = "flights"
TABLE_HOTELS = "hotels"
TABLE_ORDERS = "orders"

DEFAULT_CAPACITY = 1_000_000


def register_travel_workflows(runtime, prefix: str = "travel") -> str:
    """Deploy the workflow functions; returns the frontend function name."""
    txn_class = runtime.txn_class

    def payment(env, arg):
        yield from env.write(
            TABLE_ORDERS, f"order-{env.workflow_id}",
            {"flight": arg["flight"], "hotel": arg["hotel"], "user": arg["user"]},
        )
        return "charged"

    def reserve(env, arg):
        txn = txn_class(env)
        ok = yield from txn.acquire(
            [(TABLE_FLIGHTS, arg["flight"]), (TABLE_HOTELS, arg["hotel"])]
        )
        if not ok:
            return {"status": "retry-later"}
        flight_seats = yield from txn.read(TABLE_FLIGHTS, arg["flight"])
        hotel_rooms = yield from txn.read(TABLE_HOTELS, arg["hotel"])
        flight_seats = flight_seats if flight_seats is not None else DEFAULT_CAPACITY
        hotel_rooms = hotel_rooms if hotel_rooms is not None else DEFAULT_CAPACITY
        if flight_seats <= 0 or hotel_rooms <= 0:
            yield from txn.abort()
            return {"status": "sold-out"}
        txn.write(TABLE_FLIGHTS, arg["flight"], flight_seats - 1)
        txn.write(TABLE_HOTELS, arg["hotel"], hotel_rooms - 1)
        yield from txn.commit()
        receipt = yield from env.invoke(f"{prefix}-payment", arg)
        return {"status": "confirmed", "receipt": receipt}

    runtime.register_workflow(f"{prefix}-payment", payment)
    runtime.register_workflow(f"{prefix}-reserve", reserve)
    return f"{prefix}-reserve"


def reserve_request(rng, request_index: int) -> Dict[str, Any]:
    """Requests spread over many flights/hotels (low contention, like the
    paper's load tests)."""
    return {
        "user": f"user-{request_index}",
        "flight": f"flight-{rng.randrange(200)}",
        "hotel": f"hotel-{rng.randrange(200)}",
    }
