"""Figure 11a: the movie-review workload, latency vs throughput (§7.2).

Paper (8 function nodes, Boki with 3 storage nodes): at 200 rps BokiFlow's
median latency is 26 ms — 4.7x lower than Beldi's 121 ms; exactly-once
support costs 3.0x over the unsafe baseline.

Claims checked at the mid sweep point: Unsafe < BokiFlow < Beldi in
latency, with BokiFlow several-fold faster than Beldi.
"""

import pytest

from benchmarks._common import emit_artifact, lat_ms, run_once
from benchmarks._workflow_common import latency_vs_throughput, print_sweep
from repro.workloads.movie import compose_review_request, register_full_movie_workflows

RATES = [50.0, 100.0, 200.0]


def experiment():
    return latency_vs_throughput(
        register=lambda runtime: register_full_movie_workflows(
            runtime, prefix=f"mv-{runtime.__class__.__name__}"
        ),
        make_request=compose_review_request,
        rates=RATES,
    )


@pytest.mark.benchmark(group="fig11a")
def test_fig11a_movie_review_workload(benchmark):
    results = run_once(benchmark, experiment)
    print_sweep("Figure 11a: movie review workload", RATES, results)

    emit_artifact(
        "fig11a_movie",
        {
            f"{system.lower().replace(' ', '_')}.r{int(rate)}.p50_ms": lat_ms(
                results[system][i].median_latency()
            )
            for system in results
            for i, rate in enumerate(RATES)
        },
        title="Figure 11a: movie review workload",
        config={"rates": RATES},
    )

    mid = 1  # the 100 rps point
    unsafe = results["Unsafe baseline"][mid].median_latency()
    beldi = results["Beldi"][mid].median_latency()
    boki = results["BokiFlow"][mid].median_latency()

    # Claim 1: BokiFlow is much faster than Beldi (paper: 4.7x).
    assert beldi > 2.5 * boki
    # Claim 2: exactly-once costs over the unsafe baseline (paper: 3.0x),
    # so unsafe < BokiFlow.
    assert unsafe < boki
    # Claim 3: the ordering holds at every measured rate.
    for i in range(len(RATES)):
        assert (
            results["Unsafe baseline"][i].median_latency()
            < results["BokiFlow"][i].median_latency()
            < results["Beldi"][i].median_latency()
        )
