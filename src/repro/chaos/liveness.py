"""Liveness metrics: availability and recovery time from histories.

The safety checkers (``repro.chaos.checkers``) prove nothing bad
happened; this module measures whether anything *good* kept happening.
Two Jepsen-style liveness figures are computed from a recorded
:class:`~repro.chaos.history.History` and the fault injection time:

- **availability** — goodput during the fault window: the fraction of
  client operations invoked at or after the fault that completed ``ok``.
  A cluster that recovers by retrying through reconfiguration keeps this
  near 1.0; a cluster without recovery serves errors for the whole
  failure-detection + reconfiguration window.
- **RTO** (recovery time objective) — virtual time from fault injection
  to the first *post-fault* successful completion; None when nothing
  ever succeeded after the fault (recovery failed outright).

:func:`check_recovery_slo` turns the metrics into a
:class:`~repro.chaos.checkers.CheckResult` so recovery objectives sit in
verdicts next to the safety checkers.
"""

from __future__ import annotations

from math import inf
from typing import Iterable, Optional

from repro.chaos.checkers import CheckResult
from repro.chaos.history import History
from repro.obs.registry import MetricsRegistry


def recovery_metrics(
    history: History,
    fault_at: float,
    kinds: Optional[Iterable[str]] = None,
    enabled: bool = True,
) -> dict:
    """Availability + RTO over the operations invoked at/after ``fault_at``.

    ``kinds`` restricts the measured operations (e.g. only ``store.put``/
    ``store.get``); ``enabled`` records whether the resilience layer was
    on for this run (carried into the verdict so degraded baselines are
    self-describing). The dict is JSON-serializable and deterministic.

    Availability is the windowed mean of a per-operation success gauge
    (1.0 for ``ok``, 0.0 otherwise) sampled at each operation's invoke
    time and windowed from ``fault_at`` via
    :meth:`~repro.obs.registry.MetricsRegistry.gauge_window` — the same
    machinery autoscaling policies use, so there is one windowing
    implementation to trust.
    """
    kind_set = set(kinds) if kinds is not None else None
    registry = MetricsRegistry()
    ok_gauge = registry.gauge(
        "recovery.op_ok", help="1.0 per ok op, 0.0 per failed op, at t_invoke"
    )
    first_ok = inf
    for op in history.ops:  # ops are appended in invoke order: time-sorted
        if kind_set is not None and op.kind not in kind_set:
            continue
        if op.t_invoke < fault_at:
            continue
        ok_gauge.record(op.t_invoke, 1.0 if op.status == "ok" else 0.0)
        if op.status == "ok" and op.t_return < first_ok:
            first_ok = op.t_return
    stats = registry.gauge_window("recovery.op_ok", start=fault_at)
    window_ops = stats["count"]
    availability = round(stats["mean"], 6) if window_ops else None
    rto = round(first_ok - fault_at, 6) if first_ok != inf else None
    return {
        "enabled": enabled,
        "fault_at_s": round(fault_at, 6),
        "window_ops": window_ops,
        "window_ok": int(sum(v for _, v in ok_gauge.samples)),
        "availability": availability,
        "rto_s": rto,
    }


def check_recovery_slo(
    metrics: dict,
    min_availability: float = 0.9,
    max_rto: Optional[float] = None,
) -> CheckResult:
    """Recovery SLO as a checker: availability during the fault window
    must reach ``min_availability`` and a post-fault success must exist
    (finite RTO, optionally bounded by ``max_rto`` seconds)."""
    violations = []
    availability = metrics.get("availability")
    rto = metrics.get("rto_s")
    if metrics.get("window_ops", 0) == 0:
        violations.append("no operations invoked during the fault window")
    if availability is not None and availability < min_availability:
        violations.append(
            f"availability {availability} below SLO {min_availability}"
        )
    if rto is None:
        violations.append("no successful operation after the fault (RTO unbounded)")
    elif max_rto is not None and rto > max_rto:
        violations.append(f"RTO {rto}s exceeds objective {max_rto}s")
    return CheckResult("recovery-slo", violations, metrics.get("window_ops", 0))
