"""Model-based tests: the simulated cluster vs a reference log.

Hypothesis generates random operation sequences (appends with random tags
across several LogBooks, interleaved reads); we execute them against a
real cluster and against a trivial in-memory reference, and require
identical results. This catches ordering, indexing, and consistency bugs
that targeted tests miss.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import BokiCluster
from repro.core.types import MAX_SEQNUM


class ReferenceLog:
    """The spec: a totally ordered list per book with tag filtering."""

    def __init__(self):
        self.records = []  # (seqnum, book, tags, data)

    def append(self, seqnum, book, tags, data):
        self.records.append((seqnum, book, set(tags) | {0}, data))

    def read_next(self, book, tag, min_seqnum):
        for seqnum, b, tags, data in sorted(self.records):
            if b == book and tag in tags and seqnum >= min_seqnum:
                return data
        return None

    def read_prev(self, book, tag, max_seqnum):
        for seqnum, b, tags, data in sorted(self.records, reverse=True):
            if b == book and tag in tags and seqnum <= max_seqnum:
                return data
        return None

    def iter_tag(self, book, tag):
        return [
            data
            for seqnum, b, tags, data in sorted(self.records)
            if b == book and tag in tags
        ]


ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("append"),
            st.integers(1, 3),              # book
            st.lists(st.integers(1, 4), max_size=2),  # tags
        ),
        st.tuples(st.just("read_next"), st.integers(1, 3), st.integers(0, 4)),
        st.tuples(st.just("read_prev"), st.integers(1, 3), st.integers(0, 4)),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=15, deadline=None, suppress_health_check=list(HealthCheck))
@given(ops=ops_strategy, num_logs=st.sampled_from([1, 2]))
def test_logbook_matches_reference_model(ops, num_logs):
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=4, num_logs=num_logs,
        index_engines_per_log=2,
    )
    cluster.boot()
    reference = ReferenceLog()

    def run():
        books = {b: cluster.logbook(b) for b in (1, 2, 3)}
        payload_counter = [0]
        outcomes = []
        for op in ops:
            if op[0] == "append":
                _, book_id, tags = op
                data = f"r{payload_counter[0]}"
                payload_counter[0] += 1
                seqnum = yield from books[book_id].append(data, tags=tags)
                reference.append(seqnum, book_id, tags, data)
            elif op[0] == "read_next":
                _, book_id, tag = op
                record = yield from books[book_id].read_next(tag=tag, min_seqnum=0)
                outcomes.append(
                    (record.data if record else None, reference.read_next(book_id, tag, 0))
                )
            else:
                _, book_id, tag = op
                record = yield from books[book_id].read_prev(tag=tag, max_seqnum=MAX_SEQNUM)
                outcomes.append(
                    (
                        record.data if record else None,
                        reference.read_prev(book_id, tag, MAX_SEQNUM),
                    )
                )
        # Final full-stream comparison for every (book, tag).
        for book_id in (1, 2, 3):
            for tag in (0, 1, 2, 3, 4):
                records = yield from books[book_id].iter_records(tag=tag)
                outcomes.append(
                    ([r.data for r in records], reference.iter_tag(book_id, tag))
                )
        return outcomes

    outcomes = cluster.drive(run(), limit=600.0)
    for got, expected in outcomes:
        assert got == expected


@settings(max_examples=10, deadline=None, suppress_health_check=list(HealthCheck))
@given(
    appends=st.lists(st.tuples(st.integers(1, 3), st.integers(1, 3)), min_size=2, max_size=15),
    reconfig_after=st.integers(0, 10),
)
def test_total_order_survives_reconfiguration(appends, reconfig_after):
    """Appends interleaved with a reconfiguration: seqnums stay strictly
    increasing in issue order per client, and every record stays readable."""
    cluster = BokiCluster(num_function_nodes=2, num_storage_nodes=4, num_sequencer_nodes=6)
    cluster.boot()

    def run():
        books = {b: cluster.logbook(b) for b in (1, 2, 3)}
        seqnums = []
        for i, (book_id, tag) in enumerate(appends):
            if i == min(reconfig_after, len(appends) - 1):
                yield from cluster.controller.reconfigure()
            seqnum = yield from books[book_id].append({"i": i}, tags=[tag])
            seqnums.append(seqnum)
        counts = {}
        for book_id in (1, 2, 3):
            records = yield from books[book_id].iter_records()
            counts[book_id] = len(records)
        return seqnums, counts

    seqnums, counts = cluster.drive(run(), limit=600.0)
    assert seqnums == sorted(seqnums)
    assert len(set(seqnums)) == len(seqnums)
    expected = {b: sum(1 for bb, _ in appends if bb == b) for b in (1, 2, 3)}
    assert counts == expected
