"""The Retwis workload: a simplified Twitter clone (§7.3).

Four request types with the paper's mixture:

- UserLogin (15%) — non-transactional single-object read;
- UserProfile (30%) — non-transactional single-object read;
- GetTimeline (50%) — read-only transaction reading the timeline plus its
  tweets;
- NewTweet (5%) — read-write transaction writing user, tweet, and
  timeline objects.

Two interchangeable backends: BokiStore objects and MongoDB documents.
"""

from __future__ import annotations

import itertools
from typing import Generator, List, Tuple

from repro.baselines.mongodb import MongoDBClient, WriteConflictError
from repro.libs.bokistore import BokiStore, Transaction
from repro.sim.randvar import weighted_choice

MIXTURE = [("login", 0.15), ("profile", 0.30), ("timeline", 0.50), ("tweet", 0.05)]
TIMELINE_READ_LIMIT = 5
FOLLOWERS_PER_USER = 2
#: Realistic object sizes: a user profile carries ~1 KB of metadata (bio,
#: avatar, settings) and a tweet ~240 characters of text.
PROFILE_BLOB = "p" * 900
TWEET_PAD = "t" * 200

_tweet_ids = itertools.count(1)


class RetwisBokiStore:
    """Retwis over BokiStore objects."""

    def __init__(self, store: BokiStore, num_users: int = 100):
        self.store = store
        self.num_users = num_users
        self.txn_aborts = 0

    # -- data model --
    @staticmethod
    def _user(u: int) -> str:
        return f"user:{u}"

    @staticmethod
    def _timeline(u: int) -> str:
        return f"timeline:{u}"

    @staticmethod
    def _tweet(t: int) -> str:
        return f"tweet:{t}"

    def _followers(self, u: int) -> List[int]:
        return [(u + k + 1) % self.num_users for k in range(FOLLOWERS_PER_USER)]

    def init_users(self) -> Generator:
        for u in range(self.num_users):
            yield from self.store.update(
                self._user(u),
                [
                    {"op": "set", "path": "name", "value": f"user{u}"},
                    {"op": "set", "path": "password", "value": f"pw{u}"},
                    {"op": "set", "path": "bio", "value": PROFILE_BLOB},
                    {"op": "set", "path": "followers", "value": self._followers(u)},
                    {"op": "set", "path": "tweets", "value": 0},
                ],
            )
            yield from self.store.update(
                self._timeline(u), [{"op": "set", "path": "posts", "value": []}]
            )

    # -- request types --
    def user_login(self, u: int) -> Generator:
        view = yield from self.store.get_object(self._user(u))
        return view.get("password") == f"pw{u}"

    def user_profile(self, u: int) -> Generator:
        view = yield from self.store.get_object(self._user(u))
        return {"name": view.get("name"), "tweets": view.get("tweets")}

    def get_timeline(self, u: int) -> Generator:
        txn = yield from Transaction(self.store, readonly=True).begin()
        timeline = yield from txn.get_object(self._timeline(u))
        posts = timeline.get("posts", []) or []
        tweets = []
        for tweet_id in posts[-TIMELINE_READ_LIMIT:]:
            tweet = yield from txn.get_object(self._tweet(tweet_id))
            tweets.append(tweet.get("text"))
        yield from txn.commit()
        return tweets

    def new_tweet(self, u: int, text: str) -> Generator:
        tweet_id = next(_tweet_ids)
        txn = yield from Transaction(self.store).begin()
        user = yield from txn.get_object(self._user(u))
        tweet = yield from txn.get_object(self._tweet(tweet_id))
        tweet.set("user", u)
        tweet.set("text", text)
        user.inc("tweets", 1)
        for follower in [u] + (user.get("followers") or []):
            timeline = yield from txn.get_object(self._timeline(follower))
            timeline.push_array("posts", tweet_id)
        ok = yield from txn.commit()
        if not ok:
            self.txn_aborts += 1
        return ok


class RetwisMongo:
    """Retwis over MongoDB documents."""

    def __init__(self, client: MongoDBClient, num_users: int = 100):
        self.client = client
        self.num_users = num_users
        self.txn_aborts = 0

    def _followers(self, u: int) -> List[int]:
        return [(u + k + 1) % self.num_users for k in range(FOLLOWERS_PER_USER)]

    def init_users(self) -> Generator:
        for u in range(self.num_users):
            yield from self.client.upsert(
                "users",
                u,
                {
                    "name": f"user{u}",
                    "password": f"pw{u}",
                    "bio": PROFILE_BLOB,
                    "followers": self._followers(u),
                    "tweets": 0,
                },
            )
            yield from self.client.upsert("timelines", u, {"posts": []})

    def user_login(self, u: int) -> Generator:
        doc = yield from self.client.find("users", u)
        return doc is not None and doc.get("password") == f"pw{u}"

    def user_profile(self, u: int) -> Generator:
        doc = yield from self.client.find("users", u)
        return {"name": doc.get("name"), "tweets": doc.get("tweets")} if doc else None

    def get_timeline(self, u: int) -> Generator:
        txn = yield from self.client.txn_begin()
        timeline = yield from self.client.txn_find(txn, "timelines", u)
        posts = (timeline or {}).get("posts", [])
        tweets = []
        for tweet_id in posts[-TIMELINE_READ_LIMIT:]:
            tweet = yield from self.client.txn_find(txn, "tweets", tweet_id)
            tweets.append((tweet or {}).get("text"))
        yield from self.client.txn_commit(txn)
        return tweets

    def new_tweet(self, u: int, text: str) -> Generator:
        tweet_id = next(_tweet_ids)
        txn = yield from self.client.txn_begin()
        user = yield from self.client.txn_find(txn, "users", u)
        followers = (user or {}).get("followers", [])
        yield from self.client.txn_update(
            txn, "tweets", tweet_id,
            [{"op": "set", "path": "user", "value": u},
             {"op": "set", "path": "text", "value": text}],
        )
        yield from self.client.txn_update(
            txn, "users", u, [{"op": "inc", "path": "tweets", "value": 1}]
        )
        for follower in [u] + followers:
            yield from self.client.txn_update(
                txn, "timelines", follower,
                [{"op": "push", "path": "posts", "value": tweet_id}],
            )
        try:
            yield from self.client.txn_commit(txn)
            return True
        except WriteConflictError:
            self.txn_aborts += 1
            return False


def retwis_op(backend, rng, request_index: int) -> Tuple[str, Generator]:
    """Draw one request from the paper's mixture; returns (kind, gen)."""
    kinds, weights = zip(*MIXTURE)
    kind = kinds[weighted_choice(rng, list(weights))]
    u = rng.randrange(backend.num_users)
    if kind == "login":
        return kind, backend.user_login(u)
    if kind == "profile":
        return kind, backend.user_profile(u)
    if kind == "timeline":
        return kind, backend.get_timeline(u)
    return kind, backend.new_tweet(u, f"tweet #{request_index} {TWEET_PAD}")
