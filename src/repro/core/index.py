"""The log index: locating a LogBook's records inside a physical log (§4.4).

Boki multiplexes many LogBooks onto one physical log, so a read must find
the target LogBook's records without consulting every shard. The index
groups record metadata by ``(book_id, tag)``; each row is an array of
seqnums in increasing order, matching the seek semantics of logReadNext /
logReadPrev (Figure 4). The index is compact — seqnums and shard locators
only — so one machine holds the whole thing.

Tag 0 is the implicit "every record of the book" tag: all records appear in
row ``(book_id, 0)`` in addition to rows for their explicit tags.

Log spaces (``repro.tenant``): Boki's multi-tenant design carves one
isolated shared-log namespace per tenant out of the common metalog (§3).
We model a namespace as a *log space* — a small integer prefixed into the
high bits of every book id and explicit tag before they reach the index,
so two tenants using the same raw book/tag land in disjoint ``(book_id,
tag)`` rows and one tenant's records are structurally invisible to the
other's lookups. Log space 0 is the reserved default tenant and maps
identically (scoped value == raw value), which is what keeps
tenancy-off runs byte-identical to historical seeds.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.metalog import (
    DEFAULT_LOGSPACE,
    LOGSPACE_SHIFT,
    MAX_RAW_ID,
    TrimCommand,
)

#: The implicit tag present on every record.
ALL_TAG = 0


def scope_book(logspace: int, book_id: int) -> int:
    """Namespace a raw book id into ``logspace``. Identity for the
    default log space (0), so unconfigured runs see historical ids."""
    if logspace == DEFAULT_LOGSPACE:
        return book_id
    if not 0 <= book_id <= MAX_RAW_ID:
        raise ValueError(f"book id {book_id} outside the raw 64-bit space")
    return (logspace << LOGSPACE_SHIFT) | book_id


def scope_tag(logspace: int, tag: int) -> int:
    """Namespace a raw explicit tag into ``logspace``.

    :data:`ALL_TAG` (0) is never prefixed: it is the *implicit* row and,
    because book ids are themselves namespaced, the all-records row of a
    scoped book is already tenant-private.
    """
    if logspace == DEFAULT_LOGSPACE or tag == ALL_TAG:
        return tag
    if not 0 <= tag <= MAX_RAW_ID:
        raise ValueError(f"tag {tag} outside the raw 64-bit space")
    return (logspace << LOGSPACE_SHIFT) | tag


def unscope_tag(logspace: int, tag: int) -> int:
    """Strip the log-space prefix from a scoped tag (identity for the
    default log space and for :data:`ALL_TAG`)."""
    if logspace == DEFAULT_LOGSPACE or tag == ALL_TAG:
        return tag
    return tag & MAX_RAW_ID


def logspace_of(scoped_id: int) -> int:
    """The log space a scoped book id or tag belongs to (0 = default)."""
    return scoped_id >> LOGSPACE_SHIFT


class LogIndex:
    """Index of one physical log, maintained by a LogBook engine."""

    def __init__(self, log_id: int):
        self.log_id = log_id
        self._rows: Dict[Tuple[int, int], List[int]] = {}
        #: seqnum -> shard name, for routing reads to storage nodes.
        self._locator: Dict[int, str] = {}
        #: seqnum -> tags, needed to trim rows efficiently.
        self._tags: Dict[int, Tuple[int, ...]] = {}
        self.record_count = 0
        #: Query count (read_next/read_prev/range), surfaced through the
        #: repro.obs metrics registry.
        self.lookups = 0

    # ------------------------------------------------------------------
    # Updates (driven by metalog application)
    # ------------------------------------------------------------------
    def add_record(
        self, book_id: int, tags: Iterable[int], seqnum: int, shard: str
    ) -> None:
        """Insert one ordered record's metadata.

        Records arrive in seqnum order during normal metalog application,
        so appends to rows are O(1); out-of-order insertion (catch-up after
        index bootstrap) falls back to bisect insertion.
        """
        all_tags = {ALL_TAG} | set(tags)
        for tag in all_tags:
            row = self._rows.setdefault((book_id, tag), [])
            if not row or seqnum > row[-1]:
                row.append(seqnum)
            else:
                position = bisect.bisect_left(row, seqnum)
                if position < len(row) and row[position] == seqnum:
                    continue  # duplicate application
                row.insert(position, seqnum)
        self._locator[seqnum] = shard
        self._tags[seqnum] = tuple(all_tags)
        self.record_count += 1

    def apply_trim(self, trim: TrimCommand) -> List[int]:
        """Execute a trim command; returns the seqnums dropped from the
        index (storage reclaims them in the background)."""
        if trim.tag == ALL_TAG:
            # Trim the whole book: every row of this book.
            keys = [k for k in self._rows if k[0] == trim.book_id]
        else:
            keys = [(trim.book_id, trim.tag)]
        dropped: List[int] = []
        for key in keys:
            row = self._rows.get(key)
            if not row:
                continue
            cut = bisect.bisect_right(row, trim.until_seqnum)
            removed, self._rows[key] = row[:cut], row[cut:]
            if key[1] == ALL_TAG or trim.tag != ALL_TAG:
                dropped.extend(removed)
            if not self._rows[key]:
                del self._rows[key]
        # When trimming a specific tag, records may remain reachable via
        # other tags; only fully-unreachable records are reported dropped.
        result = []
        for seqnum in dropped:
            tags = self._tags.get(seqnum)
            if tags is None:
                continue
            still_reachable = any(
                seqnum in self._row_set(trim.book_id, t)
                for t in tags
                if (trim.book_id, t) in self._rows
            )
            if not still_reachable:
                self._locator.pop(seqnum, None)
                self._tags.pop(seqnum, None)
                self.record_count -= 1
                result.append(seqnum)
        return result

    def _row_set(self, book_id: int, tag: int) -> List[int]:
        return self._rows.get((book_id, tag), [])

    # ------------------------------------------------------------------
    # Queries (the read path, Figure 4)
    # ------------------------------------------------------------------
    def read_next(self, book_id: int, tag: int, min_seqnum: int) -> Optional[int]:
        """First seqnum >= min_seqnum in row (book_id, tag), or None."""
        self.lookups += 1
        row = self._rows.get((book_id, tag))
        if not row:
            return None
        position = bisect.bisect_left(row, min_seqnum)
        return row[position] if position < len(row) else None

    def read_prev(self, book_id: int, tag: int, max_seqnum: int) -> Optional[int]:
        """Last seqnum <= max_seqnum in row (book_id, tag), or None."""
        self.lookups += 1
        row = self._rows.get((book_id, tag))
        if not row:
            return None
        position = bisect.bisect_right(row, max_seqnum)
        return row[position - 1] if position > 0 else None

    def range(
        self, book_id: int, tag: int, min_seqnum: int = 0, max_seqnum: Optional[int] = None
    ) -> List[int]:
        """All seqnums in [min_seqnum, max_seqnum] for the row."""
        self.lookups += 1
        row = self._rows.get((book_id, tag), [])
        lo = bisect.bisect_left(row, min_seqnum)
        hi = len(row) if max_seqnum is None else bisect.bisect_right(row, max_seqnum)
        return row[lo:hi]

    def shard_of(self, seqnum: int) -> Optional[str]:
        return self._locator.get(seqnum)

    def row_len(self, book_id: int, tag: int) -> int:
        return len(self._rows.get((book_id, tag), []))
