"""Deterministic retry policies and failure classification.

Every RPC path in the simulated cluster can fail two ways, and they are
not interchangeable:

- :class:`~repro.sim.network.RpcTimeout` — no reply arrived. *Ambiguous*:
  the request may have been dropped on the way in (never executed) or the
  reply may have been lost after the handler ran. Retrying a timed-out
  call is only safe when the operation is idempotent or deduplicated
  downstream (Boki's exactly-once machinery, §5).
- :class:`~repro.sim.network.RpcError` — the remote handler raised.
  *Definite*: the request reached the handler and failed; whatever
  partial effects it had are the handler's responsibility, and the error
  type tells the caller whether another attempt can succeed.

:func:`classify` preserves that distinction through arbitrarily nested
``RpcError`` layers (client -> gateway -> node), and
:class:`RetryPolicy.retry_timeouts` lets each call site opt ambiguous
retries in or out explicitly.

Determinism: backoff jitter is drawn from a named kernel RNG stream that
the :class:`~repro.resil.rpc.Resilience` hub creates lazily on the first
actual retry — a fault-free run consumes zero randomness and schedules
zero extra virtual-time events, so enabling the resilience layer cannot
perturb a same-seed fault-free simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Type

from repro.admission.errors import is_overload
from repro.sim.network import RpcError, RpcTimeout

#: Failure kinds returned by :func:`classify`.
TIMEOUT = "timeout"    # ambiguous: the request may or may not have executed
FAILURE = "failure"    # definite: the remote handler raised
OVERLOAD = "overload"  # definite: shed by admission control, never executed


def unwrap_failure(exc: BaseException) -> BaseException:
    """Strip nested :class:`RpcError` layers down to the root cause.

    Unlike a naive cause-chain walk this *stops* at the first
    non-``RpcError`` — so an ``RpcTimeout`` buried under relay hops (the
    gateway's call to a function node timing out, shipped back to the
    client as an ``RpcError``) comes back as the ``RpcTimeout`` itself,
    keeping the timeout-vs-failure distinction intact for retry policies.
    """
    cause: BaseException = exc
    while isinstance(cause, RpcError):
        cause = cause.cause
    return cause


def classify(exc: BaseException) -> str:
    """Classify a transport-level failure as :data:`TIMEOUT`,
    :data:`FAILURE`, or :data:`OVERLOAD` (see module docstring for why
    they differ). Overload sheds are *definite* — admission control
    rejected the request before any work started — so retrying them is
    always safe, but only after the shedder's retry-after hint."""
    if is_overload(exc):
        return OVERLOAD
    if isinstance(unwrap_failure(exc), RpcTimeout):
        return TIMEOUT
    return FAILURE


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded, jittered delays.

    ``max_attempts`` counts every try including the first; the backoff
    before attempt ``k`` (k >= 1) is ``base_delay * multiplier**(k-1)``
    capped at ``max_delay``, multiplied by a jitter factor uniform in
    ``[1 - jitter, 1 + jitter]``. Jitter randomness is drawn only when a
    retry actually happens (see module docstring).
    """

    max_attempts: int = 4
    base_delay: float = 2e-3
    max_delay: float = 0.2
    multiplier: float = 2.0
    jitter: float = 0.5
    #: Per-attempt RPC timeout; None means the call site's own default.
    attempt_timeout: float = None
    #: Whether ambiguous failures (timeouts) are retried. Only safe for
    #: idempotent or log-deduplicated operations.
    retry_timeouts: bool = False
    #: Exception types never worth retrying (unwrapped root causes).
    permanent: Tuple[Type[BaseException], ...] = field(default=())

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether attempt ``attempt`` (0-based) failing with ``exc``
        warrants another try."""
        if attempt + 1 >= self.max_attempts:
            return False
        cause = unwrap_failure(exc)
        if self.permanent and isinstance(cause, self.permanent):
            return False
        if isinstance(cause, RpcTimeout) and not self.retry_timeouts:
            return False
        return True

    def backoff(self, attempt: int, rng) -> float:
        """Delay before retrying after attempt ``attempt`` (0-based)."""
        delay = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class RetryBudget:
    """Cluster-wide retry-storm guard (Envoy-style retry budget).

    A deterministic token bucket shared by every resilient call site:
    each *first* attempt deposits ``ratio`` tokens (so the allowed retry
    volume scales with real traffic), each retry withdraws one. When the
    bucket is empty retries are denied and the original error surfaces —
    bounding the amplification a fault can cause to ``ratio`` extra load,
    instead of every caller independently hammering a struggling node.

    Uses no randomness: budget decisions are a pure function of the call
    sequence, keeping same-seed runs identical.
    """

    def __init__(self, ratio: float = 0.2, max_tokens: float = 50.0,
                 initial: float = 20.0):
        self.ratio = ratio
        self.max_tokens = max_tokens
        self.tokens = float(initial)
        self.spent = 0
        self.denied = 0

    def on_attempt(self) -> None:
        """Account one fresh (non-retry) attempt."""
        self.tokens = min(self.max_tokens, self.tokens + self.ratio)

    def try_spend(self) -> bool:
        """Withdraw one retry token; False (and counted) when exhausted."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False
