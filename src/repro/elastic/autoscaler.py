"""The elastic control loop: a kernel process that resizes the cluster.

The :class:`Autoscaler` runs on the controller's node and, every
``interval`` of virtual time, samples load signals
(:class:`~repro.elastic.signals.SignalSampler`), feeds them through one
:class:`~repro.elastic.policy.HysteresisPolicy` per fleet, and applies
the decisions through ``Controller.reconfigure_serialized`` with
minimal-movement placement — so an autoscaling reconfiguration never
races the failure detector and moves as few storage replicas as the
balance quota allows.

Scale-in follows a strict decommission protocol (``docs/elasticity.md``):

1. **Un-route** — the victim leaves the gateway's active set, so no new
   invocations land on it.
2. **Seal + install** — the serialized reconfiguration seals the current
   term (aborting the victim's in-flight appends the same way failure
   recovery does) and installs a term that excludes it.
3. **Fence** — the victim is network-isolated (PR 4's fencing hook), so
   a zombie cannot serve stale reads or accept stray appends afterwards.

Fencing requires the resilience layer: reads of *old-term* seqnums still
route to the previous replica sets, and with ``ndata`` replicas the
engine's read failover rides over the fenced one. Without
``cluster.enable_resilience()`` the autoscaler un-routes and removes but
does not isolate.

Everything is deterministic: decisions depend only on virtual time and
sampled counters, so same-seed runs produce byte-identical scaling
timelines (:attr:`Autoscaler.events`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.controller import ReconfigurationFailed
from repro.elastic.policy import HysteresisPolicy, PolicyConfig
from repro.elastic.signals import SignalSampler
from repro.obs.registry import MetricsRegistry
from repro.sim.kernel import Interrupt


class Autoscaler:
    """Load-driven scale-out/scale-in of the engine and storage fleets."""

    def __init__(
        self,
        cluster,
        interval: float = 0.05,
        engine_policy: Optional[HysteresisPolicy] = None,
        storage_policy: Optional[HysteresisPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        storage_write_budget: float = 4000.0,
        fence: bool = True,
    ):
        self.cluster = cluster
        self.controller = cluster.controller
        self.env = cluster.env
        self.interval = interval
        self.fence = fence
        self.registry = registry or MetricsRegistry()
        self.sampler = SignalSampler(
            cluster, self.registry, storage_write_budget=storage_write_budget
        )

        #: Full pools in construction order; scale-out takes the first
        #: non-active name, scale-in drops the last active one — func-0
        #: and storage-0 are the last to go.
        self.engine_pool: List[str] = [f.name for f in cluster.function_nodes]
        self.storage_pool: List[str] = [s.name for s in cluster.storage_nodes]
        self.active_engines: List[str] = list(self.controller.engine_fleet())
        self.active_storage: List[str] = list(self.controller.storage_fleet())

        ndata = cluster.config.ndata
        self.engine_policy = engine_policy or HysteresisPolicy(PolicyConfig(
            min_nodes=1, max_nodes=len(self.engine_pool),
        ))
        self.storage_policy = storage_policy or HysteresisPolicy(PolicyConfig(
            min_nodes=min(ndata, len(self.storage_pool)),
            max_nodes=len(self.storage_pool),
            breach_down=6, cooldown_down=2.0,
        ))

        #: Deterministic decision log: one dict per applied (or failed)
        #: fleet change, JSON-serializable.
        self.events: List[Dict] = []
        self.reconfig_failures = 0
        #: True while a scaling reconfiguration is in flight — admission
        #: control arms shedding during this window (capacity cannot be
        #: added mid-reconfiguration; see ``repro.admission``).
        self.reconfiguring = False
        self._fenced: set = set()
        self._proc = None
        self._node_seconds = 0.0
        self._acct_t = self.env.now
        self._acct_nodes = len(self.active_engines) + len(self.active_storage)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Spawn the control loop on the controller's node."""
        if self._proc is None:
            self._proc = self.controller.node.spawn(
                self._loop(), name="elastic-autoscaler"
            )
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("autoscaler stopped")
        self._proc = None

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _accrue(self, now: float) -> None:
        self._node_seconds += (now - self._acct_t) * self._acct_nodes
        self._acct_t = now

    def node_seconds(self, now: Optional[float] = None) -> float:
        """Provisioned node-seconds (engines + storage) so far — the
        cost side of the elasticity benchmark."""
        now = self.env.now if now is None else now
        return self._node_seconds + (now - self._acct_t) * self._acct_nodes

    def can_scale_out(self) -> bool:
        """Whether the engine fleet still has scale-out headroom: below
        the policy ceiling with an alive, non-active pool node to add.
        Admission control keeps load shedding disarmed while this holds —
        growing the fleet is the first response to a surge."""
        ceiling = self.engine_policy.config.max_nodes
        if ceiling is not None and len(self.active_engines) >= ceiling:
            return False
        active = set(self.active_engines)
        return any(
            name not in active
            and self.controller.components[name].node.alive
            for name in self.engine_pool
        )

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _loop(self):
        try:
            while True:
                yield self.env.timeout(self.interval)
                if self.controller.current_term is None:
                    continue
                now = self.env.now
                signals = self.sampler.sample(
                    self.active_engines, self.active_storage
                )
                self.registry.gauge("elastic.fleet.engines").record(
                    now, len(self.active_engines)
                )
                self.registry.gauge("elastic.fleet.storage").record(
                    now, len(self.active_storage)
                )
                tenancy = getattr(self.cluster, "tenancy", None)
                if tenancy is not None:
                    # Per-tenant demand (windowed arrival rate): the signal
                    # a tenant-aware scaling policy keys on, and the lane
                    # that shows *whose* traffic drove a scale-out.
                    for tenant, rps in tenancy.demand().items():
                        self.registry.gauge(
                            f"elastic.tenant.{tenant}.demand"
                        ).record(now, rps)
                e_delta = self.engine_policy.observe(
                    now, signals["engine_util"], len(self.active_engines)
                )
                s_delta = self.storage_policy.observe(
                    now, signals["storage_util"], len(self.active_storage)
                )
                if e_delta or s_delta:
                    yield from self._apply(e_delta, s_delta, signals)
        except Interrupt:
            return

    def _resize(self, active: Sequence[str], pool: Sequence[str],
                delta: int) -> List[str]:
        """The new active list after ``delta``, in pool order. Scale-out
        takes the first alive non-active pool nodes; scale-in drops the
        highest-ranked active ones."""
        active_set = set(active)
        if delta > 0:
            joiners = [
                name for name in pool
                if name not in active_set
                and self.controller.components[name].node.alive
            ][:delta]
            active_set.update(joiners)
        elif delta < 0:
            victims = [name for name in pool if name in active_set][delta:]
            active_set.difference_update(victims)
        return [name for name in pool if name in active_set]

    def _set_routing(self, engine_names: Sequence[str]) -> None:
        self.cluster.gateway.set_active_nodes(engine_names)

    def _fence(self, name: str) -> None:
        if self.fence and self.cluster.resil is not None:
            self.cluster.net.isolate(name)
            self._fenced.add(name)

    def _unfence(self, name: str) -> None:
        if name in self._fenced:
            self.cluster.net.unisolate(name)
            self._fenced.discard(name)

    def _apply(self, e_delta: int, s_delta: int, signals: Dict):
        now = self.env.now
        new_engines = self._resize(self.active_engines, self.engine_pool, e_delta)
        new_storage = self._resize(self.active_storage, self.storage_pool, s_delta)
        if new_engines == self.active_engines and new_storage == self.active_storage:
            return
        e_added = [n for n in new_engines if n not in self.active_engines]
        e_removed = [n for n in self.active_engines if n not in new_engines]
        s_added = [n for n in new_storage if n not in self.active_storage]
        s_removed = [n for n in self.active_storage if n not in new_storage]

        # Joiners first: they must be reachable before the new term
        # assigns them shards or replicas.
        refence = [n for n in e_added + s_added if n in self._fenced]
        for name in e_added + s_added:
            self._unfence(name)
        # Un-route engine victims before sealing (step 1 of the protocol).
        self._set_routing(new_engines)
        self.reconfiguring = True
        try:
            new_term = yield from self.controller.reconfigure_serialized(
                engine_names=new_engines,
                storage_names=new_storage,
                minimal_movement=True,
            )
        except ReconfigurationFailed:
            self.reconfiguring = False
            self.reconfig_failures += 1
            self._set_routing(self.active_engines)
            for name in refence:
                self._fence(name)
            self.engine_policy.record_change(now)
            self.storage_policy.record_change(now)
            self.events.append({
                "t": round(now, 9),
                "action": "reconfig-failed",
                "engines": list(self.active_engines),
                "storage": list(self.active_storage),
            })
            return

        self.reconfiguring = False
        self._accrue(self.env.now)
        self.active_engines = new_engines
        self.active_storage = new_storage
        self._acct_nodes = len(new_engines) + len(new_storage)
        # Fence victims last (step 3): the new term no longer references
        # them for writes, and old-term reads fail over across replicas.
        for name in e_removed + s_removed:
            self._fence(name)
        self.engine_policy.record_change(self.env.now)
        self.storage_policy.record_change(self.env.now)
        self.events.append({
            "t": round(self.env.now, 9),
            "action": "scale-out" if (e_added or s_added) else "scale-in",
            "term": new_term.term_id,
            "engines": list(new_engines),
            "storage": list(new_storage),
            "added": e_added + s_added,
            "removed": e_removed + s_removed,
            "engine_util": round(signals["engine_util"], 9),
            "storage_util": round(signals["storage_util"], 9),
        })

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def scale_events(self, action: Optional[str] = None) -> List[Dict]:
        if action is None:
            return list(self.events)
        return [e for e in self.events if e["action"] == action]

    def reaction_time(self, since: float) -> Optional[float]:
        """Time from ``since`` to the first scale-out applied at or after
        it — the benchmark's scale-up reaction metric."""
        for event in self.events:
            if event["action"] == "scale-out" and event["t"] >= since:
                return event["t"] - since
        return None
