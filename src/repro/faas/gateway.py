"""The FaaS gateway: function registry and request scheduling.

The gateway is the entry point for function requests (§4.2, Figure 2). It
keeps the registry of deployed functions, tracks the live function nodes,
and schedules each invocation onto a node. The default policy is
round-robin; a locality-aware policy can be installed so invocations land
on nodes whose LogBook engine holds the index for the request's LogBook —
the optimization §4.4 describes ("scheduling functions on nodes where their
data is likely to be cached").
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.obs.recorder import DISABLED
from repro.sim.kernel import Environment
from repro.sim.network import Network, RpcError
from repro.sim.node import Node
from repro.faas.worker import FunctionNode

#: Workflow invocations can be long chains; give them generous timeouts.
INVOKE_TIMEOUT = 120.0


def _unwrap(exc: RpcError) -> BaseException:
    """Strip nested RpcError layers (client -> gateway -> node) down to the
    original application exception."""
    cause: BaseException = exc
    while isinstance(cause, RpcError):
        cause = cause.cause
    return cause


class FunctionNotFoundError(Exception):
    """Invocation of a function name with no registered handler."""


class Gateway:
    """Routes invocations to function nodes."""

    def __init__(self, env: Environment, net: Network, name: str = "gateway"):
        self.env = env
        self.net = net
        self.node = net.register(Node(env, name, cpu_capacity=32))
        self.function_nodes: List[FunctionNode] = []
        self._functions: Dict[str, Callable] = {}
        self._rr = itertools.count()
        #: Optional scheduler override: f(fn_name, book_id) -> FunctionNode.
        self.scheduler: Optional[Callable[[str, Optional[int]], FunctionNode]] = None
        self.obs = DISABLED
        self.node.handle("faas.invoke", self._h_invoke)

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def add_function_node(self, fnode: FunctionNode) -> None:
        self.function_nodes.append(fnode)
        fnode.bind_gateway(self.invoke_from)
        for fn_name, handler in self._functions.items():
            fnode.register_function(fn_name, handler)

    def register_function(self, fn_name: str, handler: Callable) -> None:
        """Deploy a function to every current and future function node."""
        self._functions[fn_name] = handler
        for fnode in self.function_nodes:
            fnode.register_function(fn_name, handler)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def pick_node(self, fn_name: str, book_id: Optional[int]) -> FunctionNode:
        if not self.function_nodes:
            raise RuntimeError("no function nodes attached to gateway")
        if self.scheduler is not None:
            return self.scheduler(fn_name, book_id)
        alive = [f for f in self.function_nodes if f.node.alive]
        if not alive:
            raise RuntimeError("no live function nodes")
        return alive[next(self._rr) % len(alive)]

    # ------------------------------------------------------------------
    # Invocation paths
    # ------------------------------------------------------------------
    def _h_invoke(self, payload: dict) -> Generator:
        """Gateway-side handler for external invocations."""
        if payload["fn"] not in self._functions:
            raise FunctionNotFoundError(payload["fn"])
        fnode = self.pick_node(payload["fn"], payload.get("book_id"))
        if not self.obs.enabled:
            reply = yield self.net.rpc(
                self.node, fnode.node, "faas.exec", payload, timeout=INVOKE_TIMEOUT
            )
            return reply
        with self.obs.tracer.span(
            "gateway.invoke", node=self.node.name, kind="gateway",
            attrs={"fn": payload["fn"], "scheduled_to": fnode.name},
        ):
            reply = yield self.net.rpc(
                self.node, fnode.node, "faas.exec", payload, timeout=INVOKE_TIMEOUT
            )
            return reply

    def invoke_from(
        self,
        src_node: Node,
        fn_name: str,
        arg: Any = None,
        book_id: Optional[int] = None,
        baggage: Optional[dict] = None,
        parent_id: Optional[int] = None,
    ) -> Generator:
        """Invoke a function from ``src_node`` (internal fast path).

        Nightcore routes internal (function-to-function) calls through the
        local engine rather than back to the gateway; we model that by
        scheduling here and sending directly src -> function node.
        Returns ``(result, child_baggage)``.
        """
        if fn_name not in self._functions:
            raise FunctionNotFoundError(fn_name)
        payload = {
            "fn": fn_name,
            "arg": arg,
            "book_id": book_id,
            "baggage": baggage or {},
            "parent_id": parent_id,
        }
        fnode = self.pick_node(fn_name, book_id)
        try:
            reply = yield self.net.rpc(
                src_node, fnode.node, "faas.exec", payload, timeout=INVOKE_TIMEOUT
            )
        except RpcError as exc:
            raise _unwrap(exc) from None
        return reply["result"], reply["baggage"]

    def external_invoke(
        self,
        client_node: Node,
        fn_name: str,
        arg: Any = None,
        book_id: Optional[int] = None,
    ) -> Generator:
        """Client entry point: client -> gateway -> function node.

        Returns only the result (clients do not see baggage).
        """
        payload = {"fn": fn_name, "arg": arg, "book_id": book_id, "baggage": {}}
        try:
            reply = yield self.net.rpc(
                client_node, self.node, "faas.invoke", payload, timeout=INVOKE_TIMEOUT
            )
        except RpcError as exc:
            raise _unwrap(exc) from None
        return reply["result"]
