"""Critical-path extraction and per-category latency attribution."""

import pytest

from repro.core.cluster import BokiCluster
from repro.obs.critical_path import (
    CATEGORIES,
    AttributionAggregate,
    attribute_trace,
    categorize,
    critical_path,
    critical_path_report,
)
from repro.obs.trace import Tracer
from repro.sim.kernel import Environment
from repro.workloads.harness import run_closed_loop


def build_layered_trace(env, tracer):
    """request [0,6] -> rpc [0.5,5.5] -> handler [1,5] -> storage [2,4]."""

    def scenario():
        root = tracer.start_trace("request", node="client", kind="request")
        yield env.timeout(0.5)
        rpc = tracer.start_span("rpc:engine.append", parent=root, node="client", kind="rpc")
        yield env.timeout(0.5)
        handler = tracer.start_span(
            "handle:engine.append", parent=rpc, node="fn-0", kind="handler"
        )
        yield env.timeout(1.0)
        media = tracer.start_span("storage.write", parent=handler, node="st-0", kind="storage")
        yield env.timeout(2.0)
        media.finish()
        yield env.timeout(1.0)
        handler.finish()
        yield env.timeout(0.5)
        rpc.finish()
        yield env.timeout(0.5)
        root.finish()

    env.run_until(env.process(scenario()), limit=60.0)
    return tracer.spans


def test_segments_partition_root_exactly():
    env = Environment()
    tracer = Tracer(env)
    spans = build_layered_trace(env, tracer)
    root = next(s for s in spans if s.parent_id is None)
    segments = critical_path(spans)
    total = sum(end - start for _, start, end in segments)
    assert total == pytest.approx(root.duration, abs=1e-12)
    # Ordered, non-overlapping, gap-free cover of the root interval.
    cursor = root.start
    for _, start, end in segments:
        assert start == pytest.approx(cursor, abs=1e-12)
        assert end > start
        cursor = end
    assert cursor == pytest.approx(root.end, abs=1e-12)


def test_attribution_charges_deepest_component():
    env = Environment()
    tracer = Tracer(env)
    spans = build_layered_trace(env, tracer)
    breakdown = attribute_trace(spans)
    assert breakdown == pytest.approx(
        {"client": 1.0, "network": 1.0, "engine": 2.0, "storage": 2.0}
    )


def test_parallel_children_not_double_counted():
    env = Environment()
    tracer = Tracer(env)

    def scenario():
        root = tracer.start_trace("request", node="client", kind="request")
        yield env.timeout(1.0)
        a = tracer.start_span("rpc:a", parent=root, node="n0", kind="rpc")
        b = tracer.start_span("rpc:b", parent=root, node="n1", kind="rpc")
        yield env.timeout(2.0)
        a.finish()
        b.finish()
        yield env.timeout(1.0)
        root.finish()

    env.run_until(env.process(scenario()), limit=60.0)
    breakdown = attribute_trace(tracer.spans)
    # The replicate-style fan-out overlaps exactly: charged once, not twice.
    assert breakdown == pytest.approx({"client": 2.0, "network": 2.0})
    assert sum(breakdown.values()) == pytest.approx(4.0, abs=1e-12)


def test_unfinished_root_yields_empty_path():
    env = Environment()
    tracer = Tracer(env)
    tracer.start_trace("request", node="client", kind="request")  # never finished
    assert critical_path(tracer.spans) == []
    assert attribute_trace(tracer.spans) == {}


def test_categorize_kinds_and_handler_methods():
    env = Environment()
    tracer = Tracer(env)

    def span_of(name, kind):
        s = tracer.start_trace(name, kind=kind)
        s.finish()
        return s

    assert categorize(span_of("rpc:x", "rpc")) == "network"
    assert categorize(span_of("seq.quorum", "sequencer")) == "sequencer"
    assert categorize(span_of("storage.read", "storage")) == "storage"
    assert categorize(span_of("engine.append", "engine")) == "engine"
    assert categorize(span_of("fn", "function")) == "compute"
    assert categorize(span_of("handle:metalog.entry", "handler")) == "sequencer"
    assert categorize(span_of("handle:engine.read", "handler")) == "engine"
    assert categorize(span_of("handle:ddb_get", "handler")) == "external"
    assert categorize(span_of("handle:mystery.op", "handler")) == "other"
    for span in tracer.spans:
        assert categorize(span) in CATEGORIES


def test_aggregate_and_report():
    env = Environment()
    tracer = Tracer(env)
    build_layered_trace(env, tracer)
    agg = AttributionAggregate()
    assert agg.add_spans(tracer.spans) == 1
    doc = agg.to_dict()
    assert doc["traces"] == 1
    assert doc["total_s"] == pytest.approx(6.0)
    assert sum(doc["categories_s"].values()) == pytest.approx(doc["total_s"])
    assert sum(doc["share"].values()) == pytest.approx(1.0)
    assert doc["roots"] == {"request": 1}

    trace_id = tracer.spans[0].trace_id
    report = critical_path_report(tracer.spans, trace_id)
    assert "storage" in report
    assert "end-to-end" in report


def test_cluster_attribution_bounded_by_e2e_latency():
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3, seed=11
    )
    obs = cluster.enable_observability()
    cluster.boot()
    engines = list(cluster.engines.values())

    def make_op(client):
        book = cluster.logbook(1, engine=engines[client % len(engines)])

        def op():
            yield from book.append("x" * 256)

        return op

    result = run_closed_loop(
        cluster.env, make_op, num_clients=2, duration=0.05, warmup=0.02, obs=obs
    )
    assert result.completed > 0
    for latency, trace_id in result.extra["request_traces"]:
        breakdown = attribute_trace(obs.tracer.spans, trace_id=trace_id)
        attributed = sum(breakdown.values())
        # Attribution covers the request exactly — never more than the
        # measured end-to-end latency.
        assert attributed <= latency + 1e-9
        assert attributed == pytest.approx(latency, rel=1e-9)
