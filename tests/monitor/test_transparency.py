"""Monitors observe, never perturb: fault-free byte-identity and no RNG.

Mirrors the resilience layer's ``TestFaultFreeTransparency`` — the same
seed with monitors + alerting enabled must produce a byte-identical
simulation (virtual clock, message count, operation history) and leave
every RNG stream untouched, because the taps are synchronous attribute
calls and the alert evaluator only reads windows.
"""

import json

import pytest

from repro.chaos.history import History
from repro.chaos.scenarios import (
    _drive_all,
    _gateway_store_clients,
    _register_store_fn,
)
from repro.core.cluster import BokiCluster

pytestmark = [pytest.mark.chaos, pytest.mark.monitor]


def _run(monitored, seed=5):
    """Identical fault-free gateway store workload; returns the cluster
    and a comparable fingerprint of the whole run."""
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3,
        num_sequencer_nodes=3, seed=seed,
    )
    if monitored:
        cluster.enable_monitoring(context={"test": "transparency"})
    cluster.boot()
    history = History(cluster.env)
    _register_store_fn(cluster)
    procs = _gateway_store_clients(cluster, history, num_clients=2,
                                   ops_per_client=10)
    _drive_all(cluster, procs, limit=300.0)
    fingerprint = json.dumps({
        "now": round(cluster.env.now, 9),
        "messages_sent": cluster.net.messages_sent,
        "history": history.to_dicts(),
    }, sort_keys=True)
    return cluster, fingerprint


def test_monitoring_invisible_to_the_simulation():
    _, plain = _run(monitored=False)
    monitored_cluster, monitored = _run(monitored=True)
    assert plain == monitored
    # The monitors actually saw the run (this is not a vacuous pass).
    hub = monitored_cluster.monitor
    assert hub.events_seen > 0
    assert hub.alerts.evaluations > 0
    assert all(r.ok for r in hub.results())


def test_monitoring_consumes_no_rng():
    """Same streams created, every stream's state identical — monitors
    and the alert loop never draw randomness."""
    states = []
    for monitored in (False, True):
        cluster, _ = _run(monitored=monitored)
        states.append({
            name: rng.getstate()
            for name, rng in cluster.streams._streams.items()
        })
    assert sorted(states[0]) == sorted(states[1])
    for name in states[0]:
        assert states[0][name] == states[1][name], f"stream {name} diverged"


def test_no_alerts_fire_on_a_healthy_run():
    cluster, _ = _run(monitored=True)
    assert cluster.monitor.alerts.alerts == []
    assert cluster.monitor.recorder.snapshots == []
