"""Unit tests: the AIMD adaptive concurrency limiter.

The limiter is pure arithmetic (no RNG, no kernel events), so every
behaviour here is exactly computable: additive increase while the
latency EWMA sits at/below target, gentle decay above it, multiplicative
decrease on explicit downstream overload, and clamping at [min, max].
"""

import pytest

from repro.admission import AdaptiveLimiter

pytestmark = pytest.mark.admission


class TestValidation:
    def test_initial_must_lie_within_bounds(self):
        with pytest.raises(ValueError):
            AdaptiveLimiter(initial=2.0, min_limit=4.0)
        with pytest.raises(ValueError):
            AdaptiveLimiter(initial=8192.0, max_limit=4096.0)

    def test_alpha_must_be_a_valid_smoothing_factor(self):
        with pytest.raises(ValueError):
            AdaptiveLimiter(alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveLimiter(alpha=1.5)


class TestAdditiveIncrease:
    def test_fast_completions_grow_the_limit_additively(self):
        limiter = AdaptiveLimiter(initial=10.0, target_latency=0.050)
        limiter.on_success(0.010)
        # +increase/limit per completion: 10 + 1/10.
        assert limiter._limit == pytest.approx(10.1)
        assert limiter.limit == 10  # int floor

    def test_one_full_window_of_completions_grows_limit_by_about_one(self):
        limiter = AdaptiveLimiter(initial=10.0, target_latency=0.050)
        for _ in range(10):
            limiter.on_success(0.010)
        assert 10.9 <= limiter._limit <= 11.1  # TCP-Reno style: +1/RTT

    def test_limit_caps_at_max(self):
        limiter = AdaptiveLimiter(initial=5.0, min_limit=4.0, max_limit=5.0)
        for _ in range(100):
            limiter.on_success(0.001)
        assert limiter._limit == 5.0


class TestDecrease:
    def test_slow_completions_decay_the_limit_gently(self):
        limiter = AdaptiveLimiter(initial=100.0, target_latency=0.050,
                                  alpha=1.0)
        limiter.on_success(0.200)  # EWMA jumps straight to 0.2 > target
        assert limiter._limit == pytest.approx(98.0)  # x latency_backoff
        assert limiter.decreases == 1

    def test_downstream_overload_is_multiplicative_decrease(self):
        limiter = AdaptiveLimiter(initial=100.0)
        limiter.on_overload()
        assert limiter._limit == pytest.approx(70.0)  # x overload_backoff
        limiter.on_overload()
        assert limiter._limit == pytest.approx(49.0)
        assert limiter.decreases == 2

    def test_decrease_clamps_at_min_limit(self):
        limiter = AdaptiveLimiter(initial=5.0, min_limit=4.0)
        for _ in range(10):
            limiter.on_overload()
        assert limiter._limit == 4.0
        assert limiter.limit == 4

    def test_clamped_decrease_below_min_is_not_counted_twice(self):
        limiter = AdaptiveLimiter(initial=4.0, min_limit=4.0)
        limiter.on_overload()  # already at the floor: no actual decrease
        assert limiter.decreases == 0


class TestEwmaAndEstimates:
    def test_ewma_smooths_latency_observations(self):
        limiter = AdaptiveLimiter(alpha=0.3)
        limiter.on_success(0.100)
        assert limiter.ewma_latency == pytest.approx(0.100)
        limiter.on_success(0.200)
        assert limiter.ewma_latency == pytest.approx(0.3 * 0.200 + 0.7 * 0.100)

    def test_service_estimate_defaults_until_first_observation(self):
        limiter = AdaptiveLimiter()
        assert limiter.service_estimate(default=0.025) == 0.025
        limiter.on_success(0.040)
        assert limiter.service_estimate(default=0.025) == pytest.approx(0.040)

    def test_snapshot_is_json_ready(self):
        limiter = AdaptiveLimiter(initial=16.0)
        limiter.on_success(0.010)
        snap = limiter.snapshot()
        assert set(snap) == {"limit", "ewma_latency", "decreases"}
        assert snap["limit"] == 16
        assert snap["decreases"] == 0
