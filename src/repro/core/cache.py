"""The LogBook engine's record cache (§4.4).

Engines cache log records keyed by seqnum so best-case reads never leave
the function node. The same cache stores auxiliary data (the prototype
reuses the record cache for aux data, §4.4/§6 — Tkrzw LRU cache DBM in the
C++ implementation). Capacity is accounted in bytes; eviction is LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from repro.core.types import LogRecord, _approx_size


class RecordCache:
    """Byte-bounded LRU over (record data, aux data) entries."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[int, Tuple[Optional[LogRecord], Any, int]]" = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, seqnum: int) -> bool:
        return seqnum in self._entries

    # ------------------------------------------------------------------
    def put_record(self, record: LogRecord) -> None:
        assert record.seqnum is not None
        _, aux, _ = self._entries.get(record.seqnum, (None, None, 0))
        self._store(record.seqnum, record, aux)

    def put_aux(self, seqnum: int, auxdata: Any) -> None:
        record, _, _ = self._entries.get(seqnum, (None, None, 0))
        self._store(seqnum, record, auxdata)

    def _store(self, seqnum: int, record: Optional[LogRecord], aux: Any) -> None:
        size = (record.size_bytes() if record is not None else 0) + _approx_size(aux)
        if seqnum in self._entries:
            self.used_bytes -= self._entries[seqnum][2]
            del self._entries[seqnum]
        self._entries[seqnum] = (record, aux, size)
        self._entries.move_to_end(seqnum)
        self.used_bytes += size
        self._evict()

    def _evict(self) -> None:
        while self.used_bytes > self.capacity_bytes and len(self._entries) > 1:
            _, (_, _, size) = self._entries.popitem(last=False)
            self.used_bytes -= size
            self.evictions += 1

    # ------------------------------------------------------------------
    def get_record(self, seqnum: int) -> Optional[LogRecord]:
        entry = self._entries.get(seqnum)
        if entry is None or entry[0] is None:
            self.misses += 1
            return None
        self._entries.move_to_end(seqnum)
        self.hits += 1
        return entry[0]

    def get_aux(self, seqnum: int) -> Any:
        entry = self._entries.get(seqnum)
        if entry is None:
            return None
        self._entries.move_to_end(seqnum)
        return entry[1]

    def drop(self, seqnum: int) -> None:
        entry = self._entries.pop(seqnum, None)
        if entry is not None:
            self.used_bytes -= entry[2]

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
