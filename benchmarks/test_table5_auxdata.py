"""Table 5: the importance of aux-data log replay optimization (§7.5).

Paper (Retwis throughput in Op/s over increasing workload durations):

- optimization disabled: 1,565 -> 939 -> unmeasurable (replay grows with
  the log; longer runs accumulate more object writes);
- aux data in a dedicated Redis: ~9.3-11.0K (works, but every aux access
  is a network round trip);
- aux data in Boki's record cache: ~10.9-11.4K, ~1.17x over Redis, and
  robust to run length.
"""

import pytest

from benchmarks._common import emit_artifact, kops, make_cluster, print_table, run_once, throughput
from benchmarks._retwis_common import run_retwis_bokistore
from repro.baselines.redis import RedisClient, RedisService, redis_aux_channel

DURATIONS = [0.15, 0.45]
CLIENTS = 32
NUM_USERS = 40
#: Pre-existing updates per object: models the paper's long-running
#: deployment (its Table 5 sweeps 1-30 minute runs; objects accumulate
#: writes, and the disabled variant must replay all of them per read).
HISTORY = 50


def run_variant(variant, duration):
    cluster = make_cluster(
        num_function_nodes=8, num_storage_nodes=3, index_engines_per_log=4,
        workers_per_node=24,
    )
    kwargs = {}
    if variant == "disabled":
        kwargs["fill_aux"] = True  # writers still set views...
        # ...but readers cannot use or fill any cached views:
        def no_aux(store):
            def aux_get(record):
                if False:
                    yield
                return None

            def aux_put(record, aux):
                if False:
                    yield
                return None

            store.aux_get = aux_get
            store.aux_put = aux_put

        kwargs["aux_channel"] = no_aux
    elif variant == "redis":
        RedisService(cluster.env, cluster.net, cluster.streams)
        client = RedisClient(cluster.net, cluster.client_node)
        kwargs["aux_channel"] = lambda store: redis_aux_channel(store, client)
    return run_retwis_bokistore(
        cluster, num_clients=CLIENTS, duration=duration, num_users=NUM_USERS,
        history=HISTORY, **kwargs
    )


def experiment():
    out = {}
    for variant in ("disabled", "redis", "boki"):
        for duration in DURATIONS:
            out[(variant, duration)] = run_variant(variant, duration)
    return out


LABELS = {
    "disabled": "Optimization disabled",
    "redis": "AuxData w/ Redis",
    "boki": "AuxData w/ Boki",
}


@pytest.mark.benchmark(group="table5")
def test_table5_auxdata_importance(benchmark):
    results = run_once(benchmark, experiment)

    rows = [
        [LABELS[variant], *(f"{results[(variant, d)].throughput:,.0f}" for d in DURATIONS)]
        for variant in ("disabled", "redis", "boki")
    ]
    print_table(
        "Table 5: Retwis throughput (Op/s) by aux-data backend",
        ["", *(f"{d:.2f}s run" for d in DURATIONS)],
        rows,
    )

    emit_artifact(
        "table5_auxdata",
        {
            f"{variant}.d{duration}.throughput": throughput(
                results[(variant, duration)].throughput
            )
            for variant in ("disabled", "redis", "boki")
            for duration in DURATIONS
        },
        title="Table 5: aux-data replay optimization",
        config={
            "durations_s": DURATIONS, "clients": CLIENTS,
            "num_users": NUM_USERS, "history": HISTORY,
        },
    )

    short, long = DURATIONS
    # Claim 1: without the replay optimization throughput is far lower
    # (paper: ~7x below at 1 min, worse after).
    assert results[("boki", short)].throughput > 3 * results[("disabled", short)].throughput
    # Claim 2: disabled degrades with run length (longer log to replay).
    assert (
        results[("disabled", long)].throughput
        < 0.9 * results[("disabled", short)].throughput
    )
    # Claim 3: Boki's co-located aux beats the Redis round trips (paper:
    # 1.17x).
    assert results[("boki", long)].throughput > 1.05 * results[("redis", long)].throughput
    # Claim 4: both cached variants are robust to run length (within 25%).
    for variant in ("redis", "boki"):
        ratio = results[(variant, long)].throughput / results[(variant, short)].throughput
        assert ratio > 0.75
