"""Table 4: BokiQueue vs Amazon SQS vs Apache Pulsar (§7.4).

Paper (8 function / 3 storage nodes; P:C ratios 1:4, 4:1, 1:1):

- BokiQueue: 1.66-2.14x higher throughput than SQS, up to 15x lower
  latency (SQS builds huge queueing delays when producer-heavy);
- vs Pulsar: 1.06-1.23x higher throughput, up to 2.0x lower latency at
  light load.
"""

import pytest

from benchmarks._common import (
    emit_artifact,
    lat_ms,
    make_cluster,
    ms,
    print_table,
    run_once,
    throughput,
)
from repro.baselines.pulsar import PulsarBroker
from repro.baselines.sqs import SQSService
from repro.workloads.queueing import (
    BokiQueueBackend,
    PulsarBackend,
    SQSBackend,
    run_queue_workload,
)

#: (producers, consumers) — scaled from the paper's 16P/64C .. 256P/256C.
CONFIGS = [(4, 16), (16, 4), (16, 16)]
DURATION = 0.3
NUM_SHARDS = 8


def run_backend(name, producers, consumers):
    cluster = make_cluster(
        num_function_nodes=8, num_storage_nodes=3, index_engines_per_log=8,
        workers_per_node=32,
    )
    # CSMR: one consumer per shard — shard/partition count tracks the
    # consumer count (a queue with unconsumed shards would strand data).
    shards = min(NUM_SHARDS, consumers)
    if name == "SQS":
        SQSService(cluster.env, cluster.net, cluster.streams)
        backend = SQSBackend(cluster)
    elif name == "Pulsar":
        brokers = [
            PulsarBroker(cluster.env, cluster.net, cluster.streams, f"broker-{i}")
            for i in range(4)
        ]
        backend = PulsarBackend(
            cluster, [b.node.name for b in brokers], num_partitions=shards
        )
    else:
        backend = BokiQueueBackend(cluster, num_shards=shards)
    throughput, delivery = run_queue_workload(
        cluster.env, backend, producers, consumers, DURATION
    )
    return throughput, delivery


def experiment():
    out = {}
    for producers, consumers in CONFIGS:
        for system in ("SQS", "Pulsar", "Boki"):
            out[(producers, consumers, system)] = run_backend(system, producers, consumers)
    return out


@pytest.mark.benchmark(group="table4")
def test_table4_queue_comparison(benchmark):
    results = run_once(benchmark, experiment)

    rows = []
    for producers, consumers in CONFIGS:
        row = [f"{producers}P/{consumers}C"]
        for system in ("SQS", "Pulsar", "Boki"):
            tput, delivery = results[(producers, consumers, system)]
            row.append(
                f"{tput / 1e3:.1f}K  {ms(delivery.median())} ({ms(delivery.p99())})"
            )
        rows.append(row)
    print_table(
        "Table 4: queue throughput & delivery latency median (p99)",
        ["P/C", "SQS", "Pulsar", "Boki"],
        rows,
    )

    metrics = {}
    for producers, consumers in CONFIGS:
        for system in ("SQS", "Pulsar", "Boki"):
            tput, delivery = results[(producers, consumers, system)]
            prefix = f"{system.lower()}.p{producers}c{consumers}"
            metrics[f"{prefix}.throughput"] = throughput(tput)
            metrics[f"{prefix}.delivery_p50_ms"] = lat_ms(delivery.median())
    emit_artifact(
        "table4_queues",
        metrics,
        title="Table 4: BokiQueue vs SQS vs Pulsar",
        config={
            "configs": [list(c) for c in CONFIGS], "duration_s": DURATION,
            "num_shards": NUM_SHARDS,
        },
    )

    for producers, consumers in CONFIGS:
        sqs_tput, sqs_lat = results[(producers, consumers, "SQS")]
        pulsar_tput, pulsar_lat = results[(producers, consumers, "Pulsar")]
        boki_tput, boki_lat = results[(producers, consumers, "Boki")]
        # Claim 1: BokiQueue's throughput beats SQS everywhere (paper:
        # 1.66-2.14x).
        assert boki_tput > 1.3 * sqs_tput
        # Claim 2: BokiQueue at least matches Pulsar's throughput (paper:
        # 1.06-1.23x).
        assert boki_tput > 0.95 * pulsar_tput

    # Claim 3: producer-heavy SQS suffers massive queueing delay (paper:
    # 33.9-99.8 ms vs Boki's ~6.6 ms — up to 15x).
    _, sqs_heavy = results[(16, 4, "SQS")]
    _, boki_heavy = results[(16, 4, "Boki")]
    assert sqs_heavy.median() > 3 * boki_heavy.median()

    # Claim 4: at light load BokiQueue's delivery latency beats Pulsar's
    # (paper: up to 2.0x lower).
    _, pulsar_light = results[(4, 16, "Pulsar")]
    _, boki_light = results[(4, 16, "Boki")]
    assert boki_light.median() < pulsar_light.median()
