"""Dotted-path operations on JSON objects (the Figure 6c API surface).

BokiStore objects are JSON trees addressed by dotted paths ("a.c"). This
module implements the update operations as pure functions over dicts, plus
the op-application used during log replay — updates are stored in log
records as op descriptors and re-applied deterministically.
"""

from __future__ import annotations

import copy
from typing import Any, List, Optional


class PathError(Exception):
    """A path traversed a non-container or was otherwise invalid."""


def _split(path: str) -> List[str]:
    if not path:
        raise PathError("empty path")
    return path.split(".")


def get_path(obj: dict, path: str, default: Any = None) -> Any:
    node: Any = obj
    for part in _split(path):
        if not isinstance(node, dict) or part not in node:
            return default
        node = node[part]
    return node


def _parent_of(obj: dict, path: str, create: bool) -> tuple:
    parts = _split(path)
    node: Any = obj
    for part in parts[:-1]:
        if not isinstance(node, dict):
            raise PathError(f"{path}: {part!r} is not an object")
        if part not in node:
            if not create:
                raise PathError(f"{path}: missing {part!r}")
            node[part] = {}
        node = node[part]
    if not isinstance(node, dict):
        raise PathError(f"{path}: parent is not an object")
    return node, parts[-1]


def set_path(obj: dict, path: str, value: Any) -> None:
    parent, leaf = _parent_of(obj, path, create=True)
    parent[leaf] = value


def delete_path(obj: dict, path: str) -> None:
    try:
        parent, leaf = _parent_of(obj, path, create=False)
    except PathError:
        return
    parent.pop(leaf, None)


def inc_path(obj: dict, path: str, amount: Any) -> None:
    parent, leaf = _parent_of(obj, path, create=True)
    current = parent.get(leaf, 0)
    if not isinstance(current, (int, float)):
        raise PathError(f"{path}: cannot increment non-number {current!r}")
    parent[leaf] = current + amount


def make_array_path(obj: dict, path: str) -> None:
    parent, leaf = _parent_of(obj, path, create=True)
    if not isinstance(parent.get(leaf), list):
        parent[leaf] = []


def push_array_path(obj: dict, path: str, value: Any) -> None:
    parent, leaf = _parent_of(obj, path, create=True)
    target = parent.get(leaf)
    if target is None:
        target = parent[leaf] = []
    if not isinstance(target, list):
        raise PathError(f"{path}: cannot push onto non-array {target!r}")
    target.append(value)


# ----------------------------------------------------------------------
# Op descriptors (what BokiStore logs)
# ----------------------------------------------------------------------

def apply_op(obj: dict, op: dict) -> None:
    """Apply one logged update op in place."""
    kind = op["op"]
    if kind == "set":
        set_path(obj, op["path"], copy.deepcopy(op["value"]))
    elif kind == "inc":
        inc_path(obj, op["path"], op["value"])
    elif kind == "delete":
        delete_path(obj, op["path"])
    elif kind == "make_array":
        make_array_path(obj, op["path"])
    elif kind == "push":
        push_array_path(obj, op["path"], copy.deepcopy(op["value"]))
    elif kind == "replace":
        obj.clear()
        obj.update(copy.deepcopy(op["value"]))
    else:
        raise PathError(f"unknown op kind {kind!r}")


def apply_ops(obj: Optional[dict], ops: List[dict]) -> dict:
    """Apply ops to a (possibly missing) object; returns the object."""
    if obj is None:
        obj = {}
    for op in ops:
        apply_op(obj, op)
    return obj
