"""The Beldi primitive-operation microbenchmark (Figure 11c).

Measures median and p99 latency of the four workflow primitives — Read,
Write, CondWrite, Invoke — on each of the three systems (unsafe baseline,
Beldi, BokiFlow). A trivial child function backs the Invoke measurement.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.sim.metrics import LatencyRecorder


def register_primitive_workflows(runtime) -> None:
    """Deploy the no-op child plus one driver workflow per primitive."""

    def noop_child(env, arg):
        if False:
            yield
        return arg

    def read_driver(env, arg):
        results = []
        sim = env.runtime.cluster.env
        for i in range(arg["ops"]):
            started = sim.now
            yield from env.read("bench", f"key-{i % 16}")
            results.append(sim.now - started)
        return results

    def write_driver(env, arg):
        results = []
        sim = env.runtime.cluster.env
        for i in range(arg["ops"]):
            started = sim.now
            yield from env.write("bench", f"key-{i % 16}", i)
            results.append(sim.now - started)
        return results

    def cond_write_driver(env, arg):
        results = []
        sim = env.runtime.cluster.env
        for i in range(arg["ops"]):
            started = sim.now
            yield from env.cond_write("bench", f"key-{i % 16}", i, expected=None)
            results.append(sim.now - started)
        return results

    prefix = runtime.__class__.__name__

    def invoke_driver(env, arg):
        results = []
        sim = env.runtime.cluster.env
        for _ in range(arg["ops"]):
            started = sim.now
            yield from env.invoke(f"{prefix}-noop-child", None)
            results.append(sim.now - started)
        return results

    runtime.register_workflow(f"{prefix}-noop-child", noop_child)
    runtime.register_workflow(f"{prefix}-read", read_driver)
    runtime.register_workflow(f"{prefix}-write", write_driver)
    runtime.register_workflow(f"{prefix}-condwrite", cond_write_driver)
    runtime.register_workflow(f"{prefix}-invoke", invoke_driver)


def measure_primitives(
    runtime, ops_per_workflow: int = 20, workflows: int = 5
) -> Dict[str, LatencyRecorder]:
    """Run the drivers; returns recorders keyed by primitive name. Must be
    driven inside the cluster's simulation (use ``cluster.drive``)."""
    cluster = runtime.cluster
    prefix = runtime.__class__.__name__
    out: Dict[str, LatencyRecorder] = {}

    def experiment() -> Generator:
        for primitive in ["read", "write", "condwrite", "invoke"]:
            recorder = LatencyRecorder(primitive)
            for w in range(workflows):
                samples = yield from runtime.start_workflow(
                    f"{prefix}-{primitive}", {"ops": ops_per_workflow}, book_id=50 + w
                )
                for s in samples:
                    recorder.record(s)
            out[primitive] = recorder

    cluster.drive(experiment(), limit=3600.0)
    return out
