"""End-to-end scenario tests: fast scenarios pass, the unsafe baseline is
flagged, and verdict artifacts are byte-identical across reruns."""

import json
import os

import pytest

from repro.chaos.runner import (
    SCHEMA,
    load_verdict,
    run_scenario,
    validate_verdict,
    verdict_to_json,
    write_verdict,
)
from repro.chaos.scenarios import SCENARIOS, all_scenarios, fast_scenarios

pytestmark = pytest.mark.chaos


class TestCatalog:
    def test_catalog_has_fast_and_violation_scenarios(self):
        assert len(SCENARIOS) >= 5
        assert fast_scenarios()
        assert any(s.expect_violations for s in SCENARIOS.values())
        assert all_scenarios() == sorted(SCENARIOS)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            run_scenario("no-such-scenario", seed=1)


class TestFastScenarios:
    @pytest.mark.parametrize("name", fast_scenarios())
    def test_fast_scenario_passes(self, name):
        doc = run_scenario(name, seed=1)
        validate_verdict(doc)
        assert doc["passed"], doc["checks"]
        assert doc["schema"] == SCHEMA
        assert doc["timeline"], "scenario applied no faults"

    def test_unsafe_baseline_is_flagged(self):
        doc = run_scenario("unsafe-flow-crash-retry", seed=1)
        assert doc["expect_violations"]
        assert doc["violations"] > 0
        assert doc["passed"]
        dup = [v for c in doc["checks"] for v in c["violations"]
               if "duplicate" in v]
        assert dup, "unsafe baseline must show duplicated effects"

    def test_boki_flow_applies_effects_exactly_once(self):
        doc = run_scenario("flow-crash-retry", seed=1)
        assert doc["passed"]
        assert doc["stats"]["counter_result"] == 1.0
        assert doc["stats"]["effects_applied"] == 3


class TestCrashRecovery:
    def test_primary_crash_scenario_reconfigures(self):
        doc = run_scenario("crash-primary-sequencer", seed=1)
        assert doc["passed"], doc["checks"]
        assert doc["stats"]["final_term"] > doc["stats"]["initial_term"]
        assert doc["stats"]["ops_ok_after_crash"] > 0


class TestDeterminism:
    def test_same_seed_byte_identical_verdicts(self, tmp_path):
        """The whole point of seed-deterministic chaos: rerunning a
        scenario with the same seed reproduces the fault timeline and the
        verdict file byte for byte."""
        paths = []
        for run in ("a", "b"):
            doc = run_scenario("queue-link-chaos", seed=3)
            paths.append(write_verdict(doc, directory=str(tmp_path / run)))
        with open(paths[0], "rb") as fa, open(paths[1], "rb") as fb:
            assert fa.read() == fb.read()

    def test_different_seeds_yield_different_runs(self):
        a = run_scenario("queue-link-chaos", seed=1)
        b = run_scenario("queue-link-chaos", seed=2)
        assert a["stats"]["messages_sent"] != b["stats"]["messages_sent"]

    def test_verdict_json_is_canonical(self):
        doc = run_scenario("flow-crash-retry", seed=1)
        text = verdict_to_json(doc)
        assert text.endswith("\n")
        assert json.loads(text) == json.loads(verdict_to_json(doc))
        # Round-trips through the loader with validation.
        assert sorted(json.loads(text)) == sorted(doc)


class TestVerdictIO:
    def test_write_and_load_roundtrip(self, tmp_path):
        doc = run_scenario("flow-crash-retry", seed=2)
        path = write_verdict(doc, directory=str(tmp_path))
        assert os.path.basename(path) == "chaos_flow-crash-retry_seed2.json"
        assert load_verdict(path) == doc

    def test_env_var_overrides_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path / "env-dir"))
        doc = run_scenario("flow-crash-retry", seed=4)
        path = write_verdict(doc)
        assert str(tmp_path / "env-dir") in path

    def test_validate_rejects_malformed_docs(self):
        with pytest.raises(ValueError):
            validate_verdict({"schema": "wrong"})
        doc = run_scenario("flow-crash-retry", seed=1)
        broken = dict(doc)
        broken.pop("checks")
        with pytest.raises(ValueError):
            validate_verdict(broken)


class TestCli:
    def test_cli_list_and_run(self, tmp_path, capsys):
        from repro.chaos.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "flow-crash-retry" in out
        assert main(["run", "flow-crash-retry", "--seed", "1",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[PASS]" in out
        assert (tmp_path / "chaos_flow-crash-retry_seed1.json").exists()
