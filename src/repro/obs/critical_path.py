"""Critical-path extraction and latency attribution over span trees.

Answers "where did this request's latency go" *exactly*: the extractor
partitions the root span's interval into segments, each charged to the
deepest span responsible for that slice of virtual time (walking the
span tree backwards from the root's end, descending into the child whose
interval covers the cursor). Segment lengths therefore sum to the root's
end-to-end duration by construction — nothing is double-counted, even
for parallel children like the replicate fan-out, and nothing is lost.

Each segment is then mapped to a *component category* — network RTT,
sequencer quorum, storage media, engine/index work, function compute —
via the span's ``kind`` (and, for generic ``handle:<method>`` handler
spans, the RPC method prefix). :class:`AttributionAggregate` folds many
traces into one running per-category decomposition so a whole benchmark
run can be summarised without retaining every span.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import Span

#: Attribution categories, in report order.
CATEGORIES = (
    "network",
    "sequencer",
    "storage",
    "engine",
    "compute",
    "gateway",
    "client",
    "external",
    "other",
)

#: span.kind -> category for every kind emitted by the instrumented
#: components (see repro.sim.network / repro.core.* / repro.faas.*).
_KIND_CATEGORY = {
    "rpc": "network",
    "net": "network",
    "sequencer": "sequencer",
    "storage": "storage",
    "engine": "engine",
    "cache": "engine",
    "index": "engine",
    "function": "compute",
    "gateway": "gateway",
    "client": "client",
    "request": "client",
}

#: For ``handle:<method>`` handler spans the method prefix names the
#: component doing the work on the receiving node.
_METHOD_CATEGORY = {
    "engine": "engine",
    "index": "engine",
    "storage": "storage",
    "log": "sequencer",  # seal notifications
    "metalog": "sequencer",
    "seq": "sequencer",
    "sequencer": "sequencer",
    "gateway": "gateway",
    "faas": "compute",
    "fn": "compute",
    "worker": "compute",
    # Baseline/external services (DynamoDB, Redis, SQS, Pulsar, Cloudburst).
    "cb": "external",
    "ddb": "external",
    "pulsar": "external",
    "redis": "external",
    "sqs": "external",
}


def categorize(span: Span) -> str:
    """Component category a span's time is charged to."""
    if span.kind == "handler" and span.name.startswith("handle:"):
        method = span.name[len("handle:"):]
        prefix = method.split(".", 1)[0].split("_", 1)[0]
        return _METHOD_CATEGORY.get(prefix, "other")
    return _KIND_CATEGORY.get(span.kind, "other")


def critical_path(
    spans: Iterable[Span], trace_id: Optional[int] = None
) -> List[Tuple[Span, float, float]]:
    """Partition the root span's interval among its deepest active spans.

    Returns ``[(span, start, end), ...]`` segments ordered by start time;
    segment lengths sum exactly to the root's duration. ``trace_id``
    restricts the walk to one trace; without it, the spans must already
    belong to a single trace. Traces whose root never finished yield an
    empty path.
    """
    finished = [
        s for s in spans
        if s.finished and (trace_id is None or s.trace_id == trace_id)
    ]
    roots = [s for s in finished if s.parent_id is None]
    if not roots:
        return []
    children: Dict[int, List[Span]] = {}
    for span in finished:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    segments: List[Tuple[Span, float, float]] = []
    for root in sorted(roots, key=lambda s: (s.start, s.span_id)):
        _walk(root, children, root.start, root.end, segments)
    segments.sort(key=lambda seg: (seg[1], seg[0].span_id))
    return segments


def _walk(
    span: Span,
    children: Dict[int, List[Span]],
    lo: float,
    hi: float,
    out: List[Tuple[Span, float, float]],
) -> None:
    """Attribute [lo, hi] to ``span`` minus whatever its children cover,
    recursing into children from the latest-ending backwards (the child
    that ends last owns the tail of the window — the critical-path rule)."""
    kids = [
        c for c in children.get(span.span_id, [])
        if c.end > lo and c.start < hi
    ]
    # Later-ending child first; deterministic ties via span_id.
    kids.sort(key=lambda c: (c.end, c.span_id), reverse=True)
    cursor = hi
    for child in kids:
        if cursor <= lo:
            break
        child_end = min(child.end, cursor)
        child_start = max(child.start, lo)
        if child_end <= child_start:
            continue  # fully shadowed by an already-attributed sibling
        if cursor > child_end:
            out.append((span, child_end, cursor))
        _walk(child, children, child_start, child_end, out)
        cursor = child_start
    if cursor > lo:
        out.append((span, lo, cursor))


def attribute_trace(
    spans: Iterable[Span], trace_id: Optional[int] = None
) -> Dict[str, float]:
    """Per-category seconds along one trace's critical path.

    The values sum to the root span's end-to-end duration (floating-point
    epsilon aside); an unfinished root yields ``{}``.
    """
    out: Dict[str, float] = {}
    for span, start, end in critical_path(spans, trace_id=trace_id):
        key = categorize(span)
        out[key] = out.get(key, 0.0) + (end - start)
    return out


class AttributionAggregate:
    """Running critical-path attribution over many traces.

    Feed it batches of finished spans (e.g. one cluster's tracer output at
    a time) with :meth:`add_spans`; it keeps only per-category totals, so
    the spans themselves can be released afterwards.
    """

    def __init__(self):
        self.traces = 0
        self.total = 0.0
        self.categories: Dict[str, float] = {}
        self.root_names: Dict[str, int] = {}

    def add_spans(self, spans: Iterable[Span]) -> int:
        """Attribute every complete trace in ``spans``; returns the number
        of traces folded in."""
        finished = [s for s in spans if s.finished]
        by_trace: Dict[int, List[Span]] = {}
        for span in finished:
            by_trace.setdefault(span.trace_id, []).append(span)
        added = 0
        for trace_id in sorted(by_trace):
            tspans = by_trace[trace_id]
            roots = [s for s in tspans if s.parent_id is None]
            if not roots:
                continue
            for key, value in attribute_trace(tspans).items():
                self.categories[key] = self.categories.get(key, 0.0) + value
            for root in roots:
                self.total += root.duration
                self.root_names[root.name] = self.root_names.get(root.name, 0) + 1
            self.traces += 1
            added += 1
        return added

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready block for a benchmark artifact (deterministic order)."""
        total = self.total
        categories = {k: self.categories[k] for k in sorted(self.categories)}
        return {
            "traces": self.traces,
            "total_s": total,
            "categories_s": categories,
            "share": {
                k: (v / total if total > 0 else 0.0) for k, v in categories.items()
            },
            "roots": {k: self.root_names[k] for k in sorted(self.root_names)},
        }


def critical_path_report(
    spans: Iterable[Span], trace_id: int, title: str = "critical path"
) -> str:
    """Plain-text critical path of one trace: each segment with its span,
    node, category, and share of the end-to-end latency."""
    segments = critical_path(spans, trace_id=trace_id)
    lines = [f"=== {title} (trace {trace_id}) ==="]
    if not segments:
        lines.append("(no complete trace)")
        return "\n".join(lines)
    total = sum(end - start for _, start, end in segments)
    header = f"{'t+ms':>9} {'ms':>9} {'share':>7}  {'category':<10} {'span [node]'}"
    lines.append(header)
    lines.append("-" * len(header))
    t0 = segments[0][1]
    for span, start, end in segments:
        dur = end - start
        share = dur / total if total > 0 else 0.0
        lines.append(
            f"{(start - t0) * 1e3:>9.3f} {dur * 1e3:>9.3f} {share:>6.1%}  "
            f"{categorize(span):<10} {span.name} [{span.node or '?'}]"
        )
    lines.append(f"end-to-end {total * 1e3:.3f} ms over {len(segments)} segments")
    return "\n".join(lines)
