"""Scheduled, seed-deterministic fault injection.

A :class:`FaultPlan` is a list of timestamped fault events; a
:class:`FaultInjector` replays the plan as a process on the DES kernel.
Because the kernel is deterministic and the network's fault randomness
comes from a dedicated named stream (``chaos-net``), identical seeds
replay identical fault timelines and identical cluster behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.kernel import Environment
from repro.sim.network import Network


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action."""

    at: float
    action: str
    args: Tuple = ()
    kwargs: tuple = ()  # sorted (key, value) pairs — hashable + deterministic

    def kwargs_dict(self) -> dict:
        return dict(self.kwargs)


class FaultPlan:
    """A builder for fault timelines. All times are virtual seconds."""

    def __init__(self) -> None:
        self.events: List[FaultEvent] = []

    def _add(self, at: float, action: str, *args: Any, **kwargs: Any) -> "FaultPlan":
        self.events.append(
            FaultEvent(at, action, tuple(args), tuple(sorted(kwargs.items())))
        )
        return self

    # -- node faults ---------------------------------------------------
    def crash(self, at: float, node: str) -> "FaultPlan":
        return self._add(at, "crash", node)

    def restart(self, at: float, node: str) -> "FaultPlan":
        return self._add(at, "restart", node)

    def slowdown(self, at: float, node: str, extra: float) -> "FaultPlan":
        """Degrade a node: every message it handles takes ``extra`` more
        seconds (slow CPU / overloaded host)."""
        return self._add(at, "slowdown", node, extra)

    # -- connectivity faults -------------------------------------------
    def partition(self, at: float, a: str, b: str) -> "FaultPlan":
        return self._add(at, "partition", a, b)

    def heal(self, at: float, a: str, b: str) -> "FaultPlan":
        return self._add(at, "heal", a, b)

    def isolate(self, at: float, node: str) -> "FaultPlan":
        return self._add(at, "isolate", node)

    def unisolate(self, at: float, node: str) -> "FaultPlan":
        return self._add(at, "unisolate", node)

    def partition_groups(self, at: float, groups: List[List[str]]) -> "FaultPlan":
        return self._add(at, "partition_groups", tuple(tuple(g) for g in groups))

    def heal_all(self, at: float) -> "FaultPlan":
        return self._add(at, "heal_all")

    # -- link faults ---------------------------------------------------
    def link_fault(
        self, at: float, a: str, b: str,
        drop: float = 0.0, dup: float = 0.0, delay: float = 0.0,
        symmetric: bool = True,
    ) -> "FaultPlan":
        return self._add(at, "link_fault", a, b, drop=drop, dup=dup,
                         delay=delay, symmetric=symmetric)

    def clear_link_faults(self, at: float) -> "FaultPlan":
        return self._add(at, "clear_link_faults")

    # -- escape hatch --------------------------------------------------
    def call(self, at: float, label: str, fn: Callable[[], Any]) -> "FaultPlan":
        """Run an arbitrary (deterministic!) callable — scenario-specific
        recovery actions like re-configuring a restarted component."""
        self.events.append(FaultEvent(at, "call", (label, fn)))
        return self

    def sorted_events(self) -> List[FaultEvent]:
        """Events in firing order; insertion order breaks time ties."""
        order = sorted(range(len(self.events)), key=lambda i: (self.events[i].at, i))
        return [self.events[i] for i in order]


class FaultInjector:
    """Replays a :class:`FaultPlan` against a cluster's network."""

    def __init__(self, env: Environment, net: Network, plan: FaultPlan):
        self.env = env
        self.net = net
        self.plan = plan
        #: Machine-readable record of every applied fault (virtual time,
        #: action, arguments) — embedded in verdict artifacts so the fault
        #: timeline itself is part of the determinism guarantee.
        self.timeline: List[dict] = []
        #: Optional repro.monitor hub; applied faults land in the flight
        #: recorder's ring so black-box dumps show cause next to effect.
        self.monitor = None
        self.proc = None

    def start(self):
        self.proc = self.env.process(self._run(), name="chaos-injector")
        return self.proc

    def _run(self) -> Generator:
        for event in self.plan.sorted_events():
            if event.at > self.env.now:
                yield self.env.timeout(event.at - self.env.now)
            self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        net, args, kwargs = self.net, event.args, event.kwargs_dict()
        action = event.action
        if action == "crash":
            net.nodes[args[0]].crash()
        elif action == "restart":
            net.nodes[args[0]].restart()
        elif action == "slowdown":
            net.nodes[args[0]].slowdown = args[1]
        elif action == "partition":
            net.partition(args[0], args[1])
        elif action == "heal":
            net.heal(args[0], args[1])
        elif action == "isolate":
            net.isolate(args[0])
        elif action == "unisolate":
            net.unisolate(args[0])
        elif action == "partition_groups":
            net.partition_groups([list(g) for g in args[0]])
        elif action == "heal_all":
            net.heal_all()
        elif action == "link_fault":
            net.set_link_fault(args[0], args[1], **kwargs)
        elif action == "clear_link_faults":
            net.clear_link_faults()
        elif action == "call":
            args[1]()
        else:
            raise ValueError(f"unknown fault action {action!r}")
        entry = self._timeline_entry(event)
        self.timeline.append(entry)
        if self.monitor is not None:
            self.monitor.on_fault(entry)

    def _timeline_entry(self, event: FaultEvent) -> dict:
        if event.action == "call":
            args: Tuple = (event.args[0],)  # label only; the callable is not serializable
        elif event.action == "partition_groups":
            args = ([list(g) for g in event.args[0]],)
        else:
            args = event.args
        entry = {"t": round(self.env.now, 9), "action": event.action, "args": list(args)}
        if event.kwargs:
            entry["kwargs"] = {k: v for k, v in event.kwargs}
        return entry
