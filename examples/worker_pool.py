"""Elastic worker pool: shard leases + durable data structures.

Run:  python examples/worker_pool.py

An ephemeral fleet of worker functions processes a shared job queue. Each
worker *leases* a CSMR queue shard through a log-backed lock (the shared
log linearizes the race — two workers can never own the same shard), pulls
jobs from it, and tallies results into durable structures (a counter and a
map) that survive every worker's death. A late "replacement" worker proves
cold starts resume cleanly from the log.
"""

from repro.core import BokiCluster
from repro.faas import FunctionContext
from repro.libs.bokiflow import BokiFlowRuntime, WorkflowEnv
from repro.libs.bokiqueue import BokiQueue
from repro.libs.bokiqueue.leases import acquire_shard_wait
from repro.libs.bokistore import BokiStore
from repro.libs.bokistore.structures import DurableCounter, DurableMap


def main():
    cluster = BokiCluster(num_function_nodes=4, num_storage_nodes=3)
    cluster.boot()
    env = cluster.env
    runtime = BokiFlowRuntime(cluster)

    queue = BokiQueue(cluster.logbook(book_id=31), "jobs", num_shards=2)
    store = BokiStore(cluster.logbook(book_id=31))
    processed = DurableCounter(store, "processed")
    results = DurableMap(store, "results")

    def lease_env(worker_id):
        from repro.core.hashing import stable_hash

        fnode = cluster.function_nodes[stable_hash(worker_id) % 4]
        ctx = FunctionContext(node=fnode.node, gateway_invoke=None, book_id=31)
        return WorkflowEnv(runtime, ctx, worker_id)

    def producer():
        handle = queue.producer()
        for i in range(10):
            yield from handle.push({"job": f"job-{i}", "n": i})
        print(f"[{env.now*1e3:7.2f}ms] producer queued 10 jobs over 2 shards")

    def worker(worker_id, max_jobs):
        """Lease a shard, drain it, release; rotate to another shard while
        work remains (a worker must not camp on a drained shard while jobs
        sit elsewhere)."""
        handled = 0
        idle_rounds = 0
        while handled < max_jobs and idle_rounds < queue.num_shards:
            lease = yield from acquire_shard_wait(
                queue, lease_env(worker_id), worker_id, start_shard=idle_rounds
            )
            if lease is None:
                print(f"{worker_id}: no shard available")
                break
            print(f"[{env.now*1e3:7.2f}ms] {worker_id} leased shard {lease.shard}")
            drained_any = False
            while handled < max_jobs:
                job = yield from lease.consumer.pop_wait(poll_interval=0.002, max_polls=25)
                if job is None:
                    break
                yield from results.put(job["job"], job["n"] * job["n"])
                yield from processed.increment()
                handled += 1
                drained_any = True
            yield from lease.release()
            print(f"[{env.now*1e3:7.2f}ms] {worker_id} released shard {lease.shard} "
                  f"({handled} jobs so far)")
            idle_rounds = 0 if drained_any else idle_rounds + 1
        return handled

    # Two workers take the two shards; worker-a "dies" early (processes
    # only 2 jobs); a replacement leases its freed shard and finishes.
    procs = [
        env.process(producer()),
        env.process(worker("worker-a", max_jobs=2)),
        env.process(worker("worker-b", max_jobs=10)),
    ]
    for proc in procs:
        env.run_until(proc, limit=120.0)
    replacement = env.process(worker("worker-c", max_jobs=10))
    env.run_until(replacement, limit=120.0)

    def report():
        total = yield from processed.get()
        items = yield from results.items()
        return total, items

    total, items = cluster.drive(report())
    print(f"\njobs processed (durable counter): {total}")
    print(f"squares computed (durable map): {dict(items)}")
    assert total == 10
    assert len(items) == 10


if __name__ == "__main__":
    main()
