"""Tenant isolation benchmark: victim latency under a noisy neighbor.

The QoS claim of ``repro.tenant`` (ISSUE 10) as a committed perf
baseline: a well-behaved interactive tenant ("victim", pinned to its own
engine slice with 3x weight) is measured twice on same-seed clusters —
once alone, once while an unpinned "aggressor" tenant floods the shared
engines with ~3x their saturation in batch work. Tenant-aware placement
plus weighted-fair admission must keep the victim's p99 within 1.2x of
its solo run with full availability, while the aggressor absorbs >= 90%
of all sheds — noisy-neighbor containment, quantified and gated.
"""

import pytest

from benchmarks._common import (
    adopt_cluster,
    emit_artifact,
    info,
    lat_ms,
    metric,
    ms,
    print_table,
    run_once,
)
from repro.admission import BATCH, AdaptiveLimiter
from repro.core import BokiCluster
from repro.faas.scheduling import enable_tenant_scheduling

SEED = 0
WORKERS_PER_NODE = 4
#: Virtual seconds of one bulk-op on a worker slot (10 ms handler +
#: dispatch overhead) — same constant as the overload benchmarks.
BULK_COST = 0.0105
#: One engine's saturation: the victim's pinned slice and the shared
#: slice are one engine each.
ENGINE_SATURATION = WORKERS_PER_NODE / BULK_COST
VICTIM_RATE = 150.0
AGGRESSOR_RATE = 1200.0  # ~3x the shared slice's saturation
DURATION = 1.5
WARMUP = 0.4  # limiter convergence; measured window is [WARMUP, DURATION)


def _build():
    """Same-seed cluster with both tenants registered; only the offered
    load differs between the solo and contended runs."""
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3,
        workers_per_node=WORKERS_PER_NODE, seed=SEED,
    )
    hub = cluster.enable_tenancy()
    hub.registry.register("victim", weight=3.0, pinned=True)
    hub.registry.register("aggressor", weight=1.0)
    # Sized for the fleet (2 engines x 4 workers x 10 ms saturate at ~24
    # concurrent) so the limiter starts at equilibrium.
    ctrl = cluster.enable_admission(
        limiter=AdaptiveLimiter(initial=24.0, target_latency=0.050),
    )
    cluster.boot()
    adopt_cluster(cluster)
    scheduler = enable_tenant_scheduling(cluster)
    env = cluster.env

    def bulk(ctx, arg):
        yield env.timeout(0.01)
        return arg

    cluster.register_function("bulk-op", bulk)
    return cluster, hub, ctrl, scheduler


def _clients(cluster, tenant, rate, duration, priority="interactive"):
    """Open-loop bulk-op arrivals for one tenant; returns the generator
    process, the per-op process list, and the mutable op records
    (``[t_invoke, ok, latency]``). The invocation carries ``book_id=1``
    so the tenant scheduler can recover the tenant from its log space."""
    env = cluster.env
    rng = cluster.streams.stream(f"tenant-bench-{tenant}")
    ops, records = [], []

    def one_op(i):
        record = [env.now, False, None]
        records.append(record)
        try:
            yield from cluster.invoke("bulk-op", i, book_id=1,
                                      priority=priority, tenant=tenant)
        except Exception:
            pass
        else:
            record[1] = True
            record[2] = env.now - record[0]

    def generator():
        for i in range(int(rate * duration)):
            ops.append(env.process(one_op(i), name=f"{tenant}-op-{i}"))
            yield env.timeout((0.9 + 0.2 * rng.random()) / rate)

    return env.process(generator(), name=f"{tenant}-gen"), ops, records


def _windowed(records):
    """Availability and p99 of the ops invoked inside the window."""
    offered = ok = 0
    latencies = []
    for t_invoke, succeeded, latency in records:
        if not (WARMUP <= t_invoke < DURATION):
            continue
        offered += 1
        if succeeded:
            ok += 1
            latencies.append(latency)
    latencies.sort()
    rank = min(len(latencies) - 1, max(0, int(0.99 * len(latencies) + 0.5) - 1))
    return {
        "offered": offered,
        "ok": ok,
        "availability": ok / offered if offered else 0.0,
        "p99": latencies[rank] if latencies else None,
    }


def _run(contended):
    cluster, hub, ctrl, scheduler = _build()
    env = cluster.env
    gen, ops, victim_records = _clients(
        cluster, "victim", VICTIM_RATE, DURATION)
    gens, all_ops = [gen], list(ops)
    aggressor_records = []
    if contended:
        agen, aops, aggressor_records = _clients(
            cluster, "aggressor", AGGRESSOR_RATE, DURATION, priority=BATCH)
        gens.append(agen)
        all_ops.extend(aops)
    env.run_until(env.all_of(gens), limit=DURATION + 5.0)
    env.run_until(env.all_of(all_ops), limit=DURATION + 5.0)

    out = {"victim": _windowed(victim_records)}
    if contended:
        out["aggressor"] = _windowed(aggressor_records)
    snap = hub.fairness_snapshot()
    out["fairness"] = snap
    out["shed_total"] = ctrl.total_shed()
    out["placed"] = scheduler.placed
    out["fallbacks"] = scheduler.fallbacks
    return out


def experiment():
    return {"solo": _run(contended=False), "contended": _run(contended=True)}


@pytest.mark.tenant
@pytest.mark.benchmark(group="tenant")
def test_tenant_isolation(benchmark):
    runs = run_once(benchmark, experiment)
    solo, contended = runs["solo"], runs["contended"]
    ratio = contended["victim"]["p99"] / solo["victim"]["p99"]
    tenants = contended["fairness"]["tenants"]
    aggressor_shed_share = tenants["aggressor"]["shed_share"] or 0.0

    print_table(
        "Tenant isolation: victim under a batch-flood neighbor",
        ["run", "victim p99", "victim avail", "aggressor ok", "sheds",
         "aggressor shed share"],
        [
            ["solo", ms(solo["victim"]["p99"]),
             f"{solo['victim']['availability']:.3f}", "-",
             solo["shed_total"], "-"],
            ["contended", ms(contended["victim"]["p99"]),
             f"{contended['victim']['availability']:.3f}",
             contended["aggressor"]["ok"], contended["shed_total"],
             f"{aggressor_shed_share:.3f}"],
        ],
    )

    emit_artifact(
        "tenant_isolation",
        {
            "solo.victim_p99_ms": lat_ms(solo["victim"]["p99"]),
            "contended.victim_p99_ms": lat_ms(contended["victim"]["p99"]),
            "contended.p99_ratio": metric(ratio, unit="x", better="lower"),
            "contended.victim_availability": metric(
                contended["victim"]["availability"], unit="frac",
                better="higher"),
            "contended.aggressor_shed_share": metric(
                aggressor_shed_share, unit="frac", better="higher"),
            "contended.aggressor_goodput_per_s": metric(
                contended["aggressor"]["ok"] / (DURATION - WARMUP),
                unit="op/s", better="higher"),
            "contended.sheds": info(contended["shed_total"]),
        },
        title="Tenant isolation: victim p99 vs a noisy batch-flood neighbor",
        config={
            "workers_per_node": WORKERS_PER_NODE, "bulk_cost_s": BULK_COST,
            "victim_rate": VICTIM_RATE, "aggressor_rate": AGGRESSOR_RATE,
            "duration_s": DURATION, "warmup_s": WARMUP,
            "victim": {"weight": 3.0, "pinned": True},
            "aggressor": {"weight": 1.0, "pinned": False},
        },
        seed=SEED,
    )

    # The isolation contract (ISSUE 10 acceptance): the victim's p99
    # under the flood stays within 1.2x of its solo run...
    assert ratio <= 1.2, f"victim p99 ratio {ratio:.3f} exceeds 1.2x"
    # ...at full availability (its under-share traffic is never shed)...
    assert contended["victim"]["availability"] >= 0.999
    assert tenants["victim"]["shed"] == 0
    # ...while the aggressor absorbs >= 90% of the sheds without being
    # starved (it still gets roughly its slice's saturation throughput).
    assert contended["shed_total"] > 0
    assert aggressor_shed_share >= 0.9
    assert contended["aggressor"]["ok"] > 0.5 * ENGINE_SATURATION * (
        DURATION - WARMUP)
    # Placement did the isolating: invocations were tenant-routed.
    assert contended["placed"] > 0
