"""BokiQueue: serverless message queues over LogBooks (§5.3).

A queue stores both pushes and pops in the log; a pop's outcome is decided
by replaying the log (the pop takes the oldest un-taken push preceding it).
For scalability BokiQueue uses vCorfu's composable state machine
replication (CSMR): the queue is divided into shards, each an independent
SMR queue consumed by a single consumer (reducing contention); producers
push to shards round-robin. Auxiliary data caches per-record queue state so
replay is incremental (§5.4).
"""

from repro.libs.bokiqueue.leases import ShardLease, acquire_shard, acquire_shard_wait
from repro.libs.bokiqueue.queue import BokiQueue, QueueConsumer, QueueProducer, shard_tag

__all__ = [
    "BokiQueue",
    "QueueConsumer",
    "QueueProducer",
    "ShardLease",
    "acquire_shard",
    "acquire_shard_wait",
    "shard_tag",
]
