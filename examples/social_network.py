"""BokiStore example: durable objects with cross-object transactions (§5.2).

Run:  python examples/social_network.py

A miniature social network on BokiStore: JSON user objects, a follower
graph, and an atomic "transfer karma" transaction across two objects —
the capability Cloudflare Durable Objects lacks (§2.1). Also demonstrates
snapshot-isolated read-only transactions and the Figure 8 conflict rule.
"""

from repro.core import BokiCluster
from repro.libs.bokistore import BokiStore, Transaction


def main():
    cluster = BokiCluster(num_function_nodes=4, num_storage_nodes=3)
    cluster.boot()

    def scenario():
        store = BokiStore(cluster.logbook(book_id=11))

        # Create durable JSON objects (Figure 6c style).
        for name, karma in [("alice", 120), ("bob", 15)]:
            yield from store.update(name, [
                {"op": "set", "path": "profile.name", "value": name},
                {"op": "set", "path": "karma", "value": karma},
                {"op": "make_array", "path": "followers"},
            ])
        yield from store.update("bob", [
            {"op": "push", "path": "followers", "value": "alice"},
        ])

        bob = yield from store.get_object("bob")
        print(f"bob: karma={bob.get('karma')}, followers={bob.get('followers')}")

        # Cross-object transaction: transfer karma atomically.
        txn = yield from Transaction(store).begin()
        alice = yield from txn.get_object("alice")
        bob = yield from txn.get_object("bob")
        if alice.get("karma") >= 50:
            alice.inc("karma", -50)
            bob.inc("karma", 50)
        committed = yield from txn.commit()
        print(f"karma transfer committed: {committed}")

        # Read-only transaction: a consistent snapshot of both objects.
        snap = yield from Transaction(store, readonly=True).begin()
        a = yield from snap.get_object("alice")
        b = yield from snap.get_object("bob")
        yield from snap.commit()
        print(f"snapshot: alice={a.get('karma')}, bob={b.get('karma')}")
        assert a.get("karma") + b.get("karma") == 135

        # Conflicts: a write inside another txn's window aborts it (Fig. 8).
        txn2 = yield from Transaction(store).begin()
        victim = yield from txn2.get_object("alice")
        victim.inc("karma", 1000)
        yield from store.update("alice", [{"op": "inc", "path": "karma", "value": -1}])
        committed = yield from txn2.commit()
        print(f"conflicting transaction committed: {committed} (expected False)")
        assert committed is False

        final = yield from store.get_object("alice")
        print(f"alice final karma: {final.get('karma')}")

    cluster.drive(scenario())
    print("durable objects + transactions over one shared log.")


if __name__ == "__main__":
    main()
