"""Consistent hashing for LogBook -> physical-log placement.

Boki employs Dynamo's variant of consistent hashing — strategy 3 in the
Dynamo paper (§6): the hash ring is divided into ``Q`` equal-sized
partitions, and each member owns ``Q / n`` partitions. Remapping when the
member set changes moves whole partitions, and the assignment is balanced
by construction.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence


def stable_hash(value, salt: str = "") -> int:
    """A deterministic 64-bit hash (Python's builtin hash is salted)."""
    digest = hashlib.sha256(f"{salt}:{value!r}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Equal-partition consistent hashing (Dynamo strategy 3).

    The ring has ``num_partitions`` fixed slots; members (physical log ids)
    are assigned to slots round-robin over a deterministic shuffle, so each
    member owns an equal share and the mapping is stable for a given
    ``(members, num_partitions, seed)``.
    """

    def __init__(self, members: Sequence[int], num_partitions: int = 256, seed: int = 0):
        if not members:
            raise ValueError("ring needs at least one member")
        if num_partitions < len(members):
            raise ValueError("need at least one partition per member")
        self.members = list(members)
        self.num_partitions = num_partitions
        self.seed = seed
        self._partition_owner: List[int] = self._assign()

    def _assign(self) -> List[int]:
        # Rendezvous ranking per partition gives stability under membership
        # change (partitions rarely move between surviving members); a
        # fix-up pass then equalizes ownership to exactly floor/ceil(Q/n),
        # preserving strategy 3's balanced equal-size partitions.
        def rank(partition: int, member: int) -> int:
            return stable_hash((self.seed, partition, member), salt="rendezvous")

        owners = [
            max(self.members, key=lambda m: rank(p, m))
            for p in range(self.num_partitions)
        ]
        quota_low = self.num_partitions // len(self.members)
        counts = {m: 0 for m in self.members}
        for owner in owners:
            counts[owner] += 1
        # Move the lowest-rank partitions of overloaded members to the
        # underloaded member that ranks them highest.
        for member in sorted(self.members, key=lambda m: -counts[m]):
            while counts[member] > quota_low + (1 if self.num_partitions % len(self.members) else 0):
                owned = [p for p, o in enumerate(owners) if o == member]
                victim = min(owned, key=lambda p: rank(p, member))
                under = [m for m in self.members if counts[m] < quota_low]
                if not under:
                    break
                target = max(under, key=lambda m: rank(victim, m))
                owners[victim] = target
                counts[member] -= 1
                counts[target] += 1
        return owners

    def lookup(self, book_id: int) -> int:
        """Map a LogBook id to its physical log."""
        partition = stable_hash(book_id, salt="book") % self.num_partitions
        return self._partition_owner[partition]

    def partitions_of(self, member: int) -> List[int]:
        return [p for p, owner in enumerate(self._partition_owner) if owner == member]

    def load_counts(self, book_ids: Sequence[int]) -> Dict[int, int]:
        """How many of ``book_ids`` map to each member (for balance tests)."""
        counts = {m: 0 for m in self.members}
        for book_id in book_ids:
            counts[self.lookup(book_id)] += 1
        return counts
