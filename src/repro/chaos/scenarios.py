"""Named chaos scenarios.

Each scenario builds its own cluster from the given seed, drives client
load while a :class:`~repro.chaos.faults.FaultInjector` replays a fault
plan, then runs the offline checkers. Scenarios return the raw material
for a verdict artifact: the checks, the applied fault timeline, and a few
deterministic stats.

Scenarios marked ``expect_violations`` run the same workload against the
non-fault-tolerant baseline (``repro.baselines.unsafe``) and *must* be
flagged by the checkers — they prove the checkers have teeth.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.baselines.dynamodb import DynamoDBService
from repro.chaos.checkers import (
    CheckResult,
    check_exactly_once,
    check_metalog,
    check_queue_delivery,
    check_store_linearizability,
)
from repro.chaos.faults import FaultInjector, FaultPlan
from repro.chaos.history import History
from repro.chaos.liveness import (
    check_goodput_slo,
    check_recovery_slo,
    overload_report,
    recovery_metrics,
)
from repro.core.cluster import BokiCluster
from repro.libs.bokiqueue.queue import BokiQueue
from repro.libs.bokistore.store import BokiStore


@dataclass
class ScenarioResult:
    checks: List[CheckResult]
    timeline: List[dict]
    stats: Dict[str, float] = field(default_factory=dict)
    #: Liveness metrics (availability + RTO) for recovery scenarios;
    #: None for pure-safety scenarios. Serialized into schema-2 verdicts.
    recovery: Optional[dict] = None
    #: Online monitor verdict (repro.monitor): the incremental in-sim
    #: monitors' view of the same guarantees the offline checkers audit,
    #: plus freshness/reconciliation summaries and any fired alerts.
    #: None when monitoring was disabled for the run.
    online: Optional[dict] = None
    #: Goodput/degradation metrics (repro.admission) for overload
    #: scenarios (:func:`repro.chaos.liveness.overload_report`); None for
    #: everything else. Serialized into schema-2 verdicts.
    overload: Optional[dict] = None


@dataclass(frozen=True)
class Scenario:
    name: str
    description: str
    fn: Callable[[int], ScenarioResult]
    expect_violations: bool = False
    fast: bool = False
    #: Part of the recovery suite (``python -m repro.chaos run recovery``):
    #: measures availability/RTO around a fault, with or without the
    #: resilience layer.
    recovery: bool = False
    #: Part of the elasticity suite (``python -m repro.chaos run elastic``):
    #: runs the autoscaler's control loop against faults that overlap its
    #: scaling decisions.
    elastic: bool = False
    #: Part of the overload suite (``python -m repro.chaos run admission``):
    #: drives saturating load against the admission/backpressure layer (or
    #: its no-admission baseline) and checks the goodput SLO.
    admission: bool = False
    #: Part of the tenancy suite (``python -m repro.chaos run tenant``):
    #: multi-tenant load with per-tenant QoS, checking isolation and
    #: weighted-fair shedding (noisy-neighbor containment).
    tenant: bool = False


SCENARIOS: Dict[str, Scenario] = {}


def _scenario(name: str, description: str, expect_violations: bool = False,
              fast: bool = False, recovery: bool = False,
              elastic: bool = False, admission: bool = False,
              tenant: bool = False):
    def deco(fn):
        SCENARIOS[name] = Scenario(name, description, fn, expect_violations,
                                   fast, recovery, elastic, admission, tenant)
        return fn
    return deco


# ----------------------------------------------------------------------
# Shared load helpers
# ----------------------------------------------------------------------
def _store_load(cluster: BokiCluster, history: History, num_clients: int = 3,
                ops_per_client: int = 25, num_keys: int = 4,
                think_base: float = 0.02, book_id: int = 1):
    """Client processes doing put/get on shared keys through ONE engine.

    All clients share an engine because BokiStore's linearizability claim
    is per-index: cross-engine reads only get read-your-writes/monotonic
    reads (§4.4), which a linearizability checker would rightly reject.
    """
    env = cluster.env
    engine = cluster.engines["func-0"]
    rng = cluster.streams.stream("chaos-load")

    def client(i: int):
        store = BokiStore(cluster.logbook(book_id, engine=engine))
        store.history = history
        store.client_name = f"client-{i}"
        for j in range(ops_per_client):
            key = f"obj-{j % num_keys}"
            try:
                if rng.random() < 0.5:
                    yield from store.put(key, {"writer": f"c{i}", "n": j})
                else:
                    yield from store.get_object(key)
            except Exception:
                # The op stays indeterminate in the history; the client
                # moves on, as a retrying application would.
                pass
            yield env.timeout(think_base + rng.random() * think_base)

    return [env.process(client(i), name=f"chaos-client-{i}")
            for i in range(num_clients)]


def _drive_all(cluster: BokiCluster, procs, limit: float = 300.0) -> None:
    cluster.env.run_until(cluster.env.all_of(procs), limit=limit)


def _sanity(conditions: List) -> CheckResult:
    """Scenario self-check: did the faults actually overlap the load?

    A scenario whose workload finishes before its fault window closes is
    not testing what it claims, even if every guarantee checker passes —
    so overlap failures are verdict failures, not silent no-ops.
    """
    violations = [message for ok, message in conditions if not ok]
    return CheckResult("scenario-sanity", violations, len(conditions))


def _ok_ops_after(history: History, t: float) -> int:
    return sum(1 for op in history.ops if op.status == "ok" and op.t_invoke >= t)


def _base_stats(cluster: BokiCluster, history: History) -> Dict[str, float]:
    return {
        "virtual_time_s": round(cluster.env.now, 6),
        "ops_recorded": len(history),
        "messages_sent": cluster.net.messages_sent,
    }


# ----------------------------------------------------------------------
# Online monitoring (repro.monitor)
# ----------------------------------------------------------------------
#: Module-level toggle consulted by every scenario; ``runner.run_scenario``
#: overrides it per call. Monitors observe, never perturb — checks, stats,
#: and timelines are byte-identical either way — so the default is on and
#: committed verdict goldens carry the online verdicts.
MONITORING = True

#: The MonitorHub of the most recent monitored scenario run. Scenarios
#: discard their cluster when they return; this handle is how the CLI
#: reaches the flight-recorder snapshots after ``run_scenario``.
LAST_HUB = None


def _monitor(cluster: BokiCluster, scenario: str, seed: int):
    """Enable the online monitors + alerting on ``cluster`` (unless the
    module toggle is off); call before ``boot()`` so the metalog monitor
    sees every entry from index 0."""
    global LAST_HUB
    LAST_HUB = None
    if not MONITORING:
        return None
    LAST_HUB = cluster.enable_monitoring(
        context={"scenario": scenario, "seed": seed}
    )
    return LAST_HUB


def _attach(hub, *objects) -> None:
    """Point scenario-local tap sources (a BokiQueue, the DynamoDB model,
    a FaultInjector) at the hub."""
    if hub is not None:
        for obj in objects:
            obj.monitor = hub


def _online(cluster: BokiCluster, drained: bool = True,
            expected_effects=None) -> Optional[dict]:
    """Finalize the online monitors and return their verdict document."""
    hub = cluster.monitor
    if hub is None:
        return None
    hub.finish(drained=drained, expected_effects=expected_effects)
    return hub.verdict()


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
@_scenario(
    "crash-primary-sequencer",
    "Crash the primary sequencer mid-append under store load; the failure "
    "detector seals the term and reconfigures; linearizability and metalog "
    "consistency must survive.",
)
def crash_primary_sequencer(seed: int) -> ScenarioResult:
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=4,
        seed=seed, use_coord_sessions=True,
    )
    hub = _monitor(cluster, "crash-primary-sequencer", seed)
    cluster.boot()
    history = History(cluster.env)
    initial_term = cluster.controller.current_term.term_id
    primary = cluster.term.assignment(0).primary
    crash_at = 0.5
    plan = FaultPlan().crash(crash_at, primary)
    injector = FaultInjector(cluster.env, cluster.net, plan)
    _attach(hub, injector)
    injector.start()
    # Appends stall from the crash until the session-based failure detector
    # seals the term and the controller reconfigures (~session timeout),
    # so the load must carry enough operations to ride through the stall
    # and keep operating in the new term.
    procs = _store_load(cluster, history, num_clients=3, ops_per_client=30)
    _drive_all(cluster, procs, limit=300.0)
    final_term = cluster.controller.current_term.term_id
    ops_after = _ok_ops_after(history, crash_at)
    checks = [
        check_store_linearizability(history),
        check_metalog(cluster),
        _sanity([
            (final_term > initial_term,
             f"no reconfiguration happened: term stayed {initial_term}"),
            (ops_after > 0, "no operation completed after the crash"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["initial_term"] = initial_term
    stats["final_term"] = final_term
    stats["ops_ok_after_crash"] = ops_after
    return ScenarioResult(checks, injector.timeline, stats,
                          online=_online(cluster))


@_scenario(
    "partition-storage-under-load",
    "Partition one storage node away from the rest of the cluster during "
    "store load, then heal; appends stall on the replication quorum but "
    "no acknowledged write may be lost or reordered.",
)
def partition_storage_under_load(seed: int) -> ScenarioResult:
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3,
        seed=seed,
    )
    hub = _monitor(cluster, "partition-storage-under-load", seed)
    cluster.boot()
    history = History(cluster.env)
    victim = cluster.storage_nodes[0].name
    others = sorted(set(cluster.net.nodes) - {victim})
    part_at, heal_at = 0.3, 0.9
    plan = (
        FaultPlan()
        .partition_groups(part_at, [[victim], others])
        .heal_all(heal_at)
    )
    injector = FaultInjector(cluster.env, cluster.net, plan)
    _attach(hub, injector)
    injector.start()
    procs = _store_load(cluster, history, num_clients=3, ops_per_client=25)
    _drive_all(cluster, procs, limit=300.0)
    ops_after = _ok_ops_after(history, heal_at)
    checks = [
        check_store_linearizability(history),
        check_metalog(cluster),
        _sanity([
            (len(injector.timeline) == 2, "partition/heal did not both fire"),
            (ops_after > 0, "no operation completed after the heal"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["ops_ok_after_heal"] = ops_after
    return ScenarioResult(checks, injector.timeline, stats,
                          online=_online(cluster))


@_scenario(
    "storage-node-flap",
    "Crash and recover a storage node twice under load (restart hooks "
    "re-configure it into the current term); replication retries must "
    "preserve linearizability without a reconfiguration.",
)
def storage_node_flap(seed: int) -> ScenarioResult:
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3,
        seed=seed,
    )
    hub = _monitor(cluster, "storage-node-flap", seed)
    cluster.boot()
    history = History(cluster.env)
    snode = cluster.storage_nodes[0]
    # Recovery: records survive the crash (durable disk); the restart hook
    # re-installs the term so progress reporting resumes.
    snode.node.restart_hooks.append(lambda n, s=snode: s.configure(s.term_config))
    last_restart = 1.2
    plan = (
        FaultPlan()
        .crash(0.3, snode.name)
        .restart(0.6, snode.name)
        .crash(0.9, snode.name)
        .restart(last_restart, snode.name)
    )
    injector = FaultInjector(cluster.env, cluster.net, plan)
    _attach(hub, injector)
    injector.start()
    procs = _store_load(cluster, history, num_clients=3, ops_per_client=25)
    _drive_all(cluster, procs, limit=300.0)
    ops_after = _ok_ops_after(history, last_restart)
    checks = [
        check_store_linearizability(history),
        check_metalog(cluster),
        _sanity([
            (snode.node.crash_count == 2,
             f"expected 2 crashes, saw {snode.node.crash_count}"),
            (len(injector.timeline) == 4, "not all crash/restart events fired"),
            (ops_after > 0, "no operation completed after the final restart"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["storage_crashes"] = snode.node.crash_count
    stats["ops_ok_after_final_restart"] = ops_after
    return ScenarioResult(checks, injector.timeline, stats,
                          online=_online(cluster))


@_scenario(
    "slow-primary-sequencer",
    "Degrade the primary sequencer's CPU (every message it handles takes "
    "2 ms longer) for a window; ordering slows but linearizability and "
    "metalog invariants must hold.",
    fast=True,
)
def slow_primary_sequencer(seed: int) -> ScenarioResult:
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3,
        seed=seed,
    )
    hub = _monitor(cluster, "slow-primary-sequencer", seed)
    cluster.boot()
    history = History(cluster.env)
    primary = cluster.term.assignment(0).primary
    restore_at = 0.9
    plan = (
        FaultPlan()
        .slowdown(0.2, primary, 2e-3)
        .slowdown(restore_at, primary, 0.0)
    )
    injector = FaultInjector(cluster.env, cluster.net, plan)
    _attach(hub, injector)
    injector.start()
    procs = _store_load(cluster, history, num_clients=2, ops_per_client=30)
    _drive_all(cluster, procs, limit=300.0)
    ops_after = _ok_ops_after(history, restore_at)
    checks = [
        check_store_linearizability(history),
        check_metalog(cluster),
        _sanity([
            (len(injector.timeline) == 2, "slowdown/restore did not both fire"),
            (ops_after > 0, "no operation completed after the restore"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["ops_ok_after_restore"] = ops_after
    return ScenarioResult(checks, injector.timeline, stats,
                          online=_online(cluster))


# ----------------------------------------------------------------------
# BokiFlow exactly-once (and the unsafe baseline that breaks it)
# ----------------------------------------------------------------------
def _flow_crash_retry(seed: int, runtime_cls, scenario: str) -> ScenarioResult:
    cluster = BokiCluster(num_function_nodes=2, seed=seed)
    hub = _monitor(cluster, scenario, seed)
    db = DynamoDBService(cluster.env, cluster.net, cluster.streams)
    _attach(hub, db)
    cluster.boot()
    runtime = runtime_cls(cluster)

    def body(env, arg):
        current = (yield from env.read("t", "counter")) or 0
        yield from env.write("t", "counter", current + 1)   # step 0
        yield from env.write("t", "audit", f"run-{arg}")    # step 1
        yield from env.write("t", "final", "done")          # step 2
        return (yield from env.read("t", "counter"))

    runtime.register_workflow("wf", body)

    # Crash the first execution after step 1 has applied its effect.
    state = {"crashed": False}

    def hook(step):
        from repro.libs.bokiflow.env import WorkflowCrash
        if step == 2 and not state["crashed"]:
            state["crashed"] = True
            raise WorkflowCrash("injected mid-workflow crash")

    runtime.fault_hook = hook
    wf_id = "chaos-wf-1"
    outcome = {}

    def flow():
        from repro.libs.bokiflow.env import WorkflowCrash
        try:
            yield from runtime.start_workflow("wf", 1, book_id=1, workflow_id=wf_id)
            outcome["first"] = "completed"
        except WorkflowCrash:
            outcome["first"] = "crashed"
        outcome["result"] = yield from runtime.start_workflow(
            "wf", 1, book_id=1, workflow_id=wf_id
        )

    cluster.drive(flow(), limit=300.0)
    expected = [(wf_id, 0), (wf_id, 1), (wf_id, 2)]
    checks = [
        check_exactly_once(db.effect_log, expected),
        _sanity([
            (outcome.get("first") == "crashed",
             "first execution did not crash at the fault hook"),
            (outcome.get("result") is not None, "retry did not complete"),
        ]),
    ]
    stats = {
        "virtual_time_s": round(cluster.env.now, 6),
        "first_execution": 1.0 if outcome.get("first") == "crashed" else 0.0,
        "counter_result": float(outcome.get("result") or 0),
        "effects_applied": len(db.effect_log),
    }
    timeline = [{"t": 0.0, "action": "fault_hook",
                 "args": ["crash-before-step-2-first-execution"]}]
    return ScenarioResult(checks, timeline, stats,
                          online=_online(cluster, expected_effects=expected))


@_scenario(
    "flow-crash-retry",
    "Crash a BokiFlow workflow mid-execution and re-execute it with the "
    "same workflow id; every database effect must apply exactly once "
    "(Figure 6a's test-and-append + idempotent writes).",
    fast=True,
)
def flow_crash_retry(seed: int) -> ScenarioResult:
    from repro.libs.bokiflow import BokiFlowRuntime
    return _flow_crash_retry(seed, BokiFlowRuntime, "flow-crash-retry")


@_scenario(
    "unsafe-flow-crash-retry",
    "The same crash-and-retry workload against repro.baselines.unsafe "
    "(no logging): the re-executed prefix re-applies its writes and the "
    "exactly-once checker MUST flag duplicated effects.",
    expect_violations=True,
    fast=True,
)
def unsafe_flow_crash_retry(seed: int) -> ScenarioResult:
    from repro.baselines.unsafe import UnsafeRuntime
    return _flow_crash_retry(seed, UnsafeRuntime, "unsafe-flow-crash-retry")


# ----------------------------------------------------------------------
# BokiQueue under link chaos
# ----------------------------------------------------------------------
@_scenario(
    "queue-link-chaos",
    "Drop, duplicate, and delay metalog broadcasts between the primary "
    "sequencer and its subscribers for the whole run while producing and "
    "consuming a 2-shard queue (with a mid-run consumer replacement); "
    "delivery must be no-loss and no-duplicate.",
    fast=True,
)
def queue_link_chaos(seed: int) -> ScenarioResult:
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3,
        seed=seed,
    )
    hub = _monitor(cluster, "queue-link-chaos", seed)
    cluster.boot()
    env = cluster.env
    history = History(env)
    engine = cluster.engines["func-0"]
    queue = BokiQueue(cluster.logbook(1, engine=engine), "chaos-q", num_shards=2)
    queue.history = history
    _attach(hub, queue)
    primary = cluster.term.assignment(0).primary
    subscribers = sorted(
        list(cluster.engines) + [s.name for s in cluster.storage_nodes]
    )
    plan = FaultPlan()
    for sub in subscribers:
        plan.link_fault(0.2, primary, sub, drop=0.10, dup=0.20, delay=0.5e-3,
                        symmetric=False)
    injector = FaultInjector(env, cluster.net, plan)
    _attach(hub, injector)
    injector.start()

    total = 40
    produced = []

    def producer_proc():
        producer = queue.producer()
        for i in range(total):
            value = f"msg-{i:04d}"
            yield from producer.push(value)
            produced.append(value)
            yield env.timeout(0.02)

    got: Dict[int, int] = {0: 0, 1: 0}

    def consumer_proc(shard: int, rounds: int):
        consumer = queue.consumer(shard)
        for _ in range(rounds):
            value = yield from consumer.pop_wait(poll_interval=0.01, max_polls=50)
            if value is None:
                return
            got[shard] += 1

    # Phase 1: pop roughly half while faults are active; consumer 0 is
    # then REPLACED by a fresh instance (cold start: rebuilds its shard
    # view from the log and aux caches).
    phase1 = [
        env.process(producer_proc(), name="chaos-producer"),
        env.process(consumer_proc(0, 10), name="chaos-consumer-0"),
        env.process(consumer_proc(1, 10), name="chaos-consumer-1"),
    ]
    _drive_all(cluster, phase1, limit=300.0)

    def drain_proc(shard: int):
        consumer = queue.consumer(shard)  # fresh: no local view
        while True:
            value = yield from consumer.pop()
            if value is None:
                return
            got[shard] += 1

    phase2 = [env.process(drain_proc(s), name=f"chaos-drain-{s}") for s in (0, 1)]
    _drive_all(cluster, phase2, limit=300.0)

    checks = [
        check_queue_delivery(history, drained=True),
        check_metalog(cluster),
        _sanity([
            (len(injector.timeline) == len(subscribers),
             "not every link fault was installed"),
            (len(produced) == total, "producer did not finish"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["pushed"] = len(produced)
    stats["popped"] = got[0] + got[1]
    return ScenarioResult(checks, injector.timeline, stats,
                          online=_online(cluster, drained=True))


# ----------------------------------------------------------------------
# Recovery scenarios: availability + RTO around faults (repro.resil)
# ----------------------------------------------------------------------
def _register_store_fn(cluster: BokiCluster) -> None:
    """Deploy ``store-op``: a function doing one BokiStore put/get on the
    LogBook co-located with its node's engine."""
    def store_op(ctx, arg):
        store = BokiStore(cluster.logbook_for(ctx))
        if arg["op"] == "put":
            yield from store.put(arg["key"], arg["value"])
            return arg["value"]
        view = yield from store.get_object(arg["key"])
        return view.as_dict() if view.exists else None

    cluster.register_function("store-op", store_op)


def _gateway_store_clients(cluster: BokiCluster, history: History,
                           num_clients: int = 3, ops_per_client: int = 24,
                           timeout: Optional[float] = None, policy=None,
                           book_id: int = 1):
    """Clients invoking ``store-op`` through the gateway, recording a
    client-side history op per invocation (the vantage point availability
    is measured from).

    Each client owns one key: retried puts are at-least-once at the log
    level, and a late duplicate append must not land after a *newer*
    write to the same key — single-writer keys make the client's own
    sequential order the only order, which retries preserve. The
    gateway's scheduler must be pinned to one node by the scenario
    (linearizability is per-index, §4.4).
    """
    env = cluster.env
    rng = cluster.streams.stream("chaos-load")

    def client(i: int):
        key = f"obj-{i}"
        name = f"client-{i}"
        for j in range(ops_per_client):
            if rng.random() < 0.8:
                value = {"writer": f"c{i}", "n": j}
                op = history.invoke(name, "store.put", key, value)
                arg = {"op": "put", "key": key, "value": value}
            else:
                value = None
                op = history.invoke(name, "store.get", key)
                arg = {"op": "get", "key": key}
            try:
                result = yield from cluster.invoke(
                    "store-op", arg, book_id=book_id,
                    timeout=timeout, policy=policy,
                )
            except Exception as exc:
                history.fail(op, type(exc).__name__)
            else:
                history.ok(op, result)
            yield env.timeout(0.015 + rng.random() * 0.015)

    return [env.process(client(i), name=f"chaos-client-{i}")
            for i in range(num_clients)]


def _crash_primary_under_load(seed: int, resilient: bool) -> ScenarioResult:
    scenario = ("crash-primary-under-load" if resilient
                else "crash-primary-under-load-norecovery")
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=4,
        seed=seed, use_coord_sessions=True,
    )
    if resilient:
        cluster.enable_resilience()
    hub = _monitor(cluster, scenario, seed)
    cluster.boot()
    history = History(cluster.env)
    _register_store_fn(cluster)
    # Pin every invocation to one node: all store ops go through ONE
    # engine/index, which is what BokiStore's linearizability claims.
    target = cluster.function_nodes[0]
    cluster.gateway.scheduler = lambda fn, book_id: target
    initial_term = cluster.controller.current_term.term_id
    primary = cluster.term.assignment(0).primary
    crash_at = 0.4
    plan = FaultPlan().crash(crash_at, primary)
    injector = FaultInjector(cluster.env, cluster.net, plan)
    _attach(hub, injector)
    injector.start()
    # Appends stall from the crash until session expiry + reconfiguration
    # (~2.1 s). Resilient clients retry 1 s attempts through the stall;
    # the baseline uses a realistic 1 s client deadline and no retries,
    # so its operations fail for the whole failure-detection window.
    procs = _gateway_store_clients(
        cluster, history, num_clients=3, ops_per_client=24,
        timeout=None if resilient else 1.0,
    )
    _drive_all(cluster, procs, limit=300.0)
    final_term = cluster.controller.current_term.term_id
    metrics = recovery_metrics(history, crash_at,
                               kinds=("store.put", "store.get"),
                               enabled=resilient)
    sanity = [
        (final_term > initial_term,
         f"no reconfiguration happened: term stayed {initial_term}"),
        (_ok_ops_after(history, crash_at) > 0,
         "no operation completed after the crash"),
    ]
    checks = [check_store_linearizability(history), check_metalog(cluster)]
    stats = _base_stats(cluster, history)
    if resilient:
        checks.append(check_recovery_slo(metrics, min_availability=0.9))
        sanity.append((cluster.resil.counters["retries"] > 0,
                       "resilience layer never retried"))
        for key, value in sorted(cluster.resil.snapshot().items()):
            stats[f"resil_{key}"] = value
    else:
        availability = metrics["availability"]
        sanity.append(
            (availability is not None and availability < 0.9,
             f"baseline availability {availability} not degraded: the fault "
             f"window did not overlap the load"),
        )
    checks.append(_sanity(sanity))
    stats["initial_term"] = initial_term
    stats["final_term"] = final_term
    return ScenarioResult(checks, injector.timeline, stats, recovery=metrics,
                          online=_online(cluster))


@_scenario(
    "crash-primary-under-load",
    "Crash the primary sequencer under gateway-driven store load with the "
    "resilience layer on: client retries ride through failure detection + "
    "reconfiguration, so availability stays >= 0.9 and recovery time is "
    "finite while linearizability and metalog consistency hold.",
    recovery=True,
)
def crash_primary_under_load(seed: int) -> ScenarioResult:
    return _crash_primary_under_load(seed, resilient=True)


@_scenario(
    "crash-primary-under-load-norecovery",
    "The same primary-sequencer crash without the resilience layer "
    "(single-attempt clients with a 1 s deadline): safety holds but "
    "availability degrades for the whole failure-detection window — the "
    "baseline the recovery SLO is measured against.",
    recovery=True,
)
def crash_primary_under_load_norecovery(seed: int) -> ScenarioResult:
    return _crash_primary_under_load(seed, resilient=False)


def _coordinator_crash_midcommit(seed: int, resilient: bool) -> ScenarioResult:
    from repro.libs.bokiflow import BokiFlowRuntime
    from repro.libs.bokiflow.env import WorkflowCrash

    scenario = ("coordinator-crash-midcommit" if resilient
                else "coordinator-crash-midcommit-norecovery")
    cluster = BokiCluster(num_function_nodes=2, seed=seed)
    if resilient:
        cluster.enable_resilience()
    hub = _monitor(cluster, scenario, seed)
    db = DynamoDBService(cluster.env, cluster.net, cluster.streams)
    _attach(hub, db)
    cluster.boot()
    env = cluster.env
    history = History(env)
    runtime = BokiFlowRuntime(cluster)
    runtime.history = history

    def body(wf_env, arg):
        yield from wf_env.write("t", f"{arg}-a", 1)   # step 0
        yield from wf_env.write("t", f"{arg}-b", 2)   # step 1
        yield from wf_env.write("t", f"{arg}-c", 3)   # step 2 (the commit)
        return arg

    runtime.register_workflow("wf", body)

    num_clients, per_client = 2, 4
    wf_ids = [f"wf-{c}-{j}" for c in range(num_clients) for j in range(per_client)]
    # The coordinator (the function execution driving the workflow) of
    # every even-indexed workflow dies right before its final commit
    # step, after steps 0-1 already applied their effects.
    targets = set(wf_ids[::2])
    crashed: Dict[str, float] = {}
    timeline: List[dict] = []

    def hook(wf_env, step):
        wf = wf_env.workflow_id
        if step == 2 and wf in targets and wf not in crashed:
            crashed[wf] = env.now
            timeline.append({"t": round(env.now, 9), "action": "workflow_crash",
                             "args": [wf, "before-step-2"]})
            raise WorkflowCrash(f"coordinator of {wf} crashed mid-commit")

    runtime.fault_hook_env = hook
    completed: Dict[str, int] = {}

    def client(c: int):
        runtime.client_name = "flow"
        for j in range(per_client):
            wf_id = f"wf-{c}-{j}"
            try:
                result = yield from runtime.run_workflow(
                    "wf", wf_id, book_id=1, workflow_id=wf_id
                )
            except WorkflowCrash:
                continue  # baseline: the workflow is abandoned
            completed[wf_id] = 1 if result == wf_id else 0
            yield env.timeout(0.002)

    procs = [env.process(client(c), name=f"chaos-flow-client-{c}")
             for c in range(num_clients)]
    _drive_all(cluster, procs, limit=300.0)

    fault_at = min(crashed.values()) if crashed else 0.0
    metrics = recovery_metrics(history, fault_at, kinds=("flow.run",),
                               enabled=resilient)
    # A completed workflow must have applied all three steps exactly once;
    # a crashed-and-abandoned one legally leaves its step 0-1 effects
    # behind (non-duplicate extras), and must never have committed step 2.
    expected = [(wf, s) for wf in sorted(completed) for s in range(3)]
    exactly_once = check_exactly_once(db.effect_log, expected)
    if not resilient:
        applied = {tuple(e[0]) for e in db.effect_log}
        for wf in sorted(targets - set(completed)):
            if (wf, 2) in applied:
                exactly_once.violations.append(
                    f"abandoned workflow {wf} applied its commit step"
                )
    sanity = [
        (len(crashed) == len(targets),
         f"expected {len(targets)} coordinator crashes, saw {len(crashed)}"),
    ]
    checks = [exactly_once, check_metalog(cluster)]
    stats = {
        "virtual_time_s": round(env.now, 6),
        "ops_recorded": len(history),
        "messages_sent": cluster.net.messages_sent,
        "workflows_total": len(wf_ids),
        "workflows_completed": len(completed),
        "coordinator_crashes": len(crashed),
        "effects_applied": len(db.effect_log),
    }
    if resilient:
        checks.append(check_recovery_slo(metrics, min_availability=0.9))
        sanity.append((len(completed) == len(wf_ids),
                       f"only {len(completed)}/{len(wf_ids)} workflows "
                       f"completed despite recovery"))
        for key, value in sorted(cluster.resil.snapshot().items()):
            stats[f"resil_{key}"] = value
    else:
        availability = metrics["availability"]
        sanity.append(
            (availability is not None and availability < 0.9,
             f"baseline availability {availability} not degraded"),
        )
        sanity.append((0 < len(completed) < len(wf_ids),
                       "baseline should complete only the uncrashed workflows"))
    checks.append(_sanity(sanity))
    return ScenarioResult(checks, timeline, stats, recovery=metrics,
                          online=_online(cluster, expected_effects=expected))


@_scenario(
    "coordinator-crash-midcommit",
    "Kill the coordinator of every other BokiFlow workflow right before "
    "its final commit step; with recovery enabled each workflow is "
    "re-driven from its step journal under the SAME id, so all workflows "
    "complete with exactly-once effects and availability >= 0.9.",
    fast=True,
    recovery=True,
)
def coordinator_crash_midcommit(seed: int) -> ScenarioResult:
    return _coordinator_crash_midcommit(seed, resilient=True)


@_scenario(
    "coordinator-crash-midcommit-norecovery",
    "The same mid-commit coordinator crashes without recovery: crashed "
    "workflows are abandoned (never commit, effects stay a safe prefix), "
    "and availability degrades to the uncrashed fraction.",
    fast=True,
    recovery=True,
)
def coordinator_crash_midcommit_norecovery(seed: int) -> ScenarioResult:
    return _coordinator_crash_midcommit(seed, resilient=False)


@_scenario(
    "flaky-links-retry-storm",
    "Lossy client<->gateway and gateway<->function links for a window "
    "under store load: short-attempt retries mask the drops (availability "
    ">= 0.9) while the shared retry budget keeps the storm bounded "
    "(no denied retries, no breaker lockout) and safety holds.",
    fast=True,
    recovery=True,
)
def flaky_links_retry_storm(seed: int) -> ScenarioResult:
    from repro.resil import RetryBudget, RetryPolicy

    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3,
        seed=seed,
    )
    resil = cluster.enable_resilience()
    # A storm-sized budget: the default is tuned for rare faults, not a
    # sustained lossy window; scenarios size the budget like an operator
    # would. Deterministic — set before any traffic.
    resil.budget = RetryBudget(ratio=0.25, max_tokens=200.0, initial=50.0)
    hub = _monitor(cluster, "flaky-links-retry-storm", seed)
    cluster.boot()
    history = History(cluster.env)
    _register_store_fn(cluster)
    target = cluster.function_nodes[0]
    cluster.gateway.scheduler = lambda fn, book_id: target
    fault_at, heal_at = 0.2, 1.4
    plan = (
        FaultPlan()
        .link_fault(fault_at, "client", "gateway", drop=0.08, symmetric=True)
        .link_fault(fault_at, "gateway", target.name, drop=0.05, symmetric=True)
        .clear_link_faults(heal_at)
    )
    injector = FaultInjector(cluster.env, cluster.net, plan)
    _attach(hub, injector)
    injector.start()
    policy = RetryPolicy(max_attempts=8, base_delay=5e-3, max_delay=0.1,
                         attempt_timeout=0.25, retry_timeouts=True)
    procs = _gateway_store_clients(
        cluster, history, num_clients=3, ops_per_client=40, policy=policy,
    )
    _drive_all(cluster, procs, limit=300.0)
    metrics = recovery_metrics(history, fault_at,
                               kinds=("store.put", "store.get"),
                               enabled=True)
    snapshot = resil.snapshot()
    last_invoke = max((op.t_invoke for op in history.ops), default=0.0)
    checks = [
        check_store_linearizability(history),
        check_metalog(cluster),
        check_recovery_slo(metrics, min_availability=0.9),
        _sanity([
            (len(injector.timeline) == 3,
             "link faults / heal did not all fire"),
            (last_invoke > 0.8, "load did not span the fault window"),
            (snapshot["retries"] > 0, "the lossy window caused no retries"),
            (snapshot["budget_denied"] == 0,
             f"{snapshot['budget_denied']} retries denied: budget too small "
             f"for the storm"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    for key, value in sorted(snapshot.items()):
        stats[f"resil_{key}"] = value
    return ScenarioResult(checks, injector.timeline, stats, recovery=metrics,
                          online=_online(cluster))


# ----------------------------------------------------------------------
# Elasticity scenarios: the autoscaler's control loop under faults
# (repro.elastic)
# ----------------------------------------------------------------------
def _register_bulk_fn(cluster: BokiCluster) -> None:
    """Deploy ``bulk-op``: pure compute holding a worker slot for 10 ms —
    the load signal the engine autoscaling policy reacts to."""
    env = cluster.env

    def bulk_op(ctx, arg):
        yield env.timeout(0.01)
        return arg

    cluster.register_function("bulk-op", bulk_op)


def _merged_timeline(injector: FaultInjector, auto) -> List[dict]:
    """Fault events and autoscaler decisions in one time-ordered timeline,
    so a verdict shows scaling interleaved with the faults it rode through."""
    return sorted(injector.timeline + auto.events, key=lambda e: e["t"])


@_scenario(
    "elastic-scale-in-during-partition",
    "Light load makes the autoscaler scale the engine and storage fleets "
    "in while the very nodes it wants to decommission are partitioned "
    "away; the serialized seal-then-install decommission must preserve "
    "linearizability, queue no-loss/no-dup, and metalog consistency.",
    elastic=True,
)
def elastic_scale_in_during_partition(seed: int) -> ScenarioResult:
    from repro.elastic import HysteresisPolicy, PolicyConfig

    cluster = BokiCluster(
        num_function_nodes=3, num_storage_nodes=4, num_sequencer_nodes=3,
        workers_per_node=4, seed=seed,
    )
    cluster.enable_resilience()
    auto = cluster.enable_elasticity(
        interval=0.05,
        engine_policy=HysteresisPolicy(PolicyConfig(
            min_nodes=1, max_nodes=3, breach_up=2, breach_down=4,
            cooldown_down=0.5,
        )),
        # Slower storage policy: its single 4 -> 3 scale-in lands inside
        # the partition window.
        storage_policy=HysteresisPolicy(PolicyConfig(
            min_nodes=3, max_nodes=4, breach_down=10, cooldown_down=1.0,
        )),
    )
    hub = _monitor(cluster, "elastic-scale-in-during-partition", seed)
    cluster.boot()
    env = cluster.env
    history = History(env)
    _register_bulk_fn(cluster)

    # The scale-in victims are the highest pool ranks: func-2 first, then
    # storage-3. Partition exactly those away before the fleet shrinks.
    part_at, heal_at = 0.4, 2.0
    victims = ["func-2", "storage-3"]
    others = sorted(set(cluster.net.nodes) - set(victims))
    plan = (
        FaultPlan()
        .partition_groups(part_at, [victims, others])
        .heal_all(heal_at)
    )
    injector = FaultInjector(env, cluster.net, plan)
    _attach(hub, injector)
    injector.start()

    # Phase 1 (~0.5 s): mid load keeps utilization in the dead band; then
    # only a light client remains, so utilization drops under the low
    # watermark and the fleet shrinks during the partition.
    def bulk_client(n: int, think: float):
        for k in range(n):
            try:
                yield from cluster.invoke("bulk-op", k)
            except Exception:
                pass  # rerouted/timed-out invocations are the light load's risk
            yield env.timeout(think)

    busy = [env.process(bulk_client(40, 0.002), name=f"elastic-bulk-{i}")
            for i in range(6)]

    def light_client():
        while env.now < 2.6:
            try:
                yield from cluster.invoke("bulk-op", 0)
            except Exception:
                pass
            yield env.timeout(0.04)

    light = env.process(light_client(), name="elastic-bulk-light")

    # Safety vantage points, both pinned to func-0 (never decommissioned:
    # pool rank 0 is the last to leave the fleet).
    store_procs = _store_load(cluster, history, num_clients=3,
                              ops_per_client=30)
    engine = cluster.engines["func-0"]
    queue = BokiQueue(cluster.logbook(2, engine=engine), "elastic-q",
                      num_shards=2)
    queue.history = history
    _attach(hub, queue)
    produced: List[str] = []

    def producer_proc():
        producer = queue.producer()
        for i in range(30):
            value = f"msg-{i:04d}"
            yield from producer.push(value)
            produced.append(value)
            yield env.timeout(0.02)

    popped = {"n": 0}

    def consumer_proc(shard: int, rounds: int):
        consumer = queue.consumer(shard)
        for _ in range(rounds):
            value = yield from consumer.pop_wait(poll_interval=0.01,
                                                 max_polls=100)
            if value is None:
                return
            popped["n"] += 1

    queue_procs = [
        env.process(producer_proc(), name="elastic-producer"),
        env.process(consumer_proc(0, 8), name="elastic-consumer-0"),
        env.process(consumer_proc(1, 8), name="elastic-consumer-1"),
    ]
    _drive_all(cluster, busy + [light] + store_procs + queue_procs,
               limit=300.0)

    def drain_proc(shard: int):
        consumer = queue.consumer(shard)  # fresh: rebuilds from the log
        while True:
            value = yield from consumer.pop()
            if value is None:
                return
            popped["n"] += 1

    drains = [env.process(drain_proc(s), name=f"elastic-drain-{s}")
              for s in (0, 1)]
    _drive_all(cluster, drains, limit=300.0)

    scale_ins = auto.scale_events("scale-in")
    in_window = [e for e in scale_ins if part_at <= e["t"] <= heal_at]
    removed_in_window = {n for e in in_window for n in e["removed"]}
    ops_after = _ok_ops_after(history, heal_at)
    checks = [
        check_store_linearizability(history),
        check_queue_delivery(history, drained=True),
        check_metalog(cluster),
        _sanity([
            (len(injector.timeline) == 2, "partition/heal did not both fire"),
            (bool(in_window),
             "no scale-in happened during the partition window"),
            (set(victims) <= removed_in_window,
             f"partitioned victims {victims} were not the nodes "
             f"decommissioned during the partition (got "
             f"{sorted(removed_in_window)})"),
            (auto.reconfig_failures == 0,
             f"{auto.reconfig_failures} scaling reconfigurations failed"),
            (ops_after > 0, "no operation completed after the heal"),
            (len(produced) == 30, "producer did not finish"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["final_term"] = cluster.controller.current_term.term_id
    stats["scale_ins"] = len(scale_ins)
    stats["scale_ins_during_partition"] = len(in_window)
    stats["engines_active"] = len(auto.active_engines)
    stats["storage_active"] = len(auto.active_storage)
    stats["node_seconds"] = round(auto.node_seconds(), 6)
    stats["pushed"] = len(produced)
    stats["popped"] = popped["n"]
    stats["ops_ok_after_heal"] = ops_after
    return ScenarioResult(checks, _merged_timeline(injector, auto), stats,
                          online=_online(cluster, drained=True))


@_scenario(
    "elastic-flash-crowd-primary-crash",
    "A flash crowd drives the engine fleet from 2 to 4 nodes, then the "
    "primary sequencer crashes at peak load: the failure detector and the "
    "autoscaler race the controller through the serialized reconfiguration "
    "queue, while resilient store clients must keep availability >= 0.9 "
    "with linearizability and metalog consistency intact.",
    elastic=True,
)
def elastic_flash_crowd_primary_crash(seed: int) -> ScenarioResult:
    from repro.elastic import HysteresisPolicy, PolicyConfig
    from repro.workloads.harness import FlashCrowdShape, run_shaped_open_loop

    cluster = BokiCluster(
        num_function_nodes=2, num_spare_function_nodes=2,
        num_storage_nodes=3, num_sequencer_nodes=4,
        workers_per_node=4, seed=seed, use_coord_sessions=True,
    )
    cluster.enable_resilience()
    auto = cluster.enable_elasticity(
        interval=0.05,
        engine_policy=HysteresisPolicy(PolicyConfig(
            min_nodes=2, max_nodes=4, breach_up=2, breach_down=4,
            cooldown_down=1.0,
        )),
    )
    hub = _monitor(cluster, "elastic-flash-crowd-primary-crash", seed)
    cluster.boot()
    env = cluster.env
    history = History(env)
    _register_store_fn(cluster)
    _register_bulk_fn(cluster)

    # store-op is pinned to func-0 (linearizability is per-index, §4.4);
    # bulk-op round-robins over the autoscaler's ACTIVE fleet.
    gateway = cluster.gateway
    target = cluster.function_nodes[0]
    rr = itertools.count()

    def scheduler(fn_name, book_id):
        if fn_name == "store-op":
            return target
        alive = [f for f in gateway.function_nodes if f.node.alive]
        if gateway.active_nodes is not None:
            active = [f for f in alive if f.name in gateway.active_nodes]
            alive = active or alive
        return alive[next(rr) % len(alive)]

    gateway.scheduler = scheduler

    initial_term = cluster.controller.current_term.term_id
    surge_at, crash_at = 0.8, 1.3
    # Crash the primary ordering the store clients' log *at crash time*:
    # the flash crowd's scale-out has already rotated the sequencer
    # assignment by then, so the victim is resolved from the current term
    # (deterministic — the autoscaler timeline is seed-determined).
    crashed: Dict[str, object] = {}

    def crash_store_primary():
        term = cluster.controller.current_term
        primary = term.assignment(term.log_for_book(1)).primary
        crashed["primary"] = primary
        crashed["term"] = term.term_id
        cluster.net.nodes[primary].crash()

    plan = FaultPlan().call(crash_at, "crash-store-primary",
                            crash_store_primary)
    injector = FaultInjector(env, cluster.net, plan)
    _attach(hub, injector)
    injector.start()

    # Resilient gateway store clients ride through the append stall that
    # runs from the crash until the next reconfiguration replaces the
    # dead primary (the autoscaler's post-decay scale-in or the session
    # failure detector — whichever seals first).
    store_procs = _gateway_store_clients(cluster, history, num_clients=3,
                                         ops_per_client=80)
    # Base fleet (2 engines x 4 workers x 10 ms) saturates at ~800 req/s:
    # base 350/s sits in the dead band, the 1400/s peak forces 4 nodes.
    shape = FlashCrowdShape(base_rate=350, peak_rate=1400, surge_at=surge_at,
                            ramp=0.2, hold=0.8, decay=0.3)
    result = run_shaped_open_loop(
        env, lambda i: cluster.invoke("bulk-op", i), shape, duration=2.6,
        rng=cluster.streams.stream("elastic-flash"),
    )
    _drive_all(cluster, store_procs, limit=300.0)

    final_term = cluster.controller.current_term.term_id
    metrics = recovery_metrics(history, crash_at,
                               kinds=("store.put", "store.get"),
                               enabled=True)
    scale_outs = auto.scale_events("scale-out")
    reaction = auto.reaction_time(surge_at)
    peak_fleet = max((len(e["engines"]) for e in scale_outs), default=0)
    ops_after = _ok_ops_after(history, crash_at)
    checks = [
        check_store_linearizability(history),
        check_metalog(cluster),
        check_recovery_slo(metrics, min_availability=0.9),
        _sanity([
            (bool(scale_outs), "the flash crowd triggered no scale-out"),
            (reaction is not None and reaction < 0.5,
             f"scale-out reaction to the surge was {reaction}"),
            (peak_fleet > 2, "the engine fleet never grew past its base"),
            (len(injector.timeline) == 1, "the crash did not fire"),
            (final_term > initial_term,
             f"no reconfiguration happened: term stayed {initial_term}"),
            (ops_after > 0, "no operation completed after the crash"),
            (cluster.resil.counters["retries"] > 0,
             "resilience layer never retried through the stall"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["initial_term"] = initial_term
    stats["final_term"] = final_term
    stats["bulk_launched"] = result.extra["launched"]
    stats["bulk_completed"] = result.completed
    stats["bulk_errors"] = result.errors
    stats["scale_outs"] = len(scale_outs)
    stats["scale_ins"] = len(auto.scale_events("scale-in"))
    stats["peak_engines"] = peak_fleet
    stats["reaction_time_s"] = (round(reaction, 9)
                                if reaction is not None else None)
    stats["node_seconds"] = round(auto.node_seconds(), 6)
    stats["ops_ok_after_crash"] = ops_after
    stats["crashed_primary"] = crashed.get("primary")
    stats["crashed_in_term"] = crashed.get("term")
    return ScenarioResult(checks, _merged_timeline(injector, auto), stats,
                          recovery=metrics, online=_online(cluster))


# ----------------------------------------------------------------------
# Overload scenarios: admission control and graceful degradation under
# saturating load (repro.admission)
# ----------------------------------------------------------------------
#: Per-op worker cost of ``bulk-op`` (10 ms of handler time plus dispatch
#: overhead, slightly padded): the denominator of the analytic saturation
#: goodput ``workers / _BULK_COST`` the goodput SLO is measured against.
_BULK_COST = 0.0105


def _overload_clients(cluster: BokiCluster, history: History, rate: float,
                      duration: float, policy=None, timeout=None,
                      priority: str = "interactive", start: float = 0.0,
                      kind: str = "bulk.op", tenant: Optional[str] = None):
    """Open-loop ``bulk-op`` arrivals at ``rate``/s for ``duration``.

    Open loop is what makes overload *sustained*: every arrival is its
    own client process, so slow (or shed) requests do not throttle the
    arrival rate the way a closed loop would — offered load stays at
    ``rate`` no matter what the cluster does with it. Each operation is
    recorded in ``history`` (kind ``bulk.op``), the vantage point
    :func:`~repro.chaos.liveness.overload_report` measures goodput from.

    Returns ``(generator_proc, op_procs)`` — drive the generator to
    completion first, then the (by that point fully populated) per-op
    process list.
    """
    env = cluster.env
    rng = cluster.streams.stream("chaos-overload")
    ops: List = []

    def one_op(i: int):
        op = history.invoke("overload", kind, f"op-{i}")
        try:
            result = yield from cluster.invoke(
                "bulk-op", i, timeout=timeout, policy=policy,
                priority=priority, tenant=tenant,
            )
        except Exception as exc:
            history.fail(op, type(exc).__name__)
        else:
            history.ok(op, result)

    def generator():
        if start:
            yield env.timeout(start)
        for i in range(int(rate * duration)):
            ops.append(env.process(one_op(i), name=f"overload-op-{i}"))
            # ±10% jitter desynchronizes arrivals without changing the
            # offered rate (deterministic: named stream).
            yield env.timeout((0.9 + 0.2 * rng.random()) / rate)

    return env.process(generator(), name="overload-gen"), ops


def _worker_peak(cluster: BokiCluster, peaks: Dict[str, float],
                 interval: float = 0.005):
    """Sample the deepest function-node worker queue into
    ``peaks["worker.depth"]`` — the queue whose unbounded growth is the
    metastable-failure signature (zombie executions pile up behind
    client deadlines). Plain polling, not driven to completion: it
    simply stops being stepped once the client processes finish."""
    env = cluster.env

    def sampler():
        while True:
            depth = max(f.queue_depth for f in cluster.function_nodes)
            if depth > peaks["worker.depth"]:
                peaks["worker.depth"] = depth
            yield env.timeout(interval)

    peaks.setdefault("worker.depth", 0)
    return env.process(sampler(), name="chaos-queue-sampler")


def _retry_storm(seed: int, admission: bool) -> ScenarioResult:
    from repro.admission import AdaptiveLimiter
    from repro.resil import RetryPolicy

    name = ("retry-storm-metastable" if admission
            else "retry-storm-metastable-noadmission")
    cluster = BokiCluster(
        num_function_nodes=1, num_storage_nodes=3, num_sequencer_nodes=3,
        workers_per_node=4, seed=seed,
    )
    cluster.enable_resilience()
    ctrl = None
    if admission:
        # Sized for the tiny fleet: 4 workers x 10 ms saturate at ~16
        # concurrent before latency passes the 50 ms target, so the
        # limiter starts at its equilibrium instead of discovering it
        # from the default 64 mid-storm.
        ctrl = cluster.enable_admission(
            limiter=AdaptiveLimiter(initial=16.0, target_latency=0.050),
        )
    hub = _monitor(cluster, name, seed)
    cluster.boot()
    env = cluster.env
    history = History(env)
    _register_bulk_fn(cluster)

    # Offered load ~1.8x saturation; short per-attempt deadlines plus
    # eager retries are the storm: every timed-out attempt leaves a
    # zombie execution burning a worker slot AND re-arrives as a retry.
    workers = len(cluster.function_nodes) * 4
    saturation = workers / _BULK_COST
    rate, duration = 700.0, 2.0
    # The injected condition IS the load: a timeline marker documents it
    # (and lands in the flight recorder) like any other fault.
    plan = FaultPlan().call(0.0, f"open-loop-overload-{int(rate)}rps",
                            lambda: None)
    injector = FaultInjector(env, cluster.net, plan)
    _attach(hub, injector)
    injector.start()
    policy = RetryPolicy(max_attempts=4, base_delay=5e-3, max_delay=0.05,
                         attempt_timeout=0.12, retry_timeouts=True)
    peaks: Dict[str, float] = {}
    _worker_peak(cluster, peaks)
    gen, ops = _overload_clients(cluster, history, rate, duration,
                                 policy=policy)
    _drive_all(cluster, [gen], limit=300.0)
    _drive_all(cluster, ops, limit=300.0)

    window_start, window_end = 0.5, duration
    report = overload_report(
        history, window_start, window_end, kinds=("bulk.op",),
        saturation_goodput=saturation,
        queue_peaks={
            "gateway.inflight": cluster.gateway.inflight_peak,
            "worker.depth": peaks["worker.depth"],
        },
        shed=ctrl.total_shed() if ctrl is not None else 0,
        admission=ctrl.snapshot() if ctrl is not None else None,
        enabled=admission,
    )
    # The degradation contract: >= 70% of saturation goodput, accepted
    # requests finishing well inside the 120 ms client deadline, queues
    # bounded near the concurrency limit. The no-admission baseline MUST
    # fail this checker — that failure is its expected violation.
    goodput = check_goodput_slo(report, min_goodput_fraction=0.7,
                                max_accepted_p99=0.25, max_queue_peak=128)
    snapshot = cluster.resil.snapshot()
    last_invoke = max((op.t_invoke for op in history.ops), default=0.0)
    sanity = [
        (last_invoke > window_start + 1.0,
         "the open-loop load did not span the overload window"),
        (report["offered"] > 0.9 * rate * (window_end - window_start),
         "offered load fell below the open-loop rate"),
        (snapshot["retries"] > 0, "the storm caused no client retries"),
    ]
    if admission:
        sanity.append((ctrl.total_shed() > 0,
                       "admission control never shed under saturating load"))
    checks = [
        check_metalog(cluster),
        goodput,
        _sanity(sanity),
    ]
    stats = _base_stats(cluster, history)
    for key, value in sorted(snapshot.items()):
        stats[f"resil_{key}"] = value
    stats["gateway_inflight_peak"] = cluster.gateway.inflight_peak
    stats["worker_depth_peak"] = peaks["worker.depth"]
    stats["shed_total"] = ctrl.total_shed() if ctrl is not None else 0
    return ScenarioResult(checks, injector.timeline, stats, overload=report,
                          online=_online(cluster))


@_scenario(
    "retry-storm-metastable",
    "Open-loop load at ~1.8x saturation with short client deadlines and "
    "eager retries; the adaptive limiter sheds the excess, so goodput "
    "holds >= 70% of saturation with bounded accepted latency and "
    "bounded queues while the shed clients back off on retry-after "
    "hints.",
    fast=True,
    admission=True,
)
def retry_storm_metastable(seed: int) -> ScenarioResult:
    return _retry_storm(seed, admission=True)


@_scenario(
    "retry-storm-metastable-noadmission",
    "The same retry storm with no admission control: timed-out attempts "
    "leave zombie executions burning worker slots while their retries "
    "re-arrive, queues grow without bound, and goodput collapses — the "
    "metastable failure the goodput SLO checker must flag.",
    expect_violations=True,
    fast=True,
    admission=True,
)
def retry_storm_metastable_noadmission(seed: int) -> ScenarioResult:
    return _retry_storm(seed, admission=False)


@_scenario(
    "sustained-overload-beyond-max-nodes",
    "A sustained surge beyond what even the autoscaler's max_nodes fleet "
    "can serve: scale-out absorbs what it can (shedding stays disarmed "
    "below the ceiling), then admission control sheds batch traffic "
    "first so interactive clients keep their availability SLO while "
    "goodput holds near the max-fleet saturation point.",
    admission=True,
)
def sustained_overload_beyond_max_nodes(seed: int) -> ScenarioResult:
    from repro.admission import BATCH, INTERACTIVE
    from repro.elastic import HysteresisPolicy, PolicyConfig
    from repro.resil import RetryPolicy

    cluster = BokiCluster(
        num_function_nodes=2, num_spare_function_nodes=2,
        num_storage_nodes=3, num_sequencer_nodes=3,
        workers_per_node=4, seed=seed,
    )
    cluster.enable_resilience()
    auto = cluster.enable_elasticity(
        interval=0.05,
        engine_policy=HysteresisPolicy(PolicyConfig(
            min_nodes=2, max_nodes=4, breach_up=2, breach_down=4,
            cooldown_down=2.0,
        )),
        # Storage stays put: the surge is pure compute, and a bulk-idle
        # storage fleet must not shrink below its replication needs.
        storage_policy=HysteresisPolicy(PolicyConfig(
            min_nodes=3, max_nodes=3, breach_down=1000, cooldown_down=10.0,
        )),
    )
    ctrl = cluster.enable_admission()
    hub = _monitor(cluster, "sustained-overload-beyond-max-nodes", seed)
    cluster.boot()
    env = cluster.env
    history = History(env)
    _register_store_fn(cluster)
    _register_bulk_fn(cluster)

    # store-op is pinned to func-0 (linearizability is per-index, §4.4);
    # bulk-op round-robins over the autoscaler's ACTIVE fleet.
    gateway = cluster.gateway
    target = cluster.function_nodes[0]
    rr = itertools.count()

    def scheduler(fn_name, book_id):
        if fn_name == "store-op":
            return target
        alive = [f for f in gateway.function_nodes if f.node.alive]
        if gateway.active_nodes is not None:
            active = [f for f in alive if f.name in gateway.active_nodes]
            alive = active or alive
        return alive[next(rr) % len(alive)]

    gateway.scheduler = scheduler

    # Max fleet (4 engines x 4 workers x 10 ms) saturates at ~1520/s;
    # the surge offers ~1800/s of BATCH work — beyond any fleet the
    # policy can build — while INTERACTIVE store clients ride along.
    workers = 4 * 4
    saturation = workers / _BULK_COST
    surge_at, rate, duration = 0.3, 1800.0, 1.6
    plan = FaultPlan().call(surge_at, f"sustained-surge-{int(rate)}rps",
                            lambda: None)
    injector = FaultInjector(env, cluster.net, plan)
    _attach(hub, injector)
    injector.start()
    policy = RetryPolicy(max_attempts=3, base_delay=5e-3, max_delay=0.05,
                         attempt_timeout=0.5, retry_timeouts=True)
    gen, ops = _overload_clients(cluster, history, rate, duration,
                                 policy=policy, priority=BATCH,
                                 start=surge_at)
    store_procs = _gateway_store_clients(cluster, history, num_clients=3,
                                         ops_per_client=70)
    _drive_all(cluster, [gen] + store_procs, limit=300.0)
    _drive_all(cluster, ops, limit=300.0)

    # Measure once the fleet is at its ceiling and the scale-out backlog
    # has drained: offered stays ~1.2x the max-fleet saturation.
    window_start, window_end = 0.8, surge_at + duration
    report = overload_report(
        history, window_start, window_end, kinds=("bulk.op",),
        saturation_goodput=saturation,
        queue_peaks={"gateway.inflight": gateway.inflight_peak},
        shed=ctrl.total_shed(),
        admission=ctrl.snapshot(),
        enabled=True,
    )
    metrics = recovery_metrics(history, surge_at,
                               kinds=("store.put", "store.get"),
                               enabled=True)
    scale_outs = auto.scale_events("scale-out")
    peak_fleet = max((len(e["engines"]) for e in scale_outs), default=0)
    shed_batch = ctrl.shed_by_priority.get(BATCH, 0)
    shed_interactive = ctrl.shed_by_priority.get(INTERACTIVE, 0)
    checks = [
        check_store_linearizability(history),
        check_metalog(cluster),
        check_goodput_slo(report, min_goodput_fraction=0.7,
                          max_accepted_p99=0.5),
        # Graceful degradation for the interactive class: store clients
        # keep >= 90% availability through the whole surge window.
        check_recovery_slo(metrics, min_availability=0.9),
        _sanity([
            (bool(scale_outs), "the surge triggered no scale-out"),
            (peak_fleet == 4,
             f"the engine fleet peaked at {peak_fleet}, not max_nodes"),
            (ctrl.total_shed() > 0,
             "admission control never shed beyond max_nodes"),
            (shed_batch > shed_interactive,
             f"batch did not shed first (batch={shed_batch}, "
             f"interactive={shed_interactive})"),
            (auto.reconfig_failures == 0,
             f"{auto.reconfig_failures} scaling reconfigurations failed"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["scale_outs"] = len(scale_outs)
    stats["peak_engines"] = peak_fleet
    stats["gateway_inflight_peak"] = gateway.inflight_peak
    stats["shed_total"] = ctrl.total_shed()
    stats["shed_batch"] = shed_batch
    stats["shed_interactive"] = shed_interactive
    stats["node_seconds"] = round(auto.node_seconds(), 6)
    return ScenarioResult(checks, _merged_timeline(injector, auto), stats,
                          recovery=metrics, overload=report,
                          online=_online(cluster))


@_scenario(
    "split-brain-controller-during-scale-out",
    "The controller is partitioned away exactly when a surge needs a "
    "scale-out: every seal loses its quorum, reconfigurations fail, and "
    "admission control arms mid-reconfiguration — shedding holds goodput "
    "near the stuck fleet's saturation until the heal lets the scale-out "
    "land and the cluster recovers fully.",
    admission=True,
)
def split_brain_controller_during_scale_out(seed: int) -> ScenarioResult:
    from repro.elastic import HysteresisPolicy, PolicyConfig
    from repro.resil import RetryPolicy

    cluster = BokiCluster(
        num_function_nodes=2, num_spare_function_nodes=2,
        num_storage_nodes=3, num_sequencer_nodes=3,
        workers_per_node=4, seed=seed,
    )
    cluster.enable_resilience()
    auto = cluster.enable_elasticity(
        interval=0.05,
        engine_policy=HysteresisPolicy(PolicyConfig(
            min_nodes=2, max_nodes=4, breach_up=2, breach_down=4,
            cooldown_down=2.0,
        )),
        storage_policy=HysteresisPolicy(PolicyConfig(
            min_nodes=3, max_nodes=3, breach_down=1000, cooldown_down=10.0,
        )),
    )
    ctrl = cluster.enable_admission()
    hub = _monitor(cluster, "split-brain-controller-during-scale-out", seed)
    cluster.boot()
    env = cluster.env
    history = History(env)
    _register_store_fn(cluster)
    _register_bulk_fn(cluster)

    gateway = cluster.gateway
    target = cluster.function_nodes[0]
    rr = itertools.count()

    def scheduler(fn_name, book_id):
        if fn_name == "store-op":
            return target
        alive = [f for f in gateway.function_nodes if f.node.alive]
        if gateway.active_nodes is not None:
            active = [f for f in alive if f.name in gateway.active_nodes]
            alive = active or alive
        return alive[next(rr) % len(alive)]

    gateway.scheduler = scheduler

    # Partition the controller from everyone else just before the surge:
    # the autoscaler (running ON the controller node, sampling shared
    # state) keeps deciding to scale out, but every seal RPC is dropped —
    # each attempt fails its quorum and the fleet is stuck at 2 nodes.
    part_at, heal_at = 0.25, 1.5
    others = sorted(set(cluster.net.nodes) - {"controller"})
    plan = (
        FaultPlan()
        .partition_groups(part_at, [["controller"], others])
        .heal_all(heal_at)
    )
    injector = FaultInjector(env, cluster.net, plan)
    _attach(hub, injector)
    injector.start()

    # ~1.3x the stuck fleet's saturation (2 engines x 4 workers), but
    # under the 4-node fleet's — after the heal the scale-out fully
    # absorbs the load and shedding stops.
    stuck_workers = 2 * 4
    stuck_saturation = stuck_workers / _BULK_COST
    surge_at, rate, duration = 0.3, 1000.0, 2.2
    policy = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.1,
                         attempt_timeout=0.5, retry_timeouts=True)
    gen, ops = _overload_clients(cluster, history, rate, duration,
                                 policy=policy, start=surge_at)
    store_procs = _gateway_store_clients(cluster, history, num_clients=3,
                                         ops_per_client=80)
    _drive_all(cluster, [gen] + store_procs, limit=300.0)
    _drive_all(cluster, ops, limit=300.0)

    report = overload_report(
        history, surge_at + 0.15, heal_at, kinds=("bulk.op",),
        saturation_goodput=stuck_saturation,
        queue_peaks={"gateway.inflight": gateway.inflight_peak},
        shed=ctrl.total_shed(),
        admission=ctrl.snapshot(),
        enabled=True,
    )
    metrics = recovery_metrics(history, part_at,
                               kinds=("store.put", "store.get"),
                               enabled=True)
    scale_outs = auto.scale_events("scale-out")
    healed_outs = [e for e in scale_outs if e["t"] >= heal_at]
    peak_fleet = max((len(e["engines"]) for e in scale_outs), default=2)
    ops_after = _ok_ops_after(history, heal_at)
    checks = [
        check_store_linearizability(history),
        check_metalog(cluster),
        # Client-perceived latency of an eventually-accepted op includes
        # its shed-retry envelope (up to 3 attempts x 0.5 s plus
        # hint-floored backoff), so the bound asserts "every accepted op
        # finished within the retry budget" — the metastable alternative
        # is ops that never complete at all.
        check_goodput_slo(report, min_goodput_fraction=0.5,
                          max_accepted_p99=2.0),
        check_recovery_slo(metrics, min_availability=0.9),
        _sanity([
            (len(injector.timeline) == 2, "partition/heal did not both fire"),
            (auto.reconfig_failures > 0,
             "the split-brain never failed a reconfiguration"),
            (bool(healed_outs),
             "no scale-out landed after the heal"),
            (peak_fleet == 4,
             f"the post-heal fleet peaked at {peak_fleet} engines, not 4"),
            (ctrl.total_shed() > 0,
             "admission control never shed while the fleet was stuck"),
            (ops_after > 0, "no operation completed after the heal"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["reconfig_failures"] = auto.reconfig_failures
    stats["scale_outs"] = len(scale_outs)
    stats["peak_engines"] = peak_fleet
    stats["engines_active"] = len(auto.active_engines)
    stats["gateway_inflight_peak"] = gateway.inflight_peak
    stats["shed_total"] = ctrl.total_shed()
    stats["ops_ok_after_heal"] = ops_after
    stats["final_term"] = cluster.controller.current_term.term_id
    return ScenarioResult(checks, _merged_timeline(injector, auto), stats,
                          recovery=metrics, overload=report,
                          online=_online(cluster))


@_scenario(
    "noisy-neighbor-batch-flood",
    "Two tenants share one cluster: a well-behaved interactive tenant "
    "rides under its weighted share while a flood tenant offers ~2x "
    "saturation of batch work. Weighted-fair admission must shed the "
    "flood (>= 90% of all sheds) and keep the victim's availability and "
    "latency, with goodput holding near saturation — noisy-neighbor "
    "containment as a verdict.",
    fast=True,
    admission=True,
    tenant=True,
)
def noisy_neighbor_batch_flood(seed: int) -> ScenarioResult:
    from repro.admission import BATCH, AdaptiveLimiter

    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3,
        workers_per_node=4, seed=seed,
    )
    tenancy = cluster.enable_tenancy()
    tenancy.registry.register("victim", weight=3.0)
    tenancy.registry.register("flood", weight=1.0)
    # Sized for the fleet (2 engines x 4 workers x 10 ms saturate at
    # ~24 concurrent before latency passes the 50 ms target), so the
    # limiter starts at equilibrium instead of discovering it mid-flood.
    ctrl = cluster.enable_admission(
        limiter=AdaptiveLimiter(initial=24.0, target_latency=0.050),
    )
    hub = _monitor(cluster, "noisy-neighbor-batch-flood", seed)
    cluster.boot()
    env = cluster.env
    history = History(env)
    _register_bulk_fn(cluster)

    # The victim's steady interactive load sits well under its 3/4
    # weighted share; the flood offers ~2x the whole fleet's saturation
    # as a batch flash crowd. The injected condition IS the load: a
    # timeline marker documents it like any other fault.
    workers = 2 * 4
    saturation = workers / _BULK_COST
    victim_rate, victim_duration = 150.0, 2.0
    flood_at, flood_rate, flood_duration = 0.4, 1400.0, 1.2
    plan = FaultPlan().call(flood_at, f"batch-flood-{int(flood_rate)}rps",
                            lambda: None)
    injector = FaultInjector(env, cluster.net, plan)
    _attach(hub, injector)
    injector.start()
    peaks: Dict[str, float] = {}
    _worker_peak(cluster, peaks)
    victim_gen, victim_ops = _overload_clients(
        cluster, history, victim_rate, victim_duration,
        kind="victim.op", tenant="victim")
    flood_gen, flood_ops = _overload_clients(
        cluster, history, flood_rate, flood_duration, priority=BATCH,
        start=flood_at, kind="flood.op", tenant="flood")
    _drive_all(cluster, [victim_gen, flood_gen], limit=300.0)
    _drive_all(cluster, victim_ops + flood_ops, limit=300.0)

    # Measure inside the contended window only.
    window_start, window_end = 0.5, flood_at + flood_duration
    report = overload_report(
        history, window_start, window_end,
        kinds=("victim.op", "flood.op"),
        saturation_goodput=saturation,
        queue_peaks={
            "gateway.inflight": cluster.gateway.inflight_peak,
            "worker.depth": peaks["worker.depth"],
        },
        shed=ctrl.total_shed(),
        admission=ctrl.snapshot(),
        enabled=True,
    )
    victim_report = overload_report(history, window_start, window_end,
                                    kinds=("victim.op",))
    flood_report = overload_report(history, window_start, window_end,
                                   kinds=("flood.op",))
    fairness = tenancy.fairness_snapshot()
    # The per-tenant fairness block rides in the verdict's overload dict.
    report["tenants"] = {
        "victim": victim_report,
        "flood": flood_report,
        "fairness": fairness,
    }
    victim_avail = (victim_report["completed_ok"] / victim_report["offered"]
                    if victim_report["offered"] else 0.0)
    flood_shed_share = (
        fairness["tenants"].get("flood", {}).get("shed_share") or 0.0)
    checks = [
        check_metalog(cluster),
        check_goodput_slo(report, min_goodput_fraction=0.7,
                          max_accepted_p99=0.25, max_queue_peak=128),
        _sanity([
            (report["offered"] > 0.9 * (
                victim_rate + flood_rate) * (window_end - window_start)
             * (flood_rate / (victim_rate + flood_rate)),
             "offered load fell below the flood rate"),
            (ctrl.total_shed() > 0,
             "the flood never tripped admission control"),
            (flood_shed_share >= 0.9,
             f"the flood tenant absorbed only {flood_shed_share:.2f} "
             f"of the sheds (>= 0.9 required)"),
            (victim_avail >= 0.9,
             f"victim availability {victim_avail:.2f} under the flood "
             f"(>= 0.9 required)"),
            ((victim_report["accepted_p99_s"] or 1.0) <= 0.25,
             f"victim accepted p99 {victim_report['accepted_p99_s']}s "
             f"exceeds 0.25s under the flood"),
        ]),
    ]
    stats = _base_stats(cluster, history)
    stats["gateway_inflight_peak"] = cluster.gateway.inflight_peak
    stats["worker_depth_peak"] = peaks["worker.depth"]
    stats["shed_total"] = ctrl.total_shed()
    stats["flood_shed_share"] = round(flood_shed_share, 6)
    stats["victim_availability"] = round(victim_avail, 6)
    return ScenarioResult(checks, injector.timeline, stats, overload=report,
                          online=_online(cluster))


def fast_scenarios() -> List[str]:
    return sorted(name for name, s in SCENARIOS.items() if s.fast)


def recovery_scenarios() -> List[str]:
    return sorted(name for name, s in SCENARIOS.items() if s.recovery)


def elastic_scenarios() -> List[str]:
    return sorted(name for name, s in SCENARIOS.items() if s.elastic)


def admission_scenarios() -> List[str]:
    return sorted(name for name, s in SCENARIOS.items() if s.admission)


def tenant_scenarios() -> List[str]:
    return sorted(name for name, s in SCENARIOS.items() if s.tenant)


def all_scenarios() -> List[str]:
    return sorted(SCENARIOS)
