"""Workloads driving the evaluation (§7).

- :mod:`repro.workloads.harness` — open/closed-loop load generators and
  measurement plumbing shared by all experiments.
- :mod:`repro.workloads.microbench` — append-only and append-and-read
  LogBook microbenchmarks (§7.1, §7.5).
- :mod:`repro.workloads.primitives` — Beldi primitive-operation
  microbenchmark: read / write / cond-write / invoke (Figure 11c).
- :mod:`repro.workloads.movie` — the movie-review workflow (Figure 11a).
- :mod:`repro.workloads.travel` — the travel-reservation workflow
  (Figure 11b).
- :mod:`repro.workloads.retwis` — the Retwis social-network workload over
  BokiStore or MongoDB (§7.3, §7.5).
- :mod:`repro.workloads.queueing` — producer/consumer message-queue
  workload over BokiQueue, SQS, or Pulsar (§7.4).
- :mod:`repro.workloads.social` — multi-tenant session analytics over a
  Zipfian tenant population (~1M simulated users): the ``repro.tenant``
  flagship, including the noisy-neighbor isolation setup.
"""
