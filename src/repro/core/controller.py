"""The Boki controller: failure detection and reconfiguration (§4.5).

Reconfiguration seals every current metalog, determines each metalog's
final tail, announces the sealed tails to subscribers (so engines finish
their indices and abort unordered appends), and installs the next term's
configuration. Sealing follows Delos: the seal command makes secondaries
commit to rejecting future entries; a quorum of seal acks completes the
seal, and each ack carries the replica length so the controller takes the
maximum as the final tail.

Failure detection uses coordination-service sessions: every data-plane node
registers an ephemeral znode; when a node's session expires the controller
reconfigures around it.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Sequence

from repro.coord import CoordClient, WatchEvent
from repro.core.config import BokiConfig, TermConfig
from repro.core.placement import build_term
from repro.sim.kernel import Environment, Event, Interrupt
from repro.sim.network import Network, RpcError, RpcTimeout
from repro.sim.node import Node

NODES_PREFIX = "/boki/nodes"
CONFIG_PATH = "/boki/config"
#: Modelled delay between installing a config and nodes observing it:
#: the ZooKeeper quorum commit of the new configuration plus watch
#: propagation and session sync on every node. Calibrated so the whole
#: reconfiguration protocol lands in the paper's measured 15.7-18.1 ms
#: (§7.1, Figure 10).
CONFIG_PROPAGATION_DELAY = 10e-3


class ReconfigurationFailed(Exception):
    """Could not seal a quorum for some metalog."""


class ReconfigurationInProgress(Exception):
    """A reconfiguration is already executing.

    Seal-then-install must never interleave: two concurrent drivers (the
    failure detector and the autoscaler) sealing and installing terms
    against each other would double-seal metalogs and install terms out
    of order. Callers either drop the request — the failure detector
    does, because the in-flight reconfiguration already observes current
    liveness — or queue behind it via
    :meth:`Controller.reconfigure_serialized`.
    """


class Controller:
    """The (leader) controller process."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        name: str,
        config: BokiConfig,
        coord_client_factory: Optional[Callable[[Node], CoordClient]] = None,
    ):
        self.env = env
        self.net = net
        self.config = config
        self.node = net.register(Node(env, name, cpu_capacity=8))
        self.coord = coord_client_factory(self.node) if coord_client_factory else None
        self.current_term: Optional[TermConfig] = None
        #: Live node name lists, updated on failure detection.
        self.engine_names: List[str] = []
        self.storage_names: List[str] = []
        self.sequencer_names: List[str] = []
        #: Component registry: name -> object with .configure(term_config)
        #: and .node (the cluster wires this; stands in for config watches).
        self.components: Dict[str, object] = {}
        self.reconfig_count = 0
        self.last_reconfig_duration: Optional[float] = None
        self._reconfiguring = False
        #: Active fleet subsets (None = every registered node). The
        #: autoscaler narrows/widens these; terms are built from the
        #: active fleet so registered-but-decommissioned spares carry no
        #: shards or replicas.
        self.active_engines: Optional[List[str]] = None
        self.active_storage: Optional[List[str]] = None
        self._reconfig_waiters: List[Event] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def register_component(self, name: str, component: object, role: str) -> None:
        self.components[name] = component
        if role == "engine":
            self.engine_names.append(name)
        elif role == "storage":
            self.storage_names.append(name)
        elif role == "sequencer":
            self.sequencer_names.append(name)
        else:
            raise ValueError(f"unknown role {role!r}")

    def live(self, names: Sequence[str]) -> List[str]:
        return [n for n in names if self.components[n].node.alive]

    def engine_fleet(self) -> List[str]:
        """The engine names terms are currently built from."""
        if self.active_engines is None:
            return list(self.engine_names)
        return [n for n in self.active_engines if n in self.components]

    def storage_fleet(self) -> List[str]:
        """The storage names terms are currently built from."""
        if self.active_storage is None:
            return list(self.storage_names)
        return [n for n in self.active_storage if n in self.components]

    # ------------------------------------------------------------------
    # Bootstrap and term installation
    # ------------------------------------------------------------------
    def install_initial_term(
        self,
        num_logs: Optional[int] = None,
        index_engines_per_log: Optional[int] = None,
    ) -> Generator:
        term_config = build_term(
            self.config,
            term_id=1,
            engine_names=self.engine_fleet(),
            storage_names=self.storage_fleet(),
            sequencer_names=self.sequencer_names[: self.config.nmeta],
            num_logs=num_logs,
            index_engines_per_log=index_engines_per_log,
        )
        yield from self._install(term_config)
        return term_config

    def _install(self, term_config: TermConfig) -> Generator:
        if self.coord is not None:
            exists = yield from self.coord.exists(CONFIG_PATH)
            if exists:
                yield from self.coord.set(CONFIG_PATH, term_config.term_id)
            else:
                yield from self.coord.create(CONFIG_PATH, term_config.term_id)
        yield self.env.timeout(CONFIG_PROPAGATION_DELAY)
        # Sequencers first so metalog replicas exist before engines append.
        ordered = sorted(
            self.components.items(),
            key=lambda kv: 0 if kv[0] in self.sequencer_names else 1,
        )
        for name, component in ordered:
            if component.node.alive:
                component.configure(term_config)
        self.current_term = term_config

    # ------------------------------------------------------------------
    # Reconfiguration (§4.5)
    # ------------------------------------------------------------------
    def reconfigure(
        self,
        num_logs: Optional[int] = None,
        sequencer_names: Optional[List[str]] = None,
        index_engines_per_log: Optional[int] = None,
        engine_names: Optional[List[str]] = None,
        storage_names: Optional[List[str]] = None,
        minimal_movement: bool = False,
    ) -> Generator:
        """Seal the current term and install the next one.

        ``sequencer_names`` selects the next term's sequencer set (the §7.1
        experiment reconfigures to a new set of provisioned sequencers).
        ``engine_names``/``storage_names`` select the next term's data-plane
        fleets (scale-out/scale-in); a successful install makes them the
        active fleets for later failure-driven reconfigurations.
        ``minimal_movement`` hands the previous term to placement so
        surviving storage replicas stay put instead of rehashing.

        Raises :class:`ReconfigurationInProgress` when a reconfiguration
        is already executing — overlapping seal/install protocols must
        not interleave.
        """
        if self._reconfiguring:
            raise ReconfigurationInProgress(
                f"term {self.current_term.term_id if self.current_term else '?'} "
                "is already being reconfigured"
            )
        self._reconfiguring = True
        started = self.env.now
        try:
            old = self.current_term
            assert old is not None, "no term installed"
            # 1. Seal every metalog of the current term.
            for log_id, asg in old.logs.items():
                final_len = yield from self._seal_log(old.term_id, log_id, asg)
                payload = {
                    "term": old.term_id,
                    "log_id": log_id,
                    "final_len": final_len,
                    "sequencers": list(asg.sequencers),
                }
                for subscriber in asg.subscribers():
                    self.net.send(self.node, subscriber, "log.sealed", payload)
            # 2. Build and install the next term.
            engine_fleet = (engine_names if engine_names is not None
                            else self.engine_fleet())
            storage_fleet = (storage_names if storage_names is not None
                             else self.storage_fleet())
            engines = self.live(engine_fleet)
            storage = self.live(storage_fleet)
            seqs = sequencer_names if sequencer_names is not None else self.live(
                self.sequencer_names
            )
            seqs = [s for s in seqs if self.components[s].node.alive][: self.config.nmeta]
            new_term = build_term(
                self.config,
                term_id=old.term_id + 1,
                engine_names=engines,
                storage_names=storage,
                sequencer_names=seqs,
                num_logs=num_logs if num_logs is not None else len(old.logs),
                index_engines_per_log=index_engines_per_log,
                prev=old if minimal_movement else None,
            )
            yield from self._install(new_term)
            if engine_names is not None:
                self.active_engines = list(engine_names)
            if storage_names is not None:
                self.active_storage = list(storage_names)
            self.reconfig_count += 1
            self.last_reconfig_duration = self.env.now - started
            return new_term
        finally:
            self._reconfiguring = False
            waiters, self._reconfig_waiters = self._reconfig_waiters, []
            for waiter in waiters:
                if not waiter.triggered:
                    waiter.succeed(None)

    def reconfigure_serialized(self, **kwargs) -> Generator:
        """Queue behind any in-flight reconfiguration, then reconfigure.

        The serialized fallback for drivers that must not drop their
        request (the autoscaler's scaling decision stays valid after the
        failure detector's reconfiguration completes). FIFO wake-up: each
        waiter re-checks the flag, so concurrent serialized callers run
        one term apiece in arrival order.
        """
        while self._reconfiguring:
            waiter = Event(self.env)
            self._reconfig_waiters.append(waiter)
            yield waiter
        result = yield from self.reconfigure(**kwargs)
        return result

    def _seal_log(self, term_id: int, log_id: int, asg) -> Generator:
        """Seal one metalog; returns the final length (max over a quorum)."""
        lengths: List[int] = []
        calls = [
            self.net.rpc(
                self.node, seq, "seq.seal",
                {"term": term_id, "log_id": log_id},
                timeout=0.05,
            )
            for seq in asg.sequencers
        ]
        for call in calls:
            try:
                lengths.append((yield call))
            except (RpcError, RpcTimeout):
                continue
        if len(lengths) < self.config.quorum():
            raise ReconfigurationFailed(
                f"sealed only {len(lengths)}/{len(asg.sequencers)} replicas of "
                f"metalog (term={term_id}, log={log_id})"
            )
        return max(lengths)

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------
    def start_failure_detector(self) -> None:
        """Watch the coordination service for node-session expiry and
        reconfigure when a data-plane node dies."""
        if self.coord is None:
            raise RuntimeError("controller has no coordination client")
        self.coord.on_watch(self._on_membership_event)
        self.node.spawn(self._watch_members(), name="controller:watch-members")

    def _watch_members(self) -> Generator:
        try:
            yield from self.coord.watch_children(NODES_PREFIX)
        except Interrupt:
            return

    def _on_membership_event(self, event: WatchEvent) -> None:
        if event.kind != "children":
            return
        self.node.spawn(self._handle_membership_change(), name="controller:membership")

    def _handle_membership_change(self) -> Generator:
        try:
            registered = yield from self.coord.children(NODES_PREFIX)
            live = {path.rsplit("/", 1)[1] for path in registered}
            yield from self.coord.watch_children(NODES_PREFIX)  # re-arm
            if self.current_term is None:
                return
            in_use = set()
            for asg in self.current_term.logs.values():
                in_use.update(asg.sequencers)
                in_use.update(asg.storage_nodes())
                in_use.update(asg.shards)
            dead = {n for n in in_use if n in self.components and n not in live}
            if dead:
                try:
                    yield from self.reconfigure()
                except ReconfigurationInProgress:
                    # The in-flight reconfiguration observes current
                    # liveness; this event is redundant, not lost.
                    return
        except Interrupt:
            return
