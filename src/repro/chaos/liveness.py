"""Liveness metrics: availability and recovery time from histories.

The safety checkers (``repro.chaos.checkers``) prove nothing bad
happened; this module measures whether anything *good* kept happening.
Two Jepsen-style liveness figures are computed from a recorded
:class:`~repro.chaos.history.History` and the fault injection time:

- **availability** — goodput during the fault window: the fraction of
  client operations invoked at or after the fault that completed ``ok``.
  A cluster that recovers by retrying through reconfiguration keeps this
  near 1.0; a cluster without recovery serves errors for the whole
  failure-detection + reconfiguration window.
- **RTO** (recovery time objective) — virtual time from fault injection
  to the first *post-fault* successful completion; None when nothing
  ever succeeded after the fault (recovery failed outright).

:func:`check_recovery_slo` turns the metrics into a
:class:`~repro.chaos.checkers.CheckResult` so recovery objectives sit in
verdicts next to the safety checkers.
"""

from __future__ import annotations

from math import inf
from typing import Iterable, Optional

from repro.chaos.checkers import CheckResult
from repro.chaos.history import History


def recovery_metrics(
    history: History,
    fault_at: float,
    kinds: Optional[Iterable[str]] = None,
    enabled: bool = True,
) -> dict:
    """Availability + RTO over the operations invoked at/after ``fault_at``.

    ``kinds`` restricts the measured operations (e.g. only ``store.put``/
    ``store.get``); ``enabled`` records whether the resilience layer was
    on for this run (carried into the verdict so degraded baselines are
    self-describing). The dict is JSON-serializable and deterministic.
    """
    kind_set = set(kinds) if kinds is not None else None
    window = [
        op for op in history.ops
        if op.t_invoke >= fault_at
        and (kind_set is None or op.kind in kind_set)
    ]
    ok_ops = [op for op in window if op.status == "ok"]
    availability = round(len(ok_ops) / len(window), 6) if window else None
    first_ok = min((op.t_return for op in ok_ops), default=inf)
    rto = round(first_ok - fault_at, 6) if first_ok != inf else None
    return {
        "enabled": enabled,
        "fault_at_s": round(fault_at, 6),
        "window_ops": len(window),
        "window_ok": len(ok_ops),
        "availability": availability,
        "rto_s": rto,
    }


def check_recovery_slo(
    metrics: dict,
    min_availability: float = 0.9,
    max_rto: Optional[float] = None,
) -> CheckResult:
    """Recovery SLO as a checker: availability during the fault window
    must reach ``min_availability`` and a post-fault success must exist
    (finite RTO, optionally bounded by ``max_rto`` seconds)."""
    violations = []
    availability = metrics.get("availability")
    rto = metrics.get("rto_s")
    if metrics.get("window_ops", 0) == 0:
        violations.append("no operations invoked during the fault window")
    if availability is not None and availability < min_availability:
        violations.append(
            f"availability {availability} below SLO {min_availability}"
        )
    if rto is None:
        violations.append("no successful operation after the fault (RTO unbounded)")
    elif max_rto is not None and rto > max_rto:
        violations.append(f"RTO {rto}s exceeds objective {max_rto}s")
    return CheckResult("recovery-slo", violations, metrics.get("window_ops", 0))
