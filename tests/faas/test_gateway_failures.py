"""Gateway failure semantics: typed errors, timeout-vs-failure, failover ids."""

import pytest

from repro.faas import FunctionNode, FunctionNotFoundError, Gateway
from repro.faas.gateway import NoLiveNodesError
from repro.resil import Resilience, RetryPolicy
from repro.sim import Environment, Network, Node
from repro.sim.network import RpcError, RpcTimeout
from repro.sim.randvar import RandomStreams


@pytest.fixture
def faas():
    env = Environment()
    net = Network(env, RandomStreams(seed=9), jitter=0.0)
    gateway = Gateway(env, net)
    fnodes = [FunctionNode(env, net, f"fn-{i}", workers=4) for i in range(2)]
    for fnode in fnodes:
        gateway.add_function_node(fnode)
    client = net.register(Node(env, "client"))
    return env, net, gateway, fnodes, client


def drive(env, gen, limit=300.0):
    return env.run_until(env.process(gen), limit=limit)


class TestTypedErrors:
    def test_pick_node_without_nodes_is_typed(self):
        env = Environment()
        net = Network(env, RandomStreams(seed=1), jitter=0.0)
        gateway = Gateway(env, net)
        with pytest.raises(NoLiveNodesError):
            gateway.pick_node("f", None)

    def test_pick_node_all_dead_is_typed(self, faas):
        env, net, gateway, fnodes, client = faas
        for fnode in fnodes:
            fnode.node.crash()
        with pytest.raises(NoLiveNodesError):
            gateway.pick_node("f", None)

    def test_typed_error_is_still_a_runtime_error(self):
        # Compatibility: callers that caught the old untyped error keep
        # working.
        assert issubclass(NoLiveNodesError, RuntimeError)

    def test_no_live_nodes_surfaces_through_external_invoke(self, faas):
        env, net, gateway, fnodes, client = faas

        def noop(ctx, arg):
            yield env.timeout(0.001)
            return None

        gateway.register_function("noop", noop)
        for fnode in fnodes:
            fnode.node.crash()

        def flow():
            yield from gateway.external_invoke(client, "noop")

        with pytest.raises(NoLiveNodesError):
            drive(env, flow())

    def test_unknown_function_not_wrapped_in_rpc_error(self, faas):
        env, net, gateway, fnodes, client = faas

        def flow():
            yield from gateway.external_invoke(client, "missing")

        with pytest.raises(FunctionNotFoundError):
            drive(env, flow())

    def test_unknown_function_permanent_under_resilience(self, faas):
        env, net, gateway, fnodes, client = faas
        resil = Resilience(env, net, net.streams)
        gateway.enable_resilience(resil)

        def flow():
            yield from gateway.external_invoke(client, "missing")

        with pytest.raises(FunctionNotFoundError):
            drive(env, flow())
        assert resil.counters["retries"] == 0


class TestTimeoutVsFailure:
    def test_handler_exception_surfaces_with_original_type(self, faas):
        env, net, gateway, fnodes, client = faas

        def bad(ctx, arg):
            yield env.timeout(0.001)
            raise ValueError("application bug")

        gateway.register_function("bad", bad)

        def flow():
            yield from gateway.external_invoke(client, "bad")

        with pytest.raises(ValueError, match="application bug"):
            drive(env, flow())

    def test_unreachable_gateway_surfaces_ambiguous_timeout(self, faas):
        env, net, gateway, fnodes, client = faas

        def noop(ctx, arg):
            yield env.timeout(0.001)
            return None

        gateway.register_function("noop", noop)
        net.partition("client", "gateway")

        def flow():
            yield from gateway.external_invoke(client, "noop", timeout=0.05)

        # No reply is ambiguous — the invocation may have executed — so the
        # client must see RpcTimeout, never a definite application error.
        with pytest.raises(RpcTimeout):
            drive(env, flow())

    def test_slow_function_surfaces_timeout_not_failure(self, faas):
        env, net, gateway, fnodes, client = faas

        def slow(ctx, arg):
            yield env.timeout(10.0)
            return None

        gateway.register_function("slow", slow)

        def flow():
            yield from gateway.external_invoke(client, "slow", timeout=0.1)

        with pytest.raises(RpcTimeout):
            drive(env, flow())


class TestInvocationIds:
    def test_invocation_id_stable_across_failover_retries(self, faas):
        env, net, gateway, fnodes, client = faas
        resil = Resilience(env, net, net.streams)
        gateway.enable_resilience(resil, RetryPolicy(
            max_attempts=5, base_delay=1e-3, attempt_timeout=1.0,
            retry_timeouts=True))
        state = {"failures_left": 2}

        def flaky(ctx, arg):
            yield env.timeout(0.001)
            if state["failures_left"] > 0:
                state["failures_left"] -= 1
                raise RuntimeError("transient")
            return "ok"

        gateway.register_function("flaky", flaky)
        exec_ids = []

        def tap(msg):
            if msg.method == "faas.exec":
                exec_ids.append(msg.payload["invocation_id"])

        net.trace_hook = tap

        def flow():
            return (yield from gateway.external_invoke(client, "flaky"))

        assert drive(env, flow()) == "ok"
        assert len(exec_ids) == 3  # two failed executions + the success
        assert len(set(exec_ids)) == 1  # rerouted attempts reuse the id
        assert resil.counters["reroutes"] == 2

    def test_distinct_invocations_get_distinct_ids(self, faas):
        env, net, gateway, fnodes, client = faas

        def noop(ctx, arg):
            yield env.timeout(0.001)
            return None

        gateway.register_function("noop", noop)
        exec_ids = []

        def tap(msg):
            if msg.method == "faas.exec":
                exec_ids.append(msg.payload["invocation_id"])

        net.trace_hook = tap

        def flow():
            for _ in range(3):
                yield from gateway.external_invoke(client, "noop")

        drive(env, flow())
        assert len(exec_ids) == 3
        assert len(set(exec_ids)) == 3
