"""Load-generation and measurement harness.

Two generator shapes, matching how the paper runs its experiments:

- *closed loop*: N concurrent clients, each looping
  issue-request -> wait-response; throughput emerges from concurrency and
  service latency (the append-only microbenchmark, Retwis, queues).
- *open loop*: Poisson arrivals at a fixed offered rate; latency is
  measured as a function of load (the latency-vs-throughput curves of
  Figure 11).

Both warm up before measuring and return a :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.obs.trace import STATUS_ERROR, STATUS_OK
from repro.sim.kernel import Environment, Interrupt
from repro.sim.metrics import LatencyRecorder


@dataclass
class RunResult:
    """Outcome of one load-generation run."""

    completed: int
    duration: float
    latencies: LatencyRecorder
    errors: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    def median_latency(self) -> float:
        return self.latencies.median()

    def p99_latency(self) -> float:
        return self.latencies.p99()

    def summary(self) -> Dict[str, float]:
        out = {"throughput": self.throughput, "completed": float(self.completed)}
        if self.latencies.count:
            out["median"] = self.median_latency()
            out["p99"] = self.p99_latency()
        return out


def run_closed_loop(
    env: Environment,
    make_op: Callable[[int], Callable[[], Generator]],
    num_clients: int,
    duration: float,
    warmup: float = 0.05,
    limit_factor: float = 20.0,
    obs=None,
) -> RunResult:
    """N clients looping ``op`` back to back for ``duration`` of virtual
    time (after ``warmup``). ``make_op(client_index)`` returns the client's
    op factory; each call of the factory yields one request generator.

    Pass an enabled :class:`~repro.obs.ObsRecorder` as ``obs`` to wrap each
    request in a root trace; ``result.extra["request_traces"]`` then holds
    ``(latency, trace_id)`` for every measured request (see
    :func:`dump_slowest_trace`)."""
    latencies = LatencyRecorder("closed-loop")
    state = {"completed": 0, "errors": 0, "stop": False}
    tracer = obs.tracer if obs is not None and obs.enabled else None
    request_traces: List[Tuple[float, int]] = []
    t_start = env.now + warmup
    t_end = t_start + duration

    def client(index: int) -> Generator:
        op_factory = make_op(index)
        try:
            while not state["stop"]:
                started = env.now
                span = prev = None
                if tracer is not None:
                    span = tracer.start_trace(
                        "request", node="client", kind="client",
                        attrs={"client": index},
                    )
                    prev = tracer.set_process_context(span.context)
                try:
                    yield env.process(op_factory(), name=f"client-{index}-op")
                except Interrupt:
                    if span is not None:
                        span.finish(STATUS_ERROR, error="interrupted")
                    raise
                except Exception:  # noqa: BLE001 - workload op failed
                    state["errors"] += 1
                    if span is not None:
                        span.finish(STATUS_ERROR)
                        tracer.set_process_context(prev)
                    continue
                finished = env.now
                if span is not None:
                    span.finish(STATUS_OK)
                    tracer.set_process_context(prev)
                if t_start <= finished <= t_end:
                    latencies.record(finished - started)
                    state["completed"] += 1
                    if span is not None:
                        request_traces.append((finished - started, span.context.trace_id))
        except Interrupt:
            return

    clients = [env.process(client(i), name=f"client-{i}") for i in range(num_clients)]
    stopper = env.timeout(warmup + duration)
    env.run_until(stopper, limit=env.now + (warmup + duration) * limit_factor + 60.0)
    state["stop"] = True
    for proc in clients:
        if proc.is_alive:
            proc.interrupt("run over")
    env.run(until=env.now)  # flush same-time interrupts
    extra: Dict[str, Any] = {}
    if tracer is not None:
        extra["request_traces"] = request_traces
    return RunResult(
        completed=state["completed"],
        duration=duration,
        latencies=latencies,
        errors=state["errors"],
        extra=extra,
    )


def run_open_loop(
    env: Environment,
    make_op: Callable[[int], Generator],
    rate: float,
    duration: float,
    rng,
    warmup: float = 0.1,
    max_in_flight: int = 10_000,
    obs=None,
) -> RunResult:
    """Poisson arrivals at ``rate`` requests/second; ``make_op(i)`` builds
    the i-th request generator. Latency measured per completed request.
    ``obs`` works as in :func:`run_closed_loop`."""
    latencies = LatencyRecorder("open-loop")
    state = {"completed": 0, "errors": 0, "in_flight": 0, "launched": 0}
    tracer = obs.tracer if obs is not None and obs.enabled else None
    request_traces: List[Tuple[float, int]] = []
    t_start = env.now + warmup
    t_end = t_start + duration

    def one_request(i: int) -> Generator:
        started = env.now
        state["in_flight"] += 1
        span = None
        if tracer is not None:
            span = tracer.start_trace(
                "request", node="client", kind="client", attrs={"request": i}
            )
            tracer.set_process_context(span.context)
        try:
            yield env.process(make_op(i), name=f"req-{i}")
        except Exception:  # noqa: BLE001
            state["errors"] += 1
            if span is not None:
                span.finish(STATUS_ERROR)
            return
        finally:
            state["in_flight"] -= 1
        finished = env.now
        if span is not None:
            span.finish(STATUS_OK)
        if t_start <= finished <= t_end:
            latencies.record(finished - started)
            state["completed"] += 1
            if span is not None:
                request_traces.append((finished - started, span.context.trace_id))

    def arrival_process() -> Generator:
        i = 0
        while env.now < t_end:
            yield env.timeout(rng.expovariate(rate))
            if state["in_flight"] < max_in_flight:
                env.process(one_request(i), name=f"arrival-{i}")
                state["launched"] += 1
            i += 1

    arrivals = env.process(arrival_process(), name="arrivals")
    env.run_until(arrivals, limit=env.now + (warmup + duration) * 50 + 120.0)
    # Let stragglers finish (up to a grace period) so tail latencies count.
    env.run(until=env.now + 0.5)
    extra: Dict[str, Any] = {"offered": rate, "launched": state["launched"]}
    if tracer is not None:
        extra["request_traces"] = request_traces
    return RunResult(
        completed=state["completed"],
        duration=duration,
        latencies=latencies,
        errors=state["errors"],
        extra=extra,
    )


def dump_slowest_trace(result: RunResult, obs, path: Optional[str] = None) -> Tuple[str, str]:
    """Chrome trace JSON + latency-attribution report for the slowest
    measured request of a traced run (``obs`` passed to the run).

    Returns ``(chrome_json, report_text)``; with ``path``, also writes
    ``<path>.json`` and ``<path>.txt`` (parent directories are created).
    """
    import os

    from repro.obs.export import attribution_report, slowest_trace, to_chrome_trace

    spans = obs.tracer.spans
    traces = result.extra.get("request_traces") or []
    if traces:
        _, trace_id = max(traces, key=lambda lt: (lt[0], -lt[1]))
    else:
        trace_id = slowest_trace(spans)
    chrome_json = to_chrome_trace(spans, trace_id=trace_id)
    report = attribution_report(spans, trace_id=trace_id)
    if path is not None:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(f"{path}.json", "w") as fh:
            fh.write(chrome_json)
        with open(f"{path}.txt", "w") as fh:
            fh.write(report)
    return chrome_json, report
