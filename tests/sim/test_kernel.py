"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt, SimulationError, Timeout


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(2.5)
    env.run()
    assert env.now == 2.5


def test_run_until_stops_early():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_advances_clock_past_empty_heap():
    env = Environment()
    env.run(until=7.0)
    assert env.now == 7.0


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_process_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return "done"

    p = env.process(proc(env))
    env.run()
    assert p.processed
    assert p.value == "done"


def test_process_sequential_timeouts():
    env = Environment()
    times = []

    def proc(env):
        yield env.timeout(1.0)
        times.append(env.now)
        yield env.timeout(2.0)
        times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [1.0, 3.0]


def test_processes_interleave_in_time_order():
    env = Environment()
    order = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc(env, "b", 2.0))
    env.process(proc(env, "a", 1.0))
    env.process(proc(env, "c", 3.0))
    env.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in ["x", "y", "z"]:
        env.process(proc(env, name))
    env.run()
    assert order == ["x", "y", "z"]


def test_event_succeed_delivers_value():
    env = Environment()
    event = env.event()
    got = []

    def waiter(env):
        value = yield event
        got.append(value)

    env.process(waiter(env))

    def trigger(env):
        yield env.timeout(1.0)
        event.succeed(42)

    env.process(trigger(env))
    env.run()
    assert got == [42]


def test_event_fail_raises_in_waiter():
    env = Environment()
    event = env.event()
    caught = []

    def waiter(env):
        try:
            yield event
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter(env))
    event.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_waiting_on_already_processed_event():
    env = Environment()
    event = env.event()
    event.succeed("early")
    env.run()
    got = []

    def late_waiter(env):
        value = yield event
        got.append(value)

    env.process(late_waiter(env))
    env.run()
    assert got == ["early"]


def test_process_failure_propagates_to_waiter():
    env = Environment()

    def failing(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    caught = []

    def outer(env):
        try:
            yield env.process(failing(env))
        except ValueError as exc:
            caught.append(str(exc))

    env.process(outer(env))
    env.run()
    assert caught == ["inner"]


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    p = env.process(bad(env))
    env.run()
    assert p.triggered
    assert not p.ok
    assert isinstance(p.value, SimulationError)


def test_interrupt_wakes_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    p = env.process(sleeper(env))

    def interrupter(env):
        yield env.timeout(3.0)
        p.interrupt("wake up")

    env.process(interrupter(env))
    env.run()
    assert log == [(3.0, "wake up")]


def test_interrupt_dead_process_is_noop():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    p.interrupt("too late")  # must not raise
    env.run()


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def resilient(env):
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        log.append(env.now)

    p = env.process(resilient(env))

    def interrupter(env):
        yield env.timeout(5.0)
        p.interrupt()

    env.process(interrupter(env))
    env.run()
    assert log == [6.0]


def test_stale_timeout_does_not_double_resume():
    env = Environment()
    resumed = []

    def proc(env):
        try:
            yield env.timeout(10.0)
        except Interrupt:
            resumed.append("interrupt")
        yield env.timeout(20.0)
        resumed.append("second")

    p = env.process(proc(env))

    def interrupter(env):
        yield env.timeout(1.0)
        p.interrupt()

    env.process(interrupter(env))
    env.run()
    # The original timeout at t=10 must not resume the process early;
    # the second sleep runs its full 20s from t=1.
    assert resumed == ["interrupt", "second"]
    assert env.now == 21.0


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5.0, value="slow")
        t2 = env.timeout(2.0, value="fast")
        got = yield AnyOf(env, [t1, t2])
        results.append((env.now, list(got.values())))

    env.process(proc(env))
    env.run()
    assert results[0][0] == 2.0
    assert "fast" in results[0][1]


def test_all_of_waits_for_all():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(5.0, value="slow")
        t2 = env.timeout(2.0, value="fast")
        got = yield AllOf(env, [t1, t2])
        results.append((env.now, sorted(got.values())))

    env.process(proc(env))
    env.run()
    assert results == [(5.0, ["fast", "slow"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = []

    def proc(env):
        yield AllOf(env, [])
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0.0]


def test_step_and_peek():
    env = Environment()
    env.timeout(1.0)
    env.timeout(2.0)
    assert env.peek() == 1.0
    assert env.step()
    assert env.peek() == 2.0
    assert env.step()
    assert not env.step()


def test_many_processes_deterministic():
    def run_once():
        env = Environment()
        order = []

        def proc(env, i):
            yield env.timeout((i * 7919) % 100 / 10.0)
            order.append(i)

        for i in range(50):
            env.process(proc(env, i))
        env.run()
        return order

    assert run_once() == run_once()
