"""Delta sets: how metalog entries order records across shards (§4.3).

Comparing a metalog entry's progress vector with its predecessor defines
the *delta set*: for each shard ``j``, records with
``prev[j] <= local_id < cur[j]``. Records within a delta set are ordered by
``(shard, local_id)`` (Figure 3), and occupy consecutive physical-log
positions starting at the entry's ``start_pos``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.metalog import MetalogEntry


def delta_set(
    prev_progress: Dict[str, int], entry: MetalogEntry
) -> List[Tuple[str, int, int]]:
    """Expand an entry's delta set.

    Returns ``(shard, local_id, pos)`` triples in total order, where ``pos``
    is the physical-log position assigned by this entry.
    """
    out: List[Tuple[str, int, int]] = []
    pos = entry.start_pos
    for shard, count in entry.progress:  # already sorted by shard
        start = prev_progress.get(shard, 0)
        for local_id in range(start, count):
            out.append((shard, local_id, pos))
            pos += 1
    return out


def delta_size(prev_progress: Dict[str, int], entry: MetalogEntry) -> int:
    return sum(
        count - prev_progress.get(shard, 0) for shard, count in entry.progress
    )


def position_of(
    prev_progress: Dict[str, int], entry: MetalogEntry, shard: str, local_id: int
) -> Optional[int]:
    """Physical-log position of ``(shard, local_id)`` if this entry orders
    it, else None. O(#shards) — no delta expansion."""
    cur = entry.progress_dict()
    if not prev_progress.get(shard, 0) <= local_id < cur.get(shard, 0):
        return None
    pos = entry.start_pos
    for other, count in entry.progress:
        start = prev_progress.get(other, 0)
        if other == shard:
            return pos + (local_id - start)
        pos += count - start
    return None


def merge_progress_by_shard(
    reports: Dict[str, Dict[str, int]], shard_storage: Dict[str, List[str]]
) -> Dict[str, int]:
    """Compute the global progress vector from per-storage-node reports.

    ``reports``: storage node name -> (shard -> contiguous count received).
    ``shard_storage``: shard -> storage node names backing it.

    A shard's fully-replicated prefix is the minimum count over *all* its
    backing storage nodes; a node that has not reported yet contributes 0.
    """
    merged: Dict[str, int] = {}
    for shard, backers in shard_storage.items():
        counts = [reports.get(node, {}).get(shard, 0) for node in backers]
        merged[shard] = min(counts) if counts else 0
    return merged
