"""Unit tests for the coordination service (ZooKeeper substitute)."""

import pytest

from repro.coord import (
    BadVersionError,
    CoordClient,
    CoordServer,
    LeaderElection,
    NodeExistsError,
    NoNodeError,
)
from repro.sim import Environment, Network, Node
from repro.sim.randvar import RandomStreams


@pytest.fixture
def setup():
    env = Environment()
    net = Network(env, RandomStreams(seed=11), jitter=0.0)
    coord_node = net.register(Node(env, "coord"))
    server = CoordServer(env, net, coord_node)
    clients = {}
    for name in ["n1", "n2", "n3"]:
        node = net.register(Node(env, name))
        clients[name] = CoordClient(env, net, node)
    return env, net, server, clients


def drive(env, gen):
    """Run a generator as a process to completion and return its value."""
    proc = env.process(gen)
    return env.run_until(proc, limit=300.0)


def test_create_and_get(setup):
    env, net, server, clients = setup
    c = clients["n1"]

    def flow():
        yield from c.create("/config", {"term": 1})
        info = yield from c.get("/config")
        return info

    info = drive(env, flow())
    assert info == {"data": {"term": 1}, "version": 0}


def test_create_duplicate_raises(setup):
    env, net, server, clients = setup
    c = clients["n1"]

    def flow():
        yield from c.create("/x", 1)
        yield from c.create("/x", 2)

    with pytest.raises(NodeExistsError):
        drive(env, flow())


def test_get_missing_raises(setup):
    env, net, server, clients = setup
    c = clients["n1"]

    def flow():
        yield from c.get("/missing")

    with pytest.raises(NoNodeError):
        drive(env, flow())


def test_set_bumps_version(setup):
    env, net, server, clients = setup
    c = clients["n1"]

    def flow():
        yield from c.create("/v", "a")
        v1 = yield from c.set("/v", "b")
        v2 = yield from c.set("/v", "c")
        return v1, v2

    assert drive(env, flow()) == (1, 2)


def test_conditional_set_rejects_stale_version(setup):
    env, net, server, clients = setup
    c = clients["n1"]

    def flow():
        yield from c.create("/v", "a")
        yield from c.set("/v", "b")
        yield from c.set("/v", "c", version=0)  # stale

    with pytest.raises(BadVersionError):
        drive(env, flow())


def test_delete_and_exists(setup):
    env, net, server, clients = setup
    c = clients["n1"]

    def flow():
        yield from c.create("/d", 1)
        before = yield from c.exists("/d")
        yield from c.delete("/d")
        after = yield from c.exists("/d")
        return before, after

    assert drive(env, flow()) == (True, False)


def test_children_listing(setup):
    env, net, server, clients = setup
    c = clients["n1"]

    def flow():
        yield from c.create("/nodes/a", 1)
        yield from c.create("/nodes/b", 2)
        yield from c.create("/other/c", 3)
        return (yield from c.children("/nodes"))

    assert drive(env, flow()) == ["/nodes/a", "/nodes/b"]


def test_watch_fires_on_change(setup):
    env, net, server, clients = setup
    c1, c2 = clients["n1"], clients["n2"]
    events = []
    c2.on_watch(events.append)

    def flow():
        yield from c1.create("/w", "v0")
        yield from c2.watch("/w")
        yield from c1.set("/w", "v1")
        yield env.timeout(0.01)  # let the watch message arrive

    drive(env, flow())
    assert len(events) == 1
    assert events[0].kind == "changed"
    assert events[0].data == "v1"


def test_watch_is_one_shot(setup):
    env, net, server, clients = setup
    c1, c2 = clients["n1"], clients["n2"]
    events = []
    c2.on_watch(events.append)

    def flow():
        yield from c1.create("/w", 0)
        yield from c2.watch("/w")
        yield from c1.set("/w", 1)
        yield from c1.set("/w", 2)
        yield env.timeout(0.01)

    drive(env, flow())
    assert len(events) == 1


def test_children_watch_fires_on_membership_change(setup):
    env, net, server, clients = setup
    c1, c2 = clients["n1"], clients["n2"]
    events = []
    c2.on_watch(events.append)

    def flow():
        yield from c2.watch_children("/members")
        yield from c1.create("/members/a", 1)
        yield env.timeout(0.01)

    drive(env, flow())
    assert [e.kind for e in events] == ["children"]


def test_ephemeral_deleted_on_session_expiry(setup):
    env, net, server, clients = setup
    c1, c2 = clients["n1"], clients["n2"]

    def flow():
        yield from c1.start_session()
        yield from c1.create("/eph", "mine", ephemeral=True)
        assert (yield from c2.exists("/eph"))
        c1.node.crash()  # heartbeats stop
        yield env.timeout(c1.session_timeout + 2.0)
        return (yield from c2.exists("/eph"))

    assert drive(env, flow()) is False


def test_session_survives_with_heartbeats(setup):
    env, net, server, clients = setup
    c1, c2 = clients["n1"], clients["n2"]

    def flow():
        yield from c1.start_session()
        yield from c1.create("/eph", "mine", ephemeral=True)
        yield env.timeout(10.0)  # many session timeouts, but heartbeats flow
        return (yield from c2.exists("/eph"))

    assert drive(env, flow()) is True


def test_ephemeral_requires_session(setup):
    env, net, server, clients = setup
    c = clients["n1"]

    def flow():
        yield from c.create("/eph", 1, ephemeral=True)  # no session started

    with pytest.raises(Exception):
        drive(env, flow())


def test_explicit_session_close_drops_ephemerals(setup):
    env, net, server, clients = setup
    c1, c2 = clients["n1"], clients["n2"]

    def flow():
        yield from c1.start_session()
        yield from c1.create("/eph", 1, ephemeral=True)
        yield from c1.close_session()
        return (yield from c2.exists("/eph"))

    assert drive(env, flow()) is False


class TestLeaderElection:
    def test_single_candidate_wins(self, setup):
        env, net, server, clients = setup
        c = clients["n1"]
        election = LeaderElection(c)

        def flow():
            yield from c.start_session()
            return (yield from election.campaign())

        assert drive(env, flow()) is True
        assert election.is_leader
        assert election.leader_name == "n1"

    def test_second_candidate_loses(self, setup):
        env, net, server, clients = setup
        e1 = LeaderElection(clients["n1"])
        e2 = LeaderElection(clients["n2"])

        def flow():
            yield from clients["n1"].start_session()
            yield from clients["n2"].start_session()
            won1 = yield from e1.campaign()
            won2 = yield from e2.campaign()
            return won1, won2

        assert drive(env, flow()) == (True, False)
        assert e2.leader_name == "n1"

    def test_failover_on_leader_crash(self, setup):
        env, net, server, clients = setup
        e1 = LeaderElection(clients["n1"])
        e2 = LeaderElection(clients["n2"])

        def flow():
            yield from clients["n1"].start_session()
            yield from clients["n2"].start_session()
            yield from e1.campaign()
            yield from e2.campaign()
            clients["n1"].node.crash()
            # session expiry + watch delivery + re-campaign
            yield env.timeout(10.0)

        drive(env, flow())
        assert e2.is_leader
        assert e2.leader_name == "n2"
