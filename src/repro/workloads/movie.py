"""The movie-review workflow (Figure 11a), adapted from DeathStarBench.

A ComposeReview request fans out over several stateful functions — the
composition pattern Beldi's movie workload models: generate a unique review
id, store the review text and rating, then register the review with both
the movie's and the user's review lists. Every step is an externally
visible effect, so each is logged (in BokiFlow/Beldi) for exactly-once.

The workload is runtime-agnostic: register it on a BokiFlowRuntime,
BeldiRuntime, or UnsafeRuntime.
"""

from __future__ import annotations

from typing import Any, Dict

TABLE_REVIEWS = "review-storage"
TABLE_MOVIE_REVIEWS = "movie-reviews"
TABLE_USER_REVIEWS = "user-reviews"
TABLE_MOVIE_INFO = "movie-info"


def register_movie_workflows(runtime, prefix: str = "movie") -> str:
    """Deploy the workflow functions; returns the frontend function name."""

    def unique_id(env, arg):
        # The review id must be stable across re-executions: derive it from
        # the (logged, deterministic) workflow identity.
        if False:
            yield
        return f"review-{env.workflow_id}"

    def store_review(env, arg):
        review_id = arg["review_id"]
        yield from env.write(
            TABLE_REVIEWS,
            review_id,
            {"text": arg["text"], "rating": arg["rating"], "user": arg["user"]},
        )
        return review_id

    def register_movie_review(env, arg):
        current = yield from env.read(TABLE_MOVIE_REVIEWS, arg["movie"])
        reviews = list(current) if current else []
        reviews.append(arg["review_id"])
        yield from env.write(TABLE_MOVIE_REVIEWS, arg["movie"], reviews)
        return len(reviews)

    def register_user_review(env, arg):
        current = yield from env.read(TABLE_USER_REVIEWS, arg["user"])
        reviews = list(current) if current else []
        reviews.append(arg["review_id"])
        yield from env.write(TABLE_USER_REVIEWS, arg["user"], reviews)
        return len(reviews)

    def compose_review(env, arg):
        review_id = yield from env.invoke(f"{prefix}-unique-id", arg)
        payload = dict(arg)
        payload["review_id"] = review_id
        yield from env.invoke(f"{prefix}-store-review", payload)
        yield from env.invoke(f"{prefix}-register-movie", payload)
        yield from env.invoke(f"{prefix}-register-user", payload)
        return review_id

    runtime.register_workflow(f"{prefix}-unique-id", unique_id)
    runtime.register_workflow(f"{prefix}-store-review", store_review)
    runtime.register_workflow(f"{prefix}-register-movie", register_movie_review)
    runtime.register_workflow(f"{prefix}-register-user", register_user_review)
    runtime.register_workflow(f"{prefix}-compose", compose_review)
    return f"{prefix}-compose"


def compose_review_request(rng, request_index: int) -> Dict[str, Any]:
    """A request drawn from a small user/movie population."""
    return {
        "user": f"user-{rng.randrange(100)}",
        "movie": f"movie-{rng.randrange(50)}",
        "text": f"review text {request_index}",
        "rating": rng.randrange(1, 11),
    }


def register_full_movie_workflows(runtime, prefix: str = "moviefull") -> str:
    """The fuller DeathStarBench media-service graph (what Beldi's movie
    workload actually models): the frontend fans out to UniqueId, MovieId,
    Text, Rating, and UserId services, then ComposeReview persists the
    review and registers it with the movie's and user's lists. Eight
    functions, all composed with exactly-once invokes."""

    def unique_id(env, arg):
        if False:
            yield
        return f"review-{env.workflow_id}"

    def movie_id(env, arg):
        """Resolve the movie title to its id (registering it on first
        sight — a logged, exactly-once effect)."""
        existing = yield from env.read(TABLE_MOVIE_INFO, arg["movie"])
        if existing is not None:
            return existing["id"]
        movie_id_value = f"m-{arg['movie']}"
        yield from env.write(
            TABLE_MOVIE_INFO, arg["movie"], {"id": movie_id_value, "title": arg["movie"]}
        )
        return movie_id_value

    def text_service(env, arg):
        if False:
            yield
        return arg["text"].strip()

    def rating_service(env, arg):
        """Update the movie's running rating (read-modify-write, logged)."""
        current = (yield from env.read(TABLE_MOVIE_INFO, f"rating:{arg['movie']}")) or {}
        count, total = current.get("count", 0), current.get("total", 0)
        yield from env.write(
            TABLE_MOVIE_INFO,
            f"rating:{arg['movie']}",
            {"count": count + 1, "total": total + arg["rating"]},
        )
        return (total + arg["rating"]) / (count + 1)

    def user_id(env, arg):
        if False:
            yield
        return f"u-{arg['user']}"

    def store_review(env, arg):
        yield from env.write(TABLE_REVIEWS, arg["review_id"], arg["review"])
        return arg["review_id"]

    def register_lists(env, arg):
        movie_list = (yield from env.read(TABLE_MOVIE_REVIEWS, arg["movie"])) or []
        yield from env.write(TABLE_MOVIE_REVIEWS, arg["movie"], movie_list + [arg["review_id"]])
        user_list = (yield from env.read(TABLE_USER_REVIEWS, arg["user"])) or []
        yield from env.write(TABLE_USER_REVIEWS, arg["user"], user_list + [arg["review_id"]])
        return len(movie_list) + 1

    def frontend(env, arg):
        review_id = yield from env.invoke(f"{prefix}-unique-id", arg)
        resolved_movie = yield from env.invoke(f"{prefix}-movie-id", arg)
        text = yield from env.invoke(f"{prefix}-text", arg)
        avg_rating = yield from env.invoke(f"{prefix}-rating", arg)
        user = yield from env.invoke(f"{prefix}-user-id", arg)
        review = {
            "movie": resolved_movie,
            "user": user,
            "text": text,
            "rating": arg["rating"],
        }
        yield from env.invoke(
            f"{prefix}-store-review", {"review_id": review_id, "review": review}
        )
        yield from env.invoke(
            f"{prefix}-register-lists",
            {"review_id": review_id, "movie": arg["movie"], "user": arg["user"]},
        )
        return {"review_id": review_id, "avg_rating": avg_rating}

    runtime.register_workflow(f"{prefix}-unique-id", unique_id)
    runtime.register_workflow(f"{prefix}-movie-id", movie_id)
    runtime.register_workflow(f"{prefix}-text", text_service)
    runtime.register_workflow(f"{prefix}-rating", rating_service)
    runtime.register_workflow(f"{prefix}-user-id", user_id)
    runtime.register_workflow(f"{prefix}-store-review", store_review)
    runtime.register_workflow(f"{prefix}-register-lists", register_lists)
    runtime.register_workflow(f"{prefix}-frontend", frontend)
    return f"{prefix}-frontend"
