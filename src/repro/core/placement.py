"""Placement: building a term's assignment from the available nodes.

Encodes the deployment conventions of the paper's experimental setup (§7):
every function node's engine owns a shard of every physical log; each
shard is backed by ``ndata`` storage nodes; each metalog lives on ``nmeta``
sequencers; a configurable subset of engines maintains each log's index
(4 per physical log in the paper's default setup).

:func:`assign_tenant_engines` adds the multi-tenant dimension
(``repro.tenant``): which engines each tenant's invocations should land
on. Pinned (large) tenants get dedicated engines sized by their weight
share; spread tenants get a rotation-offset subset of the remaining
fleet so no two small tenants pile onto the same engines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import BokiConfig, LogAssignment, TermConfig
from repro.core.hashing import ConsistentHashRing, stable_hash


def build_term(
    config: BokiConfig,
    term_id: int,
    engine_names: Sequence[str],
    storage_names: Sequence[str],
    sequencer_names: Sequence[str],
    num_logs: Optional[int] = None,
    index_engines_per_log: Optional[int] = None,
    primary_overrides: Optional[Dict[int, str]] = None,
    prev: Optional[TermConfig] = None,
) -> TermConfig:
    """Deterministically place ``num_logs`` physical logs on the nodes.

    With ``prev`` (the outgoing term), storage replica sets and index
    engines are carried over with minimal movement instead of rehashed:
    surviving replicas stay where they are unless their node left the
    fleet or exceeds the balanced quota (see
    :mod:`repro.elastic.rebalance`). Fresh terms (``prev=None``) keep the
    historical hash placement, so failure-driven reconfiguration is
    byte-identical to earlier releases.
    """
    num_logs = num_logs if num_logs is not None else config.num_logs
    if num_logs <= 0:
        raise ValueError("need at least one physical log")
    if not engine_names:
        raise ValueError("need at least one engine")
    if len(storage_names) < config.ndata:
        raise ValueError(
            f"need >= ndata={config.ndata} storage nodes, have {len(storage_names)}"
        )
    if len(sequencer_names) < config.nmeta:
        raise ValueError(
            f"need >= nmeta={config.nmeta} sequencer nodes, have {len(sequencer_names)}"
        )
    per_log_index = index_engines_per_log if index_engines_per_log is not None else min(
        4, len(engine_names)
    )

    rebalanced: Optional[Dict[object, List[str]]] = None
    if prev is not None:
        # Local import: repro.elastic layers *above* repro.core; only this
        # opt-in path reaches down into the rebalancer.
        from repro.elastic.rebalance import rebalance_replicas

        slot_list = [
            (log_id, shard)
            for log_id in range(num_logs)
            for shard in engine_names
        ]
        old_replicas: Dict[object, List[str]] = {}
        for log_id, asg in prev.logs.items():
            for shard, replica_set in asg.shard_storage.items():
                old_replicas[(log_id, shard)] = list(replica_set)
        rebalanced = rebalance_replicas(
            slot_list, old_replicas, list(storage_names), config.ndata
        )

    logs: Dict[int, LogAssignment] = {}
    for log_id in range(num_logs):
        shards = list(engine_names)
        shard_storage: Dict[str, List[str]] = {}
        for shard in shards:
            if rebalanced is not None:
                shard_storage[shard] = list(rebalanced[(log_id, shard)])
                continue
            start = stable_hash((term_id, log_id, shard), salt="placement") % len(storage_names)
            shard_storage[shard] = [
                storage_names[(start + i) % len(storage_names)] for i in range(config.ndata)
            ]
        seq_start = (log_id + term_id) % len(sequencer_names)
        sequencers = [
            sequencer_names[(seq_start + i) % len(sequencer_names)]
            for i in range(config.nmeta)
        ]
        primary = sequencers[0]
        if primary_overrides and log_id in primary_overrides:
            primary = primary_overrides[log_id]
            if primary not in sequencers:
                sequencers[0] = primary
        idx_start = log_id % len(engine_names)
        index_engines = [
            engine_names[(idx_start + i) % len(engine_names)] for i in range(per_log_index)
        ]
        if prev is not None and log_id in prev.logs:
            # Index bootstrap is a full historical replay — keep surviving
            # index engines in place and only top up from the rotation.
            surviving = [
                e for e in prev.logs[log_id].index_engines if e in shards
            ]
            for candidate in index_engines:
                if len(surviving) >= per_log_index:
                    break
                if candidate not in surviving:
                    surviving.append(candidate)
            index_engines = surviving[:per_log_index] or index_engines
        logs[log_id] = LogAssignment(
            log_id=log_id,
            shards=shards,
            shard_storage=shard_storage,
            sequencers=sequencers,
            primary=primary,
            index_engines=list(dict.fromkeys(index_engines)),
        )
    ring = ConsistentHashRing(list(range(num_logs)), num_partitions=config.ring_partitions)
    return TermConfig(term_id=term_id, logs=logs, ring=ring)


def assign_tenant_engines(
    qos_by_tenant: Dict[str, object],
    engine_names: Sequence[str],
    term_id: int = 0,
    spread: Optional[int] = None,
) -> Dict[str, List[str]]:
    """Deterministically place tenants onto the engine fleet.

    ``qos_by_tenant`` maps tenant name -> QoS (anything with ``pinned``
    and ``weight`` attributes, i.e. :class:`~repro.tenant.TenantQoS`),
    in registration order. Pinned tenants are carved dedicated engines
    off the front of the fleet — each gets a contiguous slice sized by
    its share of the total pinned weight (at least one engine), capped so
    at least one engine always remains shared. Unpinned tenants each get
    ``spread`` engines (default: the whole shared pool) chosen at a
    stable-hash rotation offset into the shared pool, so small tenants
    scatter instead of stacking.

    Returns tenant -> preferred engine names; feed it to
    :class:`~repro.faas.scheduling.TenantScheduler`.
    """
    if not engine_names:
        raise ValueError("need at least one engine")
    engines = list(engine_names)
    pinned = [t for t, q in qos_by_tenant.items() if getattr(q, "pinned", False)]
    placement: Dict[str, List[str]] = {}
    cursor = 0
    if pinned:
        # Budget: leave at least one shared engine for everyone else.
        budget = max(len(pinned), len(engines) - 1)
        total_weight = sum(
            getattr(qos_by_tenant[t], "weight", 1.0) for t in pinned
        )
        for tenant in pinned:
            weight = getattr(qos_by_tenant[tenant], "weight", 1.0)
            want = max(1, int(budget * weight / total_weight))
            remaining_pinned = len(pinned) - len(placement) - 1
            want = min(want, budget - cursor - remaining_pinned)
            want = max(1, want)
            slice_ = [engines[(cursor + i) % len(engines)] for i in range(want)]
            placement[tenant] = slice_
            cursor += want
    shared = engines[cursor:] or engines
    for tenant, qos in qos_by_tenant.items():
        if tenant in placement:
            continue
        width = min(len(shared), spread) if spread else len(shared)
        start = stable_hash((term_id, tenant), salt="tenant-placement") % len(shared)
        placement[tenant] = [shared[(start + i) % len(shared)] for i in range(width)]
    return placement
