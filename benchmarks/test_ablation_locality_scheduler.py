"""Ablation: locality-aware function scheduling.

§4.4 suggests scheduling functions "on nodes where their data is likely to
be cached"; Table 6 quantifies what ignoring locality costs at the read
path. This ablation closes the loop at the *scheduler*: the same
function-based read workload under (a) round-robin placement and (b) the
LocalityScheduler that places invocations on index-holding nodes. With
locality, reads are served by the local engine (no extra hop, warm cache).
"""

import pytest

from benchmarks._common import (
    emit_artifact,
    info,
    lat_ms,
    make_cluster,
    ms,
    print_table,
    run_once,
    throughput,
)
from repro.faas.scheduling import enable_locality_scheduling
from repro.workloads.harness import run_closed_loop

CLIENTS = 24
DURATION = 0.25
BOOKS = [5, 6, 7, 8]


def run_variant(locality: bool):
    cluster = make_cluster(
        num_function_nodes=8, num_storage_nodes=3, index_engines_per_log=2,
        workers_per_node=16,
    )
    scheduler = enable_locality_scheduling(cluster) if locality else None

    def reader_fn(ctx, arg):
        book = cluster.logbook_for(ctx)
        record = yield from book.check_tail(tag=4)
        return record.data if record else None

    cluster.register_function("read-tail", reader_fn)

    def seed():
        for book_id in BOOKS:
            book = cluster.logbook(book_id)
            yield from book.append("payload-" + "x" * 512, tags=[4])

    cluster.drive(seed(), limit=60.0)

    rng = cluster.streams.stream("locality-mix")

    def make_op(client):
        def op():
            book_id = BOOKS[rng.randrange(len(BOOKS))]
            yield from cluster.gateway.external_invoke(
                cluster.client_node, "read-tail", book_id=book_id
            )

        return op

    result = run_closed_loop(cluster.env, make_op, CLIENTS, DURATION)
    remote_reads = sum(e.remote_reads for e in cluster.engines.values())
    return result, remote_reads, scheduler


def experiment():
    return {
        "round-robin": run_variant(False),
        "locality-aware": run_variant(True),
    }


@pytest.mark.benchmark(group="ablation-locality")
def test_ablation_locality_scheduler(benchmark):
    results = run_once(benchmark, experiment)

    rows = []
    for name, (result, remote_reads, scheduler) in results.items():
        rows.append(
            [
                name,
                f"{result.throughput / 1e3:.1f}K",
                ms(result.median_latency()),
                str(remote_reads),
            ]
        )
    print_table(
        "Ablation: function placement vs LogBook read locality",
        ["scheduler", "t-put", "read p50", "remote engine reads"],
        rows,
    )

    metrics = {}
    for name, (result, remote_reads, scheduler) in results.items():
        slug = name.replace("-", "_")
        metrics[f"{slug}.throughput"] = throughput(result.throughput)
        metrics[f"{slug}.p50_ms"] = lat_ms(result.median_latency())
        metrics[f"{slug}.remote_reads"] = info(float(remote_reads))
    emit_artifact(
        "ablation_locality_scheduler",
        metrics,
        title="Ablation: locality-aware function scheduling",
        config={"clients": CLIENTS, "duration_s": DURATION, "books": BOOKS},
    )

    rr, rr_remote, _ = results["round-robin"]
    loc, loc_remote, scheduler = results["locality-aware"]
    # Claim 1: locality scheduling eliminates remote engine reads.
    assert loc_remote == 0
    assert rr_remote > 0
    # Claim 2: it improves read latency and throughput.
    assert loc.median_latency() < rr.median_latency()
    assert loc.throughput > rr.throughput
    # Claim 3: every book-bound invocation was placed locally.
    assert scheduler.locality_rate == 1.0
