"""Figure 13: BokiStore vs Cloudburst on get/put (§7.3).

Paper (8 function / 8 storage nodes): BokiStore achieves 1.46-2.01x higher
*get* throughput, and put throughput from 0.89x (light load) to 1.23x
(192 clients, where the Cloudburst KVS saturates) — while providing
sequential consistency and transactions vs Cloudburst's causal gets.

Gets and puts are measured in separate runs (as in the paper's two
charts); the get run mixes in 10% puts so caches see realistic churn.
BokiStore's KV puts use blind full-object writes.
"""

import pytest

from benchmarks._common import (
    emit_artifact,
    kops,
    lat_ms,
    make_cluster,
    ms,
    print_table,
    run_once,
    throughput,
)
from repro.baselines.cloudburst import CloudburstClient, CloudburstService
from repro.libs.bokistore import BokiStore
from repro.sim.metrics import LatencyRecorder
from repro.workloads.harness import run_closed_loop

CLIENT_COUNTS = [24, 48, 96]
DURATION = 0.2
NUM_KEYS = 64
GET_RUN_PUT_SHARE = 0.1


def _measure(make_op_factory, env, num_clients, recorders):
    run_closed_loop(env, make_op_factory, num_clients, DURATION)
    return {
        name: {"recorder": rec, "tput": rec.count / DURATION}
        for name, rec in recorders.items()
    }


def run_bokistore(num_clients, mode):
    cluster = make_cluster(
        num_function_nodes=8, num_storage_nodes=8, index_engines_per_log=8,
        workers_per_node=32,
    )
    log_id = cluster.term.log_for_book(70)
    engines = [e for e in cluster.engines.values() if e.indexes(log_id)]
    rng = cluster.streams.stream("kv-mix")
    env = cluster.env
    gets, puts = LatencyRecorder("get"), LatencyRecorder("put")
    stores = {}

    def store_for(i):
        if i not in stores:
            stores[i] = BokiStore(cluster.logbook(70, engine=engines[i % len(engines)]))
        return stores[i]

    def init():
        for k in range(NUM_KEYS):
            yield from store_for(0).put(f"key-{k}", {"v": 0})

    cluster.drive(init(), limit=3600.0)

    def make_op(client):
        store = store_for(client)

        def op():
            key = f"key-{rng.randrange(NUM_KEYS)}"
            started = env.now
            do_put = mode == "put" or (mode == "get" and rng.random() < GET_RUN_PUT_SHARE)
            if do_put:
                yield from store.put(key, {"v": 1})
                puts.record(env.now - started)
            else:
                yield from store.get_object(key)
                gets.record(env.now - started)

        return op

    return _measure(make_op, env, num_clients, {"get": gets, "put": puts})


def run_cloudburst(num_clients, mode):
    cluster = make_cluster(num_function_nodes=8, num_storage_nodes=8, workers_per_node=32)
    CloudburstService(cluster.env, cluster.net, cluster.streams)
    rng = cluster.streams.stream("kv-mix")
    env = cluster.env
    gets, puts = LatencyRecorder("get"), LatencyRecorder("put")

    def init():
        client = CloudburstClient(cluster.net, cluster.client_node)
        for k in range(NUM_KEYS):
            yield from client.put(f"key-{k}", 0)

    cluster.drive(init(), limit=3600.0)

    def make_op(client_index):
        node = cluster.function_nodes[client_index % 8].node
        client = CloudburstClient(cluster.net, node)

        def op():
            key = f"key-{rng.randrange(NUM_KEYS)}"
            started = env.now
            do_put = mode == "put" or (mode == "get" and rng.random() < GET_RUN_PUT_SHARE)
            if do_put:
                yield from client.put(key, 1)
                puts.record(env.now - started)
            else:
                yield from client.get(key)
                gets.record(env.now - started)

        return op

    return _measure(make_op, env, num_clients, {"get": gets, "put": puts})


def experiment():
    out = {}
    for mode in ("get", "put"):
        out[mode] = {
            "Cloudburst": {n: run_cloudburst(n, mode) for n in CLIENT_COUNTS},
            "BokiStore": {n: run_bokistore(n, mode) for n in CLIENT_COUNTS},
        }
    return out


@pytest.mark.benchmark(group="fig13")
def test_fig13_bokistore_vs_cloudburst(benchmark):
    results = run_once(benchmark, experiment)

    for mode in ("get", "put"):
        rows = []
        for system in ("Cloudburst", "BokiStore"):
            rows.append(
                [system]
                + [
                    f"{kops(results[mode][system][n][mode]['tput'])} "
                    f"(p50 {ms(results[mode][system][n][mode]['recorder'].median())})"
                    for n in CLIENT_COUNTS
                ]
            )
        ratio = [
            f"{results[mode]['BokiStore'][n][mode]['tput'] / results[mode]['Cloudburst'][n][mode]['tput']:.2f}x"
            for n in CLIENT_COUNTS
        ]
        rows.append(["ratio", *ratio])
        print_table(
            f"Figure 13: {mode} throughput (median latency)",
            ["", *(f"{n} clients" for n in CLIENT_COUNTS)],
            rows,
        )

    metrics = {}
    for mode in ("get", "put"):
        for system in ("Cloudburst", "BokiStore"):
            slug = system.lower()
            for n in CLIENT_COUNTS:
                cell = results[mode][system][n][mode]
                metrics[f"{slug}.{mode}.c{n}.throughput"] = throughput(cell["tput"])
                metrics[f"{slug}.{mode}.c{n}.p50_ms"] = lat_ms(cell["recorder"].median())
    emit_artifact(
        "fig13_cloudburst",
        metrics,
        title="Figure 13: BokiStore vs Cloudburst on get/put",
        config={"client_counts": CLIENT_COUNTS, "duration_s": DURATION, "num_keys": NUM_KEYS},
    )

    top = CLIENT_COUNTS[-1]

    def tput(mode, system, n):
        return results[mode][system][n][mode]["tput"]

    # Claim 1: BokiStore's get throughput clearly exceeds Cloudburst's,
    # and the gap widens with concurrency (paper: 1.46x -> 2.01x).
    for n in CLIENT_COUNTS:
        assert tput("get", "BokiStore", n) > 1.1 * tput("get", "Cloudburst", n)
    assert (
        tput("get", "BokiStore", top) / tput("get", "Cloudburst", top)
        > tput("get", "BokiStore", CLIENT_COUNTS[0]) / tput("get", "Cloudburst", CLIENT_COUNTS[0]) * 0.9
    )
    # Claim 2: puts are near parity at light load (paper: 0.89x) and
    # BokiStore pulls ahead as Cloudburst saturates (paper: 1.23x).
    assert tput("put", "BokiStore", CLIENT_COUNTS[0]) > 0.6 * tput("put", "Cloudburst", CLIENT_COUNTS[0])
    assert tput("put", "BokiStore", top) > tput("put", "Cloudburst", top)
