"""Simulated cluster nodes with failure injection.

A :class:`Node` owns a CPU resource (for service-time modelling), a registry
of RPC handlers, and the set of processes running on it. Crashing a node
interrupts its processes and silently drops messages addressed to it, which
is how the reconfiguration experiments (§7.1, §7.5) inject failures.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.sim.kernel import Environment, Process
from repro.sim.sync import Resource


class NodeDownError(Exception):
    """An operation was attempted from or on a crashed node."""


class Node:
    """A simulated machine.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Unique node name; the network routes by name.
    cpu_capacity:
        Number of concurrently executing operations this node can service
        (models vCPUs / worker threads).
    """

    def __init__(self, env: Environment, name: str, cpu_capacity: int = 8):
        self.env = env
        self.name = name
        self.cpu = Resource(env, capacity=cpu_capacity)
        self.alive = True
        self.handlers: Dict[str, Callable] = {}
        self._processes: List[Process] = []
        self.crash_count = 0
        #: Callbacks run (in registration order) when the node crashes /
        #: restarts. The network uses the crash hooks to fail in-flight
        #: RPCs fast; components use restart hooks to re-register their
        #: background processes after recovery (repro.chaos).
        self.crash_hooks: List[Callable[["Node"], None]] = []
        self.restart_hooks: List[Callable[["Node"], None]] = []
        #: Extra seconds of delay added to every message handled by this
        #: node — the chaos subsystem's slow-node (degraded CPU) fault.
        self.slowdown = 0.0

    def handle(self, method: str, handler: Callable) -> None:
        """Register an RPC handler. The handler receives the payload and may
        be a plain function (instant logic) or a generator (a process that
        can yield timeouts / sub-RPCs)."""
        self.handlers[method] = handler

    def handler_for(self, method: str) -> Callable:
        try:
            return self.handlers[method]
        except KeyError:
            raise KeyError(f"node {self.name!r} has no handler for {method!r}") from None

    def spawn(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Run a process tied to this node's lifetime; interrupted on crash."""
        if not self.alive:
            raise NodeDownError(self.name)
        proc = self.env.process(generator, name=name or f"{self.name}:proc")
        self._processes.append(proc)
        if len(self._processes) > 64:
            self._processes = [p for p in self._processes if p.is_alive]
        return proc

    def crash(self) -> None:
        """Fail-stop: interrupt all node processes, drop future messages."""
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        for proc in self._processes:
            if proc.is_alive:
                proc.interrupt(NodeDownError(self.name))
        self._processes = []
        for hook in list(self.crash_hooks):
            hook(self)

    def restart(self) -> None:
        """Bring the node back (with empty volatile state — callers are
        responsible for re-registering processes, usually via restart
        hooks)."""
        if self.alive:
            return
        self.alive = True
        for hook in list(self.restart_hooks):
            hook(self)

    def check_alive(self) -> None:
        if not self.alive:
            raise NodeDownError(self.name)

    def __repr__(self) -> str:
        status = "up" if self.alive else "down"
        return f"<Node {self.name} {status}>"
