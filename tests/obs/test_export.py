"""Exporters: Chrome trace JSON, self-time attribution, reports."""

import json

import pytest

from repro.obs.export import (
    attribution_report,
    self_times,
    slowest_trace,
    to_chrome_trace,
    trace_spans,
    write_chrome_trace,
)
from repro.obs.trace import STATUS_OK, Tracer
from repro.sim.kernel import Environment


def build_trace(env, tracer):
    """root [0, 4] with overlapping children a,b [1, 3] on two nodes."""

    def scenario():
        root = tracer.start_trace("root", node="client")
        yield env.timeout(1.0)
        a = tracer.start_span("a", parent=root, node="n0")
        b = tracer.start_span("b", parent=root, node="n1")
        yield env.timeout(2.0)
        a.finish()
        b.finish()
        yield env.timeout(1.0)
        root.finish()

    env.run_until(env.process(scenario()), limit=10.0)


def test_self_times_dedup_concurrent_children():
    env = Environment()
    tracer = Tracer(env)
    build_trace(env, tracer)
    by_name = {s.name: s for s in tracer.spans}
    selfs = self_times(tracer.spans)
    # Children overlap exactly; the union [1, 3] is counted once.
    assert selfs[by_name["root"].span_id] == pytest.approx(2.0)
    assert selfs[by_name["a"].span_id] == pytest.approx(2.0)
    assert selfs[by_name["b"].span_id] == pytest.approx(2.0)
    # Self times of a complete tree cover at least the root's duration.
    assert sum(selfs.values()) >= by_name["root"].duration


def test_trace_spans_ordered_and_filtered():
    env = Environment()
    tracer = Tracer(env)
    build_trace(env, tracer)
    other = tracer.start_trace("unrelated")
    other.finish()
    tid = next(tracer.roots()).trace_id
    spans = trace_spans(tracer.spans, tid)
    assert [s.name for s in spans] == ["root", "a", "b"]


def test_slowest_trace_picks_longest_root():
    env = Environment()
    tracer = Tracer(env)

    def scenario():
        quick = tracer.start_trace("quick")
        yield env.timeout(0.5)
        quick.finish()
        slow = tracer.start_trace("slow")
        yield env.timeout(5.0)
        slow.finish()
        return slow.trace_id

    slow_tid = env.run_until(env.process(scenario()), limit=10.0)
    assert slowest_trace(tracer.spans) == slow_tid
    assert slowest_trace([]) is None


def test_chrome_trace_structure():
    env = Environment()
    tracer = Tracer(env)
    build_trace(env, tracer)
    doc = json.loads(to_chrome_trace(tracer.spans))
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert {e["args"]["name"] for e in meta} == {"client", "n0", "n1"}
    assert len(complete) == 3
    root = next(e for e in complete if e["name"] == "root")
    assert root["ts"] == 0.0
    assert root["dur"] == pytest.approx(4.0 * 1e6)  # microseconds
    assert root["args"]["status"] == STATUS_OK
    child = next(e for e in complete if e["name"] == "a")
    assert child["args"]["parent_id"] == root["args"]["span_id"]
    assert child["tid"] == root["tid"]  # same trace, same lane


def test_chrome_trace_deterministic_and_filterable():
    def build():
        env = Environment()
        tracer = Tracer(env)
        build_trace(env, tracer)
        return tracer

    first, second = build(), build()
    assert to_chrome_trace(first.spans) == to_chrome_trace(second.spans)
    tid = next(first.roots()).trace_id
    doc = json.loads(to_chrome_trace(first.spans, trace_id=tid))
    assert all(
        e["args"]["trace_id"] == tid for e in doc["traceEvents"] if e["ph"] == "X"
    )


def test_write_chrome_trace(tmp_path):
    env = Environment()
    tracer = Tracer(env)
    build_trace(env, tracer)
    path = tmp_path / "trace.json"
    text = write_chrome_trace(str(path), tracer.spans)
    assert path.read_text() == text
    json.loads(text)


def test_attribution_report_single_trace():
    env = Environment()
    tracer = Tracer(env)
    build_trace(env, tracer)
    tid = next(tracer.roots()).trace_id
    report = attribution_report(tracer.spans, trace_id=tid)
    assert f"trace {tid}" in report
    assert "end-to-end 4000.000 ms" in report
    assert "a [n0]" in report
    assert "b [n1]" in report
    # Overlapping children each claim 50%; shares may sum past 100%.
    assert "50.0%" in report


def test_attribution_report_aggregate_and_empty():
    env = Environment()
    tracer = Tracer(env)
    build_trace(env, tracer)
    build_trace(env, tracer)
    report = attribution_report(tracer.spans)
    assert "2 traces" in report
    assert "root" in report
    assert attribution_report([]).endswith("(no complete traces)")
