"""The BokiFlow workflow environment (Figure 6a).

A workflow instance is identified by a workflow id; each of its externally
visible operations is a *step* with a monotonically increasing step number.
Every step derives a log tag from ``(workflow_id, step)``: the step appends
its record and then reads the *first* record carrying the tag — so during
re-execution the original record wins and the step's effects are not
repeated (atomic test-and-append).

Database writes are made idempotent by using the step record's seqnum as
the item version, applied under a conditional update (Figure 6a's
``rawDBWrite`` with ``Version < rec.seqnum``).

``invoke`` assigns the child a deterministic workflow id logged in the
parent's pre-invoke record, so a re-executed parent re-invokes the child
with the *same* id and the child's own step log deduplicates its effects.
The child's wrapper logs three records (start, result, done), matching the
five-appends-per-invoke cost the paper reports (§7.2: two in the parent,
three in the child).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Optional

from repro.baselines.dynamodb import ConditionFailedError, DynamoDBClient
from repro.core.cluster import BokiCluster
from repro.core.hashing import stable_hash
from repro.core.logbook import LogBook
from repro.faas import FunctionContext

#: Tag-space guard: tags must be nonzero (0 is the implicit all-records tag).
_TAG_MOD = (1 << 61) - 1


def step_tag(workflow_id: str, step: int, suffix: str = "") -> int:
    """hashLogTag of the Figure 6a pseudocode."""
    return stable_hash((workflow_id, step, suffix), salt="bokiflow") % _TAG_MOD + 1


class WorkflowCrash(Exception):
    """Raised by failure-injection hooks to simulate a mid-workflow crash."""


class WorkflowEnv:
    """Per-invocation workflow handle: the Beldi-compatible API surface."""

    def __init__(
        self,
        runtime: "BokiFlowRuntime",
        ctx: FunctionContext,
        workflow_id: str,
    ):
        self.runtime = runtime
        self.ctx = ctx
        self.workflow_id = workflow_id
        self.step = 0
        self.book: LogBook = runtime.cluster.logbook_for(ctx)
        self.db = DynamoDBClient(runtime.cluster.net, ctx.node, runtime.db_service)
        #: Failure-injection hook: called before each step with the step
        #: number; may raise WorkflowCrash.
        self.fault_hook: Optional[Callable[[int], None]] = runtime.fault_hook

    def _pre_step(self) -> None:
        # The env-aware hook (repro.chaos) sees which workflow is at which
        # step; the plain hook keeps the original (step-only) signature.
        if self.runtime.fault_hook_env is not None:
            self.runtime.fault_hook_env(self, self.step)
        elif self.fault_hook is not None:
            self.fault_hook(self.step)

    # ------------------------------------------------------------------
    # Primitive operations (the Figure 11c microbenchmark set)
    # ------------------------------------------------------------------
    def read(self, table: str, key: Any) -> Generator:
        """Unlogged read; returns the item's Value attribute (or None)."""
        item = yield from self.db.get(table, key)
        return item.get("Value") if item is not None else None

    def write(self, table: str, key: Any, value: Any) -> Generator:
        """Exactly-once write (Figure 6a)."""
        self._pre_step()
        tag = step_tag(self.workflow_id, self.step)
        effect_id = (self.workflow_id, self.step)
        yield from self.book.append(
            {"op": "write", "table": table, "key": key, "value": value}, tags=[tag]
        )
        record = yield from self.book.read_next(tag=tag, min_seqnum=0)
        # Honor the first record for this step (test-and-append): its value
        # is what this step writes, now and on every re-execution.
        yield from self._idempotent_db_write(
            record.data["table"], record.data["key"], record.data["value"], record.seqnum,
            effect_id=effect_id,
        )
        self.step += 1
        return record.seqnum

    def cond_write(self, table: str, key: Any, value: Any, expected: Any) -> Generator:
        """Conditional write: applies only if the item's current Value
        equals ``expected`` at the step's first execution. The outcome is
        logged so re-executions reproduce it. Returns True if applied."""
        self._pre_step()
        tag = step_tag(self.workflow_id, self.step, "cond")
        current = yield from self.db.get(table, key)
        outcome = current is not None and current.get("Value") == expected
        yield from self.book.append(
            {
                "op": "cond_write",
                "table": table,
                "key": key,
                "value": value,
                "outcome": outcome,
            },
            tags=[tag],
        )
        record = yield from self.book.read_next(tag=tag, min_seqnum=0)
        if record.data["outcome"]:
            yield from self._idempotent_db_write(
                record.data["table"], record.data["key"], record.data["value"], record.seqnum,
                effect_id=(self.workflow_id, self.step),
            )
        self.step += 1
        return record.data["outcome"]

    def _idempotent_db_write(
        self, table: str, key: Any, value: Any, seqnum: int, effect_id: Any = None
    ) -> Generator:
        try:
            yield from self.db.update(
                table,
                key,
                set_attrs={"Value": value, "Version": seqnum},
                condition=("attr_lt_or_absent", "Version", seqnum),
                effect_id=effect_id,
            )
        except ConditionFailedError:
            pass  # already applied by a previous execution

    def invoke(self, callee: str, arg: Any = None) -> Generator:
        """Exactly-once child invocation (Figure 6a)."""
        self._pre_step()
        tag_pre = step_tag(self.workflow_id, self.step, "pre")
        callee_id = f"{self.workflow_id}/{self.step}"
        yield from self.book.append({"op": "invoke-pre", "callee_id": callee_id}, tags=[tag_pre])
        record = yield from self.book.read_next(tag=tag_pre, min_seqnum=0)
        callee_id = record.data["callee_id"]
        retval = yield from self.ctx.invoke(
            callee, {"workflow_id": callee_id, "input": arg}
        )
        tag_post = step_tag(self.workflow_id, self.step, "post")
        yield from self.book.append({"op": "invoke-post", "retval": retval}, tags=[tag_post])
        record = yield from self.book.read_next(tag=tag_post, min_seqnum=0)
        self.step += 1
        return record.data["retval"]

    def invoke_parallel(self, calls) -> Generator:
        """Fan-out: invoke several children concurrently, each with the
        exactly-once protocol, as ONE workflow step. ``calls`` is a list of
        ``(callee, arg)``; returns results in order.

        Each branch gets its own pre/post tags derived from
        ``(workflow_id, step, branch)``, so re-execution re-launches every
        branch with its original deterministic callee id and honors the
        first logged result — the microservice fan-out pattern (e.g. a
        frontend hitting independent services) without serializing on the
        log."""
        self._pre_step()
        step = self.step
        sim = self.runtime.cluster.env

        def branch(i: int, callee: str, arg: Any) -> Generator:
            tag_pre = step_tag(self.workflow_id, step, f"pre{i}")
            callee_id = f"{self.workflow_id}/{step}.{i}"
            yield from self.book.append(
                {"op": "invoke-pre", "callee_id": callee_id}, tags=[tag_pre]
            )
            record = yield from self.book.read_next(tag=tag_pre, min_seqnum=0)
            callee_id = record.data["callee_id"]
            retval = yield from self.ctx.invoke(
                callee, {"workflow_id": callee_id, "input": arg}
            )
            tag_post = step_tag(self.workflow_id, step, f"post{i}")
            yield from self.book.append(
                {"op": "invoke-post", "retval": retval}, tags=[tag_post]
            )
            record = yield from self.book.read_next(tag=tag_post, min_seqnum=0)
            return record.data["retval"]

        procs = [
            sim.process(branch(i, callee, arg), name=f"fanout-{i}")
            for i, (callee, arg) in enumerate(calls)
        ]
        results = []
        for proc in procs:
            results.append((yield proc))
        self.step += 1
        return results

    # ------------------------------------------------------------------
    # Raw escapes (used by the unsafe baseline comparisons and tests)
    # ------------------------------------------------------------------
    def raw_db_write(self, table: str, key: Any, value: Any) -> Generator:
        yield from self.db.update(table, key, set_attrs={"Value": value})


class BokiFlowRuntime:
    """Deploys BokiFlow workflow functions onto a Boki cluster."""

    def __init__(self, cluster: BokiCluster, db_service: str = "dynamodb"):
        self.cluster = cluster
        self.db_service = db_service
        self._wf_ids = itertools.count(1)
        self.fault_hook: Optional[Callable[[int], None]] = None
        #: Env-aware failure hook: called as ``hook(env, step)`` before
        #: each step (takes precedence over ``fault_hook``), so chaos
        #: scenarios can target specific workflow instances.
        self.fault_hook_env: Optional[Callable[["WorkflowEnv", int], None]] = None
        #: Optional repro.chaos history recorder + client name for the
        #: resilient driver's logical ``flow.run`` operations.
        self.history = None
        self.client_name = "flow"

    def new_workflow_id(self, prefix: str = "wf") -> str:
        return f"{prefix}-{next(self._wf_ids)}"

    def register_workflow(self, name: str, body: Callable) -> None:
        """Deploy ``body(env, arg)`` (a generator function) as workflow
        function ``name``. The wrapper provides the child-side exactly-once
        protocol: if the workflow id already has a logged result, the body
        is skipped and the logged result returned."""

        def handler(ctx: FunctionContext, arg: dict) -> Generator:
            workflow_id = arg["workflow_id"]
            env = WorkflowEnv(self, ctx, workflow_id)
            start_tag = step_tag(workflow_id, -1, "start")
            result_tag = step_tag(workflow_id, -1, "result")
            done_tag = step_tag(workflow_id, -1, "done")
            # Append #1: start record (workflow tracked for GC, §5.5).
            yield from env.book.append({"op": "start", "wf": workflow_id}, tags=[start_tag])
            # Replay check: a completed prior execution logged the result.
            prior = yield from env.book.read_next(tag=result_tag, min_seqnum=0)
            if prior is not None:
                return prior.data["retval"]
            retval = yield from body(env, arg.get("input"))
            # Append #2: result record (first one wins).
            yield from env.book.append({"op": "result", "retval": retval}, tags=[result_tag])
            record = yield from env.book.read_next(tag=result_tag, min_seqnum=0)
            # Append #3: completion marker (GC uses it to find dead logs).
            yield from env.book.append({"op": "done", "wf": workflow_id}, tags=[done_tag])
            return record.data["retval"]

        self.cluster.register_function(name, handler)

    def start_workflow(
        self, name: str, arg: Any = None, book_id: int = 0, workflow_id: Optional[str] = None
    ) -> Generator:
        """Invoke a workflow from the cluster's client node; returns its
        result. Pass the same ``workflow_id`` to re-execute after a crash."""
        workflow_id = workflow_id or self.new_workflow_id()
        result = yield from self.cluster.invoke(
            name, {"workflow_id": workflow_id, "input": arg}, book_id=book_id
        )
        return result

    def run_workflow(
        self,
        name: str,
        arg: Any = None,
        book_id: int = 0,
        workflow_id: Optional[str] = None,
        policy=None,
    ) -> Generator:
        """Resilient driver: re-drive the workflow from its step journal
        when an execution dies mid-commit (Beldi's re-execution model).

        Each re-drive reuses the SAME workflow id, so the step log's
        test-and-append and the idempotent version-guarded writes make
        re-execution exactly-once — the crashed execution's applied
        steps replay as no-ops. Without the cluster's resilience layer
        (and no explicit ``policy``) this degrades to a single attempt,
        i.e. :meth:`start_workflow`.
        """
        from repro.sim.network import RpcError, RpcTimeout
        from repro.sim.node import NodeDownError

        workflow_id = workflow_id or self.new_workflow_id()
        resil = getattr(self.cluster, "resil", None)
        if policy is None and resil is not None:
            policy = self.cluster.gateway.invoke_policy
        history = self.history
        op = None
        if history is not None:
            op = history.invoke(self.client_name, "flow.run", workflow_id, arg)
        attempt = 0
        if resil is not None:
            resil.budget.on_attempt()
        while True:
            try:
                result = yield from self.start_workflow(
                    name, arg, book_id=book_id, workflow_id=workflow_id
                )
            except (WorkflowCrash, RpcError, RpcTimeout, NodeDownError) as exc:
                retry = policy is not None and policy.should_retry(exc, attempt)
                if retry and resil is not None and not resil.budget.try_spend():
                    retry = False
                if not retry:
                    if op is not None:
                        history.fail(op, type(exc).__name__)
                    raise
                if resil is not None:
                    resil.counters["retries"] += 1
                    rng = resil.jitter_rng()
                else:
                    rng = self.cluster.streams.stream("resil-jitter")
                yield self.cluster.env.timeout(policy.backoff(attempt, rng))
                attempt += 1
                continue
            if op is not None:
                history.ok(op, result)
            return result
