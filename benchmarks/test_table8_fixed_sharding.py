"""Table 8: log index vs fixed sharding under skew (§7.5).

Paper (append throughput over 128 LogBooks):

                 Uniform    Zipf(s=3)   Zipf(s=5)
  Fixed sharding 2492.7K    164.0K      129.6K
  Log index      250.6K     253.4K      278.6K

Under a uniform distribution the two placements are comparable (fixed
sharding even wins by avoiding ordering overheads at this scale); under
skew, fixed sharding collapses onto the hot book's shard while Boki's
any-shard placement with the log index is unaffected.
"""

import pytest

from benchmarks._common import emit_artifact, kops, make_cluster, print_table, run_once, throughput
from repro.baselines.fixed_sharding import fixed_sharding_logbook
from repro.core import BokiConfig
from repro.sim.randvar import zipf_weights
from repro.workloads.microbench import append_only

NUM_BOOKS = 128
CLIENTS = 96
DURATION = 0.15
#: Scaled-down per-node storage capacity so that the offered load exceeds
#: what a single shard's storage group can absorb — the regime Table 8
#: probes (the paper drives 2.5 MOp/s aggregate against per-shard groups).
STORAGE_CPU = 2
STORAGE_SERVICE = 200e-6
DISTRIBUTIONS = {
    "Uniform": None,
    "Zipf (s=3)": zipf_weights(NUM_BOOKS, 3.0),
    "Zipf (s=5)": zipf_weights(NUM_BOOKS, 5.0),
}


def run_cell(policy, weights):
    config = BokiConfig(storage_cpu=STORAGE_CPU, storage_service=STORAGE_SERVICE)
    cluster = make_cluster(
        num_function_nodes=8, num_storage_nodes=16, index_engines_per_log=4,
        workers_per_node=16, config=config,
    )
    factory = None
    if policy == "fixed":
        factory = lambda client, book: fixed_sharding_logbook(cluster, book)  # noqa: E731
    return append_only(
        cluster,
        num_clients=CLIENTS,
        duration=DURATION,
        book_ids=list(range(NUM_BOOKS)),
        book_weights=weights,
        logbook_factory=factory,
    )


def experiment():
    return {
        (policy, dist): run_cell(policy, weights)
        for policy in ("fixed", "index")
        for dist, weights in DISTRIBUTIONS.items()
    }


@pytest.mark.benchmark(group="table8")
def test_table8_log_index_vs_fixed_sharding(benchmark):
    results = run_once(benchmark, experiment)

    rows = [
        ["Fixed sharding", *(kops(results[("fixed", d)].throughput) for d in DISTRIBUTIONS)],
        ["Log index (Boki)", *(kops(results[("index", d)].throughput) for d in DISTRIBUTIONS)],
    ]
    print_table(
        "Table 8: append throughput over 128 LogBooks",
        ["", *DISTRIBUTIONS.keys()],
        rows,
    )

    def slug(dist):
        return dist.lower().replace(" ", "").replace("(", "").replace(")", "").replace("=", "")

    emit_artifact(
        "table8_fixed_sharding",
        {
            f"{policy}.{slug(dist)}.throughput": throughput(
                results[(policy, dist)].throughput
            )
            for policy in ("fixed", "index")
            for dist in DISTRIBUTIONS
        },
        title="Table 8: log index vs fixed sharding under skew",
        config={"num_books": NUM_BOOKS, "clients": CLIENTS, "duration_s": DURATION},
    )

    # Claim 1: under uniform load the two placements are comparable
    # (within 2x either way).
    uniform_ratio = (
        results[("index", "Uniform")].throughput
        / results[("fixed", "Uniform")].throughput
    )
    assert 0.5 < uniform_ratio < 2.0
    # Claim 2: fixed sharding collapses under skew (paper: ~15x drop; the
    # scaled-down cluster shows the same cliff at a smaller ratio).
    assert (
        results[("fixed", "Zipf (s=5)")].throughput
        < 0.6 * results[("fixed", "Uniform")].throughput
    )
    # Claim 3: the log index is unaffected by skew (within 20%).
    for dist in ("Zipf (s=3)", "Zipf (s=5)"):
        ratio = results[("index", dist)].throughput / results[("index", "Uniform")].throughput
        assert ratio > 0.8
    # Claim 4: under heavy skew the log index beats fixed sharding.
    assert (
        results[("index", "Zipf (s=5)")].throughput
        > 1.5 * results[("fixed", "Zipf (s=5)")].throughput
    )
