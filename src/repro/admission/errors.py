"""Typed overload errors and the retry-after signal.

Overload rejections are *definite* failures (the request was never
executed), so they are cheap to retry — but retrying them immediately is
exactly how retry storms turn a transient queue spike into a metastable
goodput collapse. Every :class:`Overloaded` therefore carries a
``retry_after`` hint (virtual seconds) computed by the shedding layer
from its current queue state, and ``repro.resil`` treats that hint as a
*floor* on its exponential backoff while charging **no** retry-budget
tokens for shed requests (the work was never started, so there is no
amplification to bound — see ``docs/overload.md``).

This module deliberately imports nothing from the rest of ``repro`` so
the admission layer can be raised from any depth of the stack (storage,
engine, gateway) without import cycles. The cause-chain walker
:func:`retry_after_hint` understands both ``__cause__`` chains and the
``.cause`` attribute of ``repro.sim.network.RpcError`` duck-typed.
"""

from __future__ import annotations

from typing import Optional

#: Priority classes, ordered from last-to-shed to first-to-shed.
INTERACTIVE = "interactive"
BATCH = "batch"
PRIORITIES = (INTERACTIVE, BATCH)


class Overloaded(Exception):
    """A request shed by admission control before any work was done.

    ``resource`` names the shedding layer (``"gateway"``,
    ``"engine.<name>"``, ``"storage.<name>"``), ``reason`` the trigger
    (``"concurrency-limit"``, ``"deadline"``, ``"window-full"``,
    ``"queue-delay"``), and ``retry_after`` is the shedding layer's
    estimate (virtual seconds) of when capacity may free up.
    """

    #: Duck-typed marker checked by :func:`is_overload` — lets transport
    #: layers attach the flag to their own error types (fail-fast RPC
    #: rejections) without importing this module.
    is_overload = True

    def __init__(self, resource: str, reason: str, retry_after: float = 0.0,
                 priority: str = INTERACTIVE):
        super().__init__(
            f"{resource} shed {priority} request ({reason}, "
            f"retry after {retry_after:.6g}s)"
        )
        self.resource = resource
        self.reason = reason
        self.retry_after = float(retry_after)
        self.priority = priority


def _cause_chain(exc: BaseException):
    """Yield ``exc`` and every cause reachable through ``.cause`` (the
    RpcError relay convention) or ``__cause__`` (plain ``raise from``)."""
    seen = set()
    cause: Optional[BaseException] = exc
    while cause is not None and id(cause) not in seen:
        seen.add(id(cause))
        yield cause
        cause = getattr(cause, "cause", None) or cause.__cause__


def is_overload(exc: BaseException) -> bool:
    """Whether ``exc`` (or any cause under relay layers) is an overload
    shed — i.e. the request was rejected without being executed."""
    return any(getattr(c, "is_overload", False) for c in _cause_chain(exc))


def retry_after_hint(exc: BaseException) -> Optional[float]:
    """The innermost machine-readable ``retry_after`` in the cause chain.

    Returns None when no layer attached a hint; the innermost hint wins
    because the deepest shedding layer (storage under an engine under the
    gateway) knows its own queue best.
    """
    hint = None
    for cause in _cause_chain(exc):
        value = getattr(cause, "retry_after", None)
        if isinstance(value, (int, float)):
            hint = float(value)
    return hint
