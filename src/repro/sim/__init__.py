"""Deterministic discrete-event simulation substrate.

This package provides the simulation kernel that the Boki reproduction runs
on: a virtual clock with an event heap (:mod:`repro.sim.kernel`),
synchronization primitives (:mod:`repro.sim.sync`), a latency-modelled
message network (:mod:`repro.sim.network`), failure-injectable nodes
(:mod:`repro.sim.node`), seeded random variates (:mod:`repro.sim.randvar`)
and measurement helpers (:mod:`repro.sim.metrics`).

All simulated components are single-threaded generator processes scheduled
by the kernel, which makes every experiment deterministic and reproducible
given a seed.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.metrics import Counter, LatencyRecorder, TimeSeries, percentile
from repro.sim.network import Message, Network, RpcError, RpcTimeout
from repro.sim.node import Node, NodeDownError
from repro.sim.randvar import RandomStreams, zipf_weights
from repro.sim.sync import Queue, QueueEmpty, QueueFull, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Environment",
    "Event",
    "Interrupt",
    "LatencyRecorder",
    "Message",
    "Network",
    "Node",
    "NodeDownError",
    "Process",
    "Queue",
    "QueueEmpty",
    "QueueFull",
    "RandomStreams",
    "Resource",
    "RpcError",
    "RpcTimeout",
    "SimulationError",
    "Store",
    "TimeSeries",
    "Timeout",
    "percentile",
    "zipf_weights",
]
