"""Unit tests for the FaaS runtime (gateway, function nodes, contexts)."""

import pytest

from repro.faas import FunctionContext, FunctionNode, FunctionNotFoundError, Gateway
from repro.sim import Environment, Network, Node
from repro.sim.randvar import RandomStreams


@pytest.fixture
def faas():
    env = Environment()
    net = Network(env, RandomStreams(seed=5), jitter=0.0)
    gateway = Gateway(env, net)
    fnodes = [FunctionNode(env, net, f"fn-{i}", workers=4) for i in range(2)]
    for fnode in fnodes:
        gateway.add_function_node(fnode)
    client = net.register(Node(env, "client"))
    return env, net, gateway, fnodes, client


def drive(env, gen, limit=300.0):
    return env.run_until(env.process(gen), limit=limit)


def test_external_invoke_returns_result(faas):
    env, net, gateway, fnodes, client = faas

    def double(ctx, arg):
        yield env.timeout(0.001)
        return arg * 2

    gateway.register_function("double", double)

    def flow():
        return (yield from gateway.external_invoke(client, "double", 21))

    assert drive(env, flow()) == 42


def test_unknown_function_raises(faas):
    env, net, gateway, fnodes, client = faas

    def flow():
        yield from gateway.external_invoke(client, "nope", 1)

    with pytest.raises(FunctionNotFoundError):
        drive(env, flow())


def test_round_robin_spreads_load(faas):
    env, net, gateway, fnodes, client = faas

    def noop(ctx, arg):
        yield env.timeout(0.0001)
        return None

    gateway.register_function("noop", noop)

    def flow():
        for _ in range(10):
            yield from gateway.external_invoke(client, "noop")

    drive(env, flow())
    assert fnodes[0].invocations == 5
    assert fnodes[1].invocations == 5


def test_child_invocation_and_result(faas):
    env, net, gateway, fnodes, client = faas

    def child(ctx, arg):
        yield env.timeout(0.001)
        return arg + 1

    def parent(ctx, arg):
        mid = yield from ctx.invoke("child", arg)
        final = yield from ctx.invoke("child", mid)
        return final

    gateway.register_function("child", child)
    gateway.register_function("parent", parent)

    def flow():
        return (yield from gateway.external_invoke(client, "parent", 10))

    assert drive(env, flow()) == 12


def test_baggage_inherited_by_child(faas):
    env, net, gateway, fnodes, client = faas
    seen = []

    def child(ctx, arg):
        seen.append(dict(ctx.baggage))
        yield env.timeout(0)
        return None

    def parent(ctx, arg):
        ctx.baggage["pos"] = 7
        yield from ctx.invoke("child")
        return None

    gateway.register_function("child", child)
    gateway.register_function("parent", parent)

    def flow():
        yield from gateway.external_invoke(client, "parent")

    drive(env, flow())
    assert seen == [{"pos": 7}]


def test_baggage_merged_back_with_max(faas):
    env, net, gateway, fnodes, client = faas
    FunctionContext.register_merger("pos", max)
    final = []

    def child(ctx, arg):
        ctx.baggage["pos"] = 10
        yield env.timeout(0)
        return None

    def parent(ctx, arg):
        ctx.baggage["pos"] = 3
        yield from ctx.invoke("child")
        final.append(ctx.baggage["pos"])
        return None

    gateway.register_function("child", child)
    gateway.register_function("parent", parent)

    def flow():
        yield from gateway.external_invoke(client, "parent")

    drive(env, flow())
    assert final == [10]


def test_child_stale_baggage_does_not_regress_parent(faas):
    env, net, gateway, fnodes, client = faas
    FunctionContext.register_merger("pos", max)
    final = []

    def child(ctx, arg):
        # Child does not advance its inherited position.
        yield env.timeout(0)
        return None

    def parent(ctx, arg):
        ctx.baggage["pos"] = 5
        yield from ctx.invoke("child")
        final.append(ctx.baggage["pos"])
        return None

    gateway.register_function("child", child)
    gateway.register_function("parent", parent)

    def flow():
        yield from gateway.external_invoke(client, "parent")

    drive(env, flow())
    assert final == [5]


def test_book_id_propagates_to_child(faas):
    env, net, gateway, fnodes, client = faas
    books = []

    def child(ctx, arg):
        books.append(ctx.book_id)
        yield env.timeout(0)
        return None

    def parent(ctx, arg):
        yield from ctx.invoke("child")
        return None

    gateway.register_function("child", child)
    gateway.register_function("parent", parent)

    def flow():
        yield from gateway.external_invoke(client, "parent", book_id=99)

    drive(env, flow())
    assert books == [99]


def test_worker_pool_limits_concurrency(faas):
    env, net, gateway, fnodes, client = faas
    peak = [0]
    running = [0]

    def busy(ctx, arg):
        running[0] += 1
        peak[0] = max(peak[0], running[0])
        yield env.timeout(0.1)
        running[0] -= 1
        return None

    gateway.register_function("busy", busy)

    def one_call():
        yield from gateway.external_invoke(client, "busy")

    procs = [env.process(one_call()) for _ in range(20)]
    for proc in procs:
        env.run_until(proc, limit=300.0)
    # 2 nodes x 4 workers each.
    assert peak[0] <= 8


def test_function_exception_propagates_to_client(faas):
    env, net, gateway, fnodes, client = faas

    def bad(ctx, arg):
        yield env.timeout(0)
        raise ValueError("app error")

    gateway.register_function("bad", bad)

    def flow():
        yield from gateway.external_invoke(client, "bad")

    with pytest.raises(ValueError, match="app error"):
        drive(env, flow())


def test_scheduler_override(faas):
    env, net, gateway, fnodes, client = faas

    def noop(ctx, arg):
        yield env.timeout(0)
        return None

    gateway.register_function("noop", noop)
    gateway.scheduler = lambda fn, book: fnodes[1]

    def flow():
        for _ in range(4):
            yield from gateway.external_invoke(client, "noop")

    drive(env, flow())
    assert fnodes[0].invocations == 0
    assert fnodes[1].invocations == 4


def test_crashed_node_skipped_by_round_robin(faas):
    env, net, gateway, fnodes, client = faas

    def noop(ctx, arg):
        yield env.timeout(0)
        return None

    gateway.register_function("noop", noop)
    fnodes[0].node.crash()

    def flow():
        for _ in range(4):
            yield from gateway.external_invoke(client, "noop")

    drive(env, flow())
    assert fnodes[1].invocations == 4


def test_call_ids_unique(faas):
    env, net, gateway, fnodes, client = faas
    ids = []

    def record(ctx, arg):
        ids.append(ctx.call_id)
        yield env.timeout(0)
        return None

    gateway.register_function("record", record)

    def flow():
        for _ in range(5):
            yield from gateway.external_invoke(client, "record")

    drive(env, flow())
    assert len(set(ids)) == 5
