"""Producer/consumer message-queue workload (§7.4, Table 4).

Fixed numbers of producer and consumer functions: each producer pushes
1 KB messages back to back; each consumer pops in a loop. Measures message
throughput (pops of real messages per second) and delivery latency (time a
message spends in the queue, stamped into the payload).

Backends adapt BokiQueue, simulated SQS, and simulated Pulsar to a common
push/pop interface.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.kernel import Environment, Interrupt
from repro.sim.metrics import LatencyRecorder

MESSAGE_PAD = "m" * 1024


class QueueBackend:
    """Adapter interface: per-producer push handles and per-consumer pop
    handles."""

    def make_producer(self, index: int) -> Callable[[Any], Generator]:
        raise NotImplementedError

    def make_consumer(self, index: int) -> Callable[[], Generator]:
        """Returns a pop() generator factory yielding (payload, sent_time)
        tuples or None when empty."""
        raise NotImplementedError


class BokiQueueBackend(QueueBackend):
    def __init__(
        self,
        cluster,
        num_shards: int,
        name: str = "bench-q",
        book_id: int = 77,
        max_backlog: Optional[int] = 16,
    ):
        from repro.libs.bokiqueue import BokiQueue

        self.cluster = cluster
        self.queues = {}
        engines = list(cluster.engines.values())
        self._engines = engines
        self.name = name
        self.book_id = book_id
        self.num_shards = num_shards
        self.max_backlog = max_backlog

    def _queue_for(self, engine_index: int):
        from repro.libs.bokiqueue import BokiQueue

        engine = self._engines[engine_index % len(self._engines)]
        key = engine.name
        if key not in self.queues:
            self.queues[key] = BokiQueue(
                self.cluster.logbook(self.book_id, engine=engine),
                self.name,
                num_shards=self.num_shards,
            )
        return self.queues[key]

    def make_producer(self, index: int):
        producer = self._queue_for(index).producer(max_backlog=self.max_backlog)

        def push(message):
            yield from producer.push(message)

        return push

    def make_consumer(self, index: int):
        consumer = self._queue_for(index).consumer(index % self.num_shards)

        def pop():
            return (yield from consumer.pop())

        return pop


class SQSBackend(QueueBackend):
    def __init__(self, cluster, queue_name: str = "bench-q"):
        from repro.baselines.sqs import SQSClient

        self.cluster = cluster
        self.queue_name = queue_name
        self._client = SQSClient(cluster.net, cluster.client_node)

    def make_producer(self, index: int):
        def push(message):
            yield from self._client.send(self.queue_name, message)

        return push

    def make_consumer(self, index: int):
        def pop():
            result = yield from self._client.receive(self.queue_name)
            return result[0] if result is not None else None

        return pop


class PulsarBackend(QueueBackend):
    def __init__(self, cluster, broker_names: List[str], num_partitions: int, topic: str = "bench-t"):
        from repro.baselines.pulsar import PulsarClient

        self.cluster = cluster
        self.topic = topic
        self.num_partitions = num_partitions
        self._client = PulsarClient(
            cluster.net, cluster.client_node, broker_names, num_partitions=num_partitions
        )

    def make_producer(self, index: int):
        def push(message):
            yield from self._client.publish(self.topic, message)

        return push

    def make_consumer(self, index: int):
        partition = index % self.num_partitions

        def pop():
            result = yield from self._client.receive(self.topic, partition)
            return result[0] if result is not None else None

        return pop


def run_queue_workload(
    env: Environment,
    backend: QueueBackend,
    num_producers: int,
    num_consumers: int,
    duration: float,
    warmup: float = 0.05,
    empty_poll_backoff: float = 2e-3,
) -> Tuple[float, LatencyRecorder]:
    """Returns (message throughput, delivery-latency recorder)."""
    delivery = LatencyRecorder("delivery")
    state = {"delivered": 0, "stop": False, "sent": 0}
    t_start = env.now + warmup
    t_end = t_start + duration

    def producer(index: int) -> Generator:
        push = backend.make_producer(index)
        i = 0
        try:
            while not state["stop"]:
                yield env.process(
                    push({"sent": env.now, "pad": MESSAGE_PAD, "i": (index, i)}),
                    name=f"push-{index}",
                )
                state["sent"] += 1
                i += 1
        except Interrupt:
            return

    def consumer(index: int) -> Generator:
        pop = backend.make_consumer(index)
        try:
            while not state["stop"]:
                message = yield env.process(pop(), name=f"pop-{index}")
                if message is None:
                    yield env.timeout(empty_poll_backoff)
                    continue
                now = env.now
                if t_start <= now <= t_end:
                    delivery.record(now - message["sent"])
                    state["delivered"] += 1
        except Interrupt:
            return

    procs = [env.process(producer(i), name=f"prod-{i}") for i in range(num_producers)]
    procs += [env.process(consumer(i), name=f"cons-{i}") for i in range(num_consumers)]
    stopper = env.timeout(warmup + duration)
    env.run_until(stopper, limit=env.now + (warmup + duration) * 100 + 300.0)
    state["stop"] = True
    for proc in procs:
        if proc.is_alive:
            proc.interrupt("done")
    env.run(until=env.now)
    throughput = state["delivered"] / duration
    return throughput, delivery
