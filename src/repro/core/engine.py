"""LogBook engines: the append path, the read path, and consistency (§4.3-4.4).

The LogBook engine is the component Boki adds to Nightcore's per-node
engine process. It:

- owns one shard of each physical log (a local_id counter) and drives the
  append workflow: replicate the record to the shard's storage nodes, then
  wait for the metalog to order it and return the seqnum (Figure 2);
- maintains the log index for the physical logs it indexes, updated by
  subscribing to the metalog, plus an LRU record/aux cache (Figure 4);
- enforces observable consistency: every read carries the reader's metalog
  position, and the engine suspends the read until its index version
  catches up (Figure 5);
- serves reads for remote engines that do not index the target log.

Record *metadata* (book_id, tags) reaches index engines via direct
messages from the appending engine at replication time; an engine stalls
entry application until it holds metadata for every record the entry
orders, fetching from storage nodes if the messages were lost.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.admission.errors import is_overload, retry_after_hint
from repro.core.cache import RecordCache
from repro.core.config import BokiConfig, TermConfig
from repro.obs.recorder import DISABLED
from repro.core.index import LogIndex
from repro.core.metalog import MetalogEntry
from repro.core.ordering import delta_set
from repro.core.types import LogRecord, MetalogPosition, pack_seqnum, seqnum_term
from repro.sim.kernel import Environment, Event, Interrupt
from repro.sim.network import Network, RpcError, RpcTimeout
from repro.sim.node import Node

#: How long an entry may stall on missing metadata before we fetch it.
STALL_FETCH_DELAY = 2e-3
MAINTENANCE_INTERVAL = 1e-3
#: How long an unordered append may wait with no subscription progress
#: before we suspect the *latest* metalog broadcast was lost (a tail drop
#: leaves no buffered entry behind to reveal the gap) and poll the
#: sequencers directly. Well above normal ordering latency (~1-2 ms).
TAIL_FETCH_DELAY = 10e-3

#: Retry policies for the resilience-enabled paths (repro.resil). All of
#: these operations are idempotent (reads) or deduplicated by position
#: (trims), so timeouts are safe to retry.
_STORAGE_READ_POLICY = None  # built lazily to avoid import cost when unused
_REMOTE_READ_POLICY = None
_TRIM_POLICY = None


def _resil_policies():
    global _STORAGE_READ_POLICY, _REMOTE_READ_POLICY, _TRIM_POLICY
    if _STORAGE_READ_POLICY is None:
        from repro.resil import RetryPolicy

        _STORAGE_READ_POLICY = RetryPolicy(
            max_attempts=6, base_delay=1e-3, max_delay=0.05,
            attempt_timeout=0.05, retry_timeouts=True,
        )
        _REMOTE_READ_POLICY = RetryPolicy(
            max_attempts=4, base_delay=2e-3, max_delay=0.1,
            attempt_timeout=10.0, retry_timeouts=True,
        )
        _TRIM_POLICY = RetryPolicy(
            max_attempts=5, base_delay=5e-3, max_delay=0.2,
            attempt_timeout=1.0, retry_timeouts=True,
        )
    return _STORAGE_READ_POLICY, _REMOTE_READ_POLICY, _TRIM_POLICY


class AppendAborted(Exception):
    """An in-flight append's term was sealed before ordering; retried
    transparently by the engine under the new term."""


class _TermLogState:
    """Per-(term, log) append/subscription state."""

    def __init__(self) -> None:
        self.next_local_id = 0
        self.applied = 0
        self.prev_progress: Dict[str, int] = {}
        self.buffer: Dict[int, MetalogEntry] = {}
        #: (shard, local_id) -> (book_id, tags) metadata for indexing
        self.meta: Dict[Tuple[str, int], Tuple[int, Tuple[int, ...]]] = {}
        #: (shard, local_id) -> Event resolved with seqnum (our appends)
        self.pending: Dict[Tuple[str, int], Event] = {}
        self.final_len: Optional[int] = None
        self.sealed = False
        self.stalled_since: Optional[float] = None
        #: Virtual time the subscription last advanced (tail-drop watchdog).
        self.last_advance = 0.0


class LogBookEngine:
    """The LogBook engine living on one function node."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        node: Node,
        config: BokiConfig,
    ):
        self.env = env
        self.net = net
        self.node = node
        self.config = config
        self.term_config: Optional[TermConfig] = None
        #: All terms ever installed, for routing reads of old-term seqnums.
        self.term_history: Dict[int, TermConfig] = {}
        self.cache = RecordCache(config.cache_bytes)
        #: log_id -> index (only logs this engine indexes)
        self.indices: Dict[int, LogIndex] = {}
        #: log_id -> applied metalog position (index version)
        self.index_version: Dict[int, MetalogPosition] = {}
        self._states: Dict[Tuple[int, int], _TermLogState] = {}
        #: log_id -> [(required position, event)] suspended reads
        self._read_waiters: Dict[int, List[Tuple[MetalogPosition, Event]]] = {}
        self._storage_rr = 0
        self._remote_rr = 0
        self.appends_started = 0
        self.reads_served = 0
        self.remote_reads = 0
        self.obs = DISABLED
        #: Resilience hub (repro.resil), set by enable_resilience; None
        #: keeps the original single-pass/fail-fast behavior on every path.
        self.resil = None
        #: Online monitor hub (repro.monitor), set by enable_monitoring.
        self.monitor = None
        #: Node admission guard (repro.admission), set by
        #: enable_admission; None admits every append.
        self.admission = None
        #: Appends currently in flight on this engine — maintained always
        #: (plain arithmetic) so the queue-depth gauge exists with or
        #: without admission control.
        self.appends_inflight = 0
        self.appends_inflight_peak = 0
        node.handle("metalog.entry", self._h_metalog_entry)
        node.handle("index.meta", self._h_index_meta)
        node.handle("engine.read", self._h_engine_read)
        node.handle("engine.read_range", self._h_engine_read_range)
        node.handle("engine.dump_index", self._h_engine_dump_index)
        node.handle("engine.append", self._h_engine_append)
        node.handle("log.sealed", self._h_log_sealed)
        node.spawn(self._maintenance(), name=f"{node.name}:engine-maint")

    @property
    def name(self) -> str:
        return self.node.name

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(self, term_config: TermConfig) -> None:
        previous = self.term_config
        self.term_config = term_config
        self.term_history[term_config.term_id] = term_config
        for log_id, asg in term_config.logs.items():
            if self.name in asg.index_engines and log_id not in self.indices:
                self.indices[log_id] = LogIndex(log_id)
                self.index_version.setdefault(log_id, MetalogPosition.zero())
                if term_config.term_id > 1:
                    # A newly promoted index engine: earlier terms' records
                    # of this log exist but we never indexed them. Bootstrap
                    # the historical index from a peer that has it.
                    peers = []
                    if previous is not None and log_id in previous.logs:
                        peers = [
                            e for e in previous.assignment(log_id).index_engines
                            if e != self.name
                        ]
                    peers += [e for e in asg.index_engines if e != self.name]
                    self.node.spawn(
                        self._bootstrap_index(log_id, list(dict.fromkeys(peers))),
                        name=f"{self.name}:index-bootstrap:{log_id}",
                    )

    def _bootstrap_index(self, log_id: int, peers: List[str]) -> Generator:
        """Copy a peer's index rows for ``log_id`` (historical terms only —
        the current term's entries arrive via our own subscription)."""
        for peer in peers:
            try:
                dump = yield self.net.rpc(
                    self.node, peer, "engine.dump_index", {"log_id": log_id},
                    timeout=1.0,
                )
            except (RpcError, RpcTimeout):
                continue
            index = self.indices.get(log_id)
            if index is None:
                return
            current_term = self.term_config.term_id if self.term_config else 0
            for book_id, tags, seqnum, shard in dump["records"]:
                if seqnum_term(seqnum) < current_term:
                    index.add_record(book_id, tuple(tags), seqnum, shard)
            return

    def _h_engine_dump_index(self, payload: dict) -> Generator:
        """Serve an index bootstrap: all record metadata for a log.

        The locator stores seqnum -> shard; the owning book is recovered
        from the rows (bootstrap is a rare, term-change-only path)."""
        yield self.node.cpu.use(self.config.engine_service)
        index = self.indices.get(payload["log_id"])
        if index is None:
            raise KeyError(f"{self.name} does not index log {payload['log_id']}")
        seq_to_book = {}
        for (book_id, _tag), row in index._rows.items():
            for seqnum in row:
                seq_to_book.setdefault(seqnum, book_id)
        records = [
            (seq_to_book[seqnum], index._tags.get(seqnum, ()), seqnum, shard)
            for seqnum, shard in index._locator.items()
            if seqnum in seq_to_book
        ]
        return {"records": records}

    def indexes(self, log_id: int) -> bool:
        return log_id in self.indices

    def _state(self, term: int, log_id: int) -> _TermLogState:
        key = (term, log_id)
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _TermLogState()
            state.last_advance = self.env.now
        return state

    # ------------------------------------------------------------------
    # Append path (Figure 2, red arrows)
    # ------------------------------------------------------------------
    def append(
        self, book_id: int, tags: Tuple[int, ...], data: Any
    ) -> Generator:
        """Append a record; returns ``(seqnum, position)`` where ``position``
        is the metalog position whose entry ordered the record (the caller's
        new read-your-writes floor). Retries transparently across terms."""
        if not self.obs.enabled:
            return (yield from self._append(book_id, tags, data))
        with self.obs.tracer.span(
            "engine.append", node=self.name, kind="engine", attrs={"book_id": book_id}
        ) as span:
            seqnum, position = yield from self._append(book_id, tags, data)
            span.set_attr("seqnum", seqnum)
            return seqnum, position

    def _append(self, book_id: int, tags: Tuple[int, ...], data: Any) -> Generator:
        """Admission-guarded append: the engine's bounded window + CoDel
        shed new appends under saturation (raising
        :class:`~repro.admission.Overloaded` to the caller) before they
        join the queue; admitted appends run :meth:`_append_admitted`."""
        self.appends_started += 1
        if self.admission is not None:
            self.admission.try_enter()
        self.appends_inflight += 1
        if self.appends_inflight > self.appends_inflight_peak:
            self.appends_inflight_peak = self.appends_inflight
        if self.obs.enabled:
            self.obs.metrics.gauge(f"queue.engine.{self.name}.depth").record(
                self.env.now, self.appends_inflight
            )
        try:
            return (yield from self._append_admitted(book_id, tags, data))
        finally:
            self.appends_inflight -= 1
            if self.admission is not None:
                self.admission.exit()

    def _append_admitted(self, book_id: int, tags: Tuple[int, ...], data: Any) -> Generator:
        while True:
            term_config = self.term_config
            assert term_config is not None, "engine not configured"
            term = term_config.term_id
            log_id = term_config.log_for_book(book_id)
            asg = term_config.assignment(log_id)
            state = self._state(term, log_id)
            if state.sealed:
                # Raced a reconfiguration: wait for the new term, retry.
                yield from self._await_term_change(term)
                continue
            shard = self.name
            if shard not in asg.shard_storage:
                raise RuntimeError(f"engine {self.name} owns no shard of log {log_id}")
            local_id = state.next_local_id
            state.next_local_id += 1
            payload = {
                "term": term,
                "log_id": log_id,
                "shard": shard,
                "local_id": local_id,
                "book_id": book_id,
                "tags": tuple(tags),
                "data": data,
                "seqnum": None,
            }
            done = Event(self.env)
            state.pending[(shard, local_id)] = done
            state.meta[(shard, local_id)] = (book_id, tuple(tags))
            if self.monitor is not None:
                self.monitor.on_append_start(
                    shard, (term, log_id, local_id), self.env.now
                )
            yield self.node.cpu.use(self.config.engine_service)
            ok = yield from self._replicate(asg, shard, payload, term_config)
            if not ok:
                done_ev = state.pending.pop((shard, local_id), None)
                if self.monitor is not None:
                    self.monitor.on_append_abort(shard, (term, log_id, local_id))
                yield from self._await_term_change(term)
                continue
            # Ship metadata to the index engines so they can index the
            # record once the metalog orders it.
            meta_msg = {
                "term": term,
                "log_id": log_id,
                "shard": shard,
                "local_id": local_id,
                "book_id": book_id,
                "tags": tuple(tags),
            }
            for index_engine in asg.index_engines:
                if index_engine != self.name:
                    self.net.send(self.node, index_engine, "index.meta", meta_msg)
            try:
                seqnum, position = yield done
            except AppendAborted:
                continue  # term sealed before ordering: retry in new term
            return seqnum, position

    def _replicate(self, asg, shard: str, payload: dict, term_config: TermConfig) -> Generator:
        """Replicate to every storage node backing our shard; True when all
        acked, False if the term changed under us (caller retries)."""
        if not self.obs.enabled:
            return (yield from self._replicate_impl(asg, shard, payload, term_config))
        with self.obs.tracer.span(
            "engine.replicate", node=self.name, kind="engine", attrs={"shard": shard}
        ) as span:
            ok = yield from self._replicate_impl(asg, shard, payload, term_config)
            span.set_attr("acked", ok)
            return ok

    def _replicate_impl(self, asg, shard: str, payload: dict, term_config: TermConfig) -> Generator:
        backers = asg.shard_storage[shard]
        attempts = 0
        while True:
            calls = [
                self.net.rpc(self.node, name, "storage.replicate", payload, timeout=0.05)
                for name in backers
            ]
            failed = False
            shed_hint = None
            for call in calls:
                try:
                    yield call
                except (RpcError, RpcTimeout) as exc:
                    failed = True
                    # Storage shed the write (bounded window / CoDel):
                    # honor its retry-after hint instead of hammering —
                    # this is the storage -> engine backpressure rung.
                    if is_overload(exc):
                        hint = retry_after_hint(exc)
                        shed_hint = max(shed_hint or 0.0, hint or 0.0)
            if not failed:
                return True
            attempts += 1
            if self.term_config is not term_config:
                return False
            # A storage node is unresponsive; reconfiguration will replace
            # it. Back off and retry (the paper's appends see elevated
            # latency during reconfiguration, Figure 10).
            delay = min(0.001 * attempts, 0.01)
            if shed_hint is not None:
                delay = max(delay, shed_hint)
            yield self.env.timeout(delay)
            if self.term_config is not term_config:
                return False

    def _await_term_change(self, old_term: int) -> Generator:
        while self.term_config is not None and self.term_config.term_id == old_term:
            yield self.env.timeout(0.001)

    # ------------------------------------------------------------------
    # Read path (Figure 4)
    # ------------------------------------------------------------------
    def _book_routes(self, book_id: int) -> List[Tuple[int, int, int, int]]:
        """Every (term, log) placement this book has ever had, in term
        order, with that term's seqnum bounds. A reconfiguration that
        changes the number of physical logs remaps books (§4.5), so a
        book's records can span physical logs across terms."""
        from repro.core.types import MAX_POS

        routes = []
        for term_id in sorted(self.term_history):
            log_id = self.term_history[term_id].log_for_book(book_id)
            routes.append(
                (
                    term_id,
                    log_id,
                    pack_seqnum(term_id, log_id, 0),
                    pack_seqnum(term_id, log_id, MAX_POS),
                )
            )
        return routes

    def read(
        self,
        book_id: int,
        tag: int,
        direction: str,
        bound: int,
        positions: Dict[int, MetalogPosition],
    ) -> Generator:
        """Serve a LogBook read. ``direction`` is "next" or "prev"; ``bound``
        is min_seqnum / max_seqnum respectively; ``positions`` is the
        reader's per-log metalog position map. Returns
        ``(record_dict_or_None, updated_positions)``."""
        routes = self._book_routes(book_id)
        updated: Dict[int, MetalogPosition] = {}
        ordered = routes if direction == "next" else list(reversed(routes))
        for term_id, log_id, lo, hi in ordered:
            if direction == "next":
                if hi < bound:
                    continue
                route_bound, cap = max(bound, lo), hi
            else:
                if lo > bound:
                    continue
                route_bound, cap = min(bound, hi), lo
            position = max(
                positions.get(log_id, MetalogPosition.zero()),
                updated.get(log_id, MetalogPosition.zero()),
            )
            reply, new_position = yield from self._read_one_log(
                log_id, book_id, tag, direction, route_bound, cap, position
            )
            if new_position > updated.get(log_id, MetalogPosition.zero()):
                updated[log_id] = new_position
            if reply is not None:
                return reply, updated
        return None, updated

    def _read_one_log(
        self, log_id: int, book_id: int, tag: int, direction: str, bound: int,
        cap: int, position: MetalogPosition,
    ) -> Generator:
        if self.indexes(log_id):
            return (
                yield from self._read_local(
                    log_id, book_id, tag, direction, bound, cap, position
                )
            )
        return (
            yield from self._read_remote(
                log_id, book_id, tag, direction, bound, cap, position
            )
        )

    def _read_local(
        self, log_id: int, book_id: int, tag: int, direction: str, bound: int,
        cap: int, position: MetalogPosition,
    ) -> Generator:
        if not self.obs.enabled:
            return (
                yield from self._read_local_impl(
                    log_id, book_id, tag, direction, bound, cap, position
                )
            )
        with self.obs.tracer.span(
            "engine.read_local", node=self.name, kind="engine",
            attrs={"book_id": book_id, "log_id": log_id},
        ) as span:
            reply, new_position = yield from self._read_local_impl(
                log_id, book_id, tag, direction, bound, cap, position
            )
            span.set_attr("found", reply is not None)
            return reply, new_position

    def _read_local_impl(
        self, log_id: int, book_id: int, tag: int, direction: str, bound: int,
        cap: int, position: MetalogPosition,
    ) -> Generator:
        yield self.node.cpu.use(self.config.engine_service)
        yield from self._wait_for_version(log_id, position)
        index = self.indices[log_id]
        if direction == "next":
            seqnum = index.read_next(book_id, tag, bound)
            if seqnum is not None and seqnum > cap:
                seqnum = None  # belongs to a later term's route
        else:
            seqnum = index.read_prev(book_id, tag, bound)
            if seqnum is not None and seqnum < cap:
                seqnum = None  # belongs to an earlier term's route
        new_position = max(position, self.index_version[log_id])
        if seqnum is None:
            self.reads_served += 1
            return None, new_position
        record = self.cache.get_record(seqnum)
        if record is not None:
            if self.obs.enabled:
                self.obs.tracer.instant("engine.cache_hit", node=self.name, kind="cache")
            aux = self.cache.get_aux(seqnum)
            self.reads_served += 1
            return self._record_reply(record, aux), new_position
        # Cache miss: fetch from a storage node backing the record's shard.
        if self.obs.enabled:
            self.obs.tracer.instant("engine.cache_miss", node=self.name, kind="cache")
        reply = yield from self._fetch_from_storage(log_id, seqnum, index)
        record = LogRecord(
            seqnum=reply["seqnum"],
            tags=tuple(reply["tags"]),
            data=reply["data"],
            book_id=reply["book_id"],
            shard=reply["shard"],
            local_id=reply["local_id"],
        )
        self.cache.put_record(record)
        aux = self.cache.get_aux(seqnum)
        if aux is None and reply.get("auxdata") is not None:
            aux = reply["auxdata"]  # aux backup from storage (Table 7)
            self.cache.put_aux(seqnum, aux)
        self.reads_served += 1
        return self._record_reply(record, aux), new_position

    @staticmethod
    def _record_reply(record: LogRecord, aux: Any) -> dict:
        return {
            "seqnum": record.seqnum,
            "tags": record.tags,
            "data": record.data,
            "auxdata": aux,
            "book_id": record.book_id,
        }

    def _fetch_from_storage(self, log_id: int, seqnum: int, index: LogIndex) -> Generator:
        shard = index.shard_of(seqnum)
        term = seqnum_term(seqnum)
        term_config = self.term_history.get(term) or self.term_config
        asg = term_config.assignment(log_id)
        backers = asg.shard_storage.get(shard)
        if not backers:
            raise KeyError(f"no storage known for seqnum {seqnum:#x}")
        if self.resil is not None:
            # Fail over across replicas with backoff, re-resolving the
            # backer set each attempt so the read follows a
            # reconfiguration to the current placement. Rotation starts
            # at the engine's own round-robin offset so a fault-free run
            # picks the identical replica with the layer on or off.
            policy, _, _ = _resil_policies()
            start = self._storage_rr
            self._storage_rr += 1

            def backers_now():
                tc = self.term_history.get(term) or self.term_config
                return tc.assignment(log_id).shard_storage.get(shard) or []

            return (
                yield from self.resil.call_with_failover(
                    self.node, backers_now, "storage.read", {"seqnum": seqnum},
                    policy=policy, start=start,
                )
            )
        last_error: Optional[BaseException] = None
        for attempt in range(len(backers)):
            name = backers[(self._storage_rr + attempt) % len(backers)]
            self._storage_rr += 1
            try:
                return (
                    yield self.net.rpc(
                        self.node, name, "storage.read", {"seqnum": seqnum}, timeout=0.05
                    )
                )
            except (RpcError, RpcTimeout) as exc:
                last_error = exc
        raise last_error  # all replicas failed

    def _wait_for_version(self, log_id: int, position: MetalogPosition) -> Generator:
        """Observable consistency (Figure 5): suspend until our index has
        applied at least the reader's metalog position."""
        current = self.index_version.get(log_id, MetalogPosition.zero())
        if current >= position:
            return
        event = Event(self.env)
        self._read_waiters.setdefault(log_id, []).append((position, event))
        yield event

    def _wake_readers(self, log_id: int) -> None:
        waiters = self._read_waiters.get(log_id)
        if not waiters:
            return
        current = self.index_version[log_id]
        remaining = []
        for position, event in waiters:
            if current >= position:
                if not event.triggered:
                    event.succeed()
            else:
                remaining.append((position, event))
        self._read_waiters[log_id] = remaining

    # ------------------------------------------------------------------
    # Remote reads
    # ------------------------------------------------------------------
    def _index_engines_for(self, log_id: int) -> List[str]:
        """Index engines for a log, looking back through term history for
        logs that only existed in earlier terms."""
        for term_id in sorted(self.term_history, reverse=True):
            term_config = self.term_history[term_id]
            if log_id in term_config.logs:
                engines = term_config.assignment(log_id).index_engines
                if engines:
                    return engines
        raise RuntimeError(f"log {log_id} has no index engines in any term")

    def _read_remote(
        self, log_id: int, book_id: int, tag: int, direction: str, bound: int,
        cap: int, position: MetalogPosition,
    ) -> Generator:
        engines = self._index_engines_for(log_id)
        name = engines[self._remote_rr % len(engines)]
        start = self._remote_rr
        self._remote_rr += 1
        payload = {
            "log_id": log_id,
            "book_id": book_id,
            "tag": tag,
            "direction": direction,
            "bound": bound,
            "cap": cap,
            "position": position,
        }
        if self.resil is not None:
            # Fail over across the log's index engines (re-resolved per
            # attempt, so a post-reconfiguration promotion is picked up).
            _, policy, _ = _resil_policies()
            reply = yield from self.resil.call_with_failover(
                self.node, lambda: self._index_engines_for(log_id),
                "engine.read", payload, policy=policy, start=start,
            )
            return reply["record"], reply["position"]
        if not self.obs.enabled:
            reply = yield self.net.rpc(self.node, name, "engine.read", payload, timeout=10.0)
            return reply["record"], reply["position"]
        with self.obs.tracer.span(
            "engine.read_remote", node=self.name, kind="engine",
            attrs={"book_id": book_id, "log_id": log_id, "remote": name},
        ):
            reply = yield self.net.rpc(self.node, name, "engine.read", payload, timeout=10.0)
            return reply["record"], reply["position"]

    def read_range(
        self,
        book_id: int,
        tag: int,
        min_seqnum: int,
        max_seqnum: int,
        positions: Dict[int, MetalogPosition],
        limit: int = 1024,
    ) -> Generator:
        """Serve a batched range read: all records with ``tag`` in
        [min_seqnum, max_seqnum], across every (term, log) placement of the
        book, amortizing per-call overheads (one index query per route;
        cache misses fetched from storage concurrently). Returns
        ``(record_dicts, updated_positions)``."""
        updated: Dict[int, MetalogPosition] = {}
        out: List[dict] = []
        for term_id, log_id, lo, hi in self._book_routes(book_id):
            if hi < min_seqnum or lo > max_seqnum or len(out) >= limit:
                continue
            qmin, qmax = max(min_seqnum, lo), min(max_seqnum, hi)
            position = max(
                positions.get(log_id, MetalogPosition.zero()),
                updated.get(log_id, MetalogPosition.zero()),
            )
            if self.indexes(log_id):
                records, new_position = yield from self._range_local(
                    log_id, book_id, tag, qmin, qmax, position, limit - len(out)
                )
            else:
                records, new_position = yield from self._read_range_remote(
                    log_id, book_id, tag, qmin, qmax, position, limit - len(out)
                )
            out.extend(records)
            if new_position > updated.get(log_id, MetalogPosition.zero()):
                updated[log_id] = new_position
        return out, updated

    def _range_local(
        self,
        log_id: int,
        book_id: int,
        tag: int,
        min_seqnum: int,
        max_seqnum: int,
        position: MetalogPosition,
        limit: int = 1024,
    ) -> Generator:
        yield self.node.cpu.use(self.config.engine_service)
        yield from self._wait_for_version(log_id, position)
        index = self.indices[log_id]
        seqnums = index.range(book_id, tag, min_seqnum, max_seqnum)[:limit]
        new_position = max(position, self.index_version[log_id])
        replies: List[Optional[dict]] = []
        fetches = []
        for seqnum in seqnums:
            record = self.cache.get_record(seqnum)
            if record is not None:
                replies.append(self._record_reply(record, self.cache.get_aux(seqnum)))
            else:
                replies.append(None)
                fetches.append((len(replies) - 1, seqnum))
        if fetches:
            procs = [
                (slot, seqnum, self.env.process(
                    self._fetch_from_storage(log_id, seqnum, index),
                    name="range-fetch",
                ))
                for slot, seqnum in fetches
            ]
            for slot, seqnum, proc in procs:
                reply = yield proc
                record = LogRecord(
                    seqnum=reply["seqnum"],
                    tags=tuple(reply["tags"]),
                    data=reply["data"],
                    book_id=reply["book_id"],
                    shard=reply["shard"],
                    local_id=reply["local_id"],
                )
                self.cache.put_record(record)
                aux = self.cache.get_aux(seqnum)
                if aux is None and reply.get("auxdata") is not None:
                    aux = reply["auxdata"]
                    self.cache.put_aux(seqnum, aux)
                replies[slot] = self._record_reply(record, aux)
        self.reads_served += len(replies)
        return replies, new_position

    def _read_range_remote(
        self, log_id, book_id, tag, min_seqnum, max_seqnum, position, limit
    ) -> Generator:
        engines = self._index_engines_for(log_id)
        name = engines[self._remote_rr % len(engines)]
        start = self._remote_rr
        self._remote_rr += 1
        payload = {
            "log_id": log_id, "book_id": book_id, "tag": tag,
            "min_seqnum": min_seqnum, "max_seqnum": max_seqnum,
            "position": position, "limit": limit,
        }
        if self.resil is not None:
            _, policy, _ = _resil_policies()
            reply = yield from self.resil.call_with_failover(
                self.node, lambda: self._index_engines_for(log_id),
                "engine.read_range", payload, policy=policy, start=start,
            )
            return reply["records"], reply["position"]
        reply = yield self.net.rpc(
            self.node, name, "engine.read_range", payload, timeout=10.0,
        )
        return reply["records"], reply["position"]

    def _h_engine_read_range(self, payload: dict) -> Generator:
        self.remote_reads += 1
        records, position = yield from self._range_local(
            payload["log_id"], payload["book_id"], payload["tag"],
            payload["min_seqnum"], payload["max_seqnum"], payload["position"],
            payload.get("limit", 1024),
        )
        return {"records": records, "position": position}

    def _h_engine_append(self, payload: dict) -> Generator:
        """Append forwarded from another node (used by placement variants
        such as fixed sharding, where a LogBook is pinned to one shard)."""
        seqnum, position = yield from self.append(
            payload["book_id"], tuple(payload["tags"]), payload["data"]
        )
        return {"seqnum": seqnum, "position": position}

    def _h_engine_read(self, payload: dict) -> Generator:
        self.remote_reads += 1
        record, position = yield from self._read_local(
            payload["log_id"],
            payload["book_id"],
            payload["tag"],
            payload["direction"],
            payload["bound"],
            payload["cap"],
            payload["position"],
        )
        return {"record": record, "position": position}

    # ------------------------------------------------------------------
    # Auxiliary data (§4.4) and trims
    # ------------------------------------------------------------------
    def set_auxdata(self, book_id: int, seqnum: int, auxdata: Any) -> Generator:
        yield self.node.cpu.use(self.config.engine_service)
        self.cache.put_aux(seqnum, auxdata)
        if self.config.aux_backup:
            term_config = self.term_history.get(seqnum_term(seqnum)) or self.term_config
            log_id = term_config.log_for_book(book_id)
            index = self.indices.get(log_id)
            shard = index.shard_of(seqnum) if index else None
            asg = term_config.assignment(log_id)
            backers = asg.shard_storage.get(shard, []) if shard else []
            for name in backers:
                self.net.send(self.node, name, "storage.put_aux", {"seqnum": seqnum, "auxdata": auxdata})

    def trim(self, book_id: int, tag: int, until_seqnum: int) -> Generator:
        """Append a trim command to the metalog (§4.4).

        With resilience enabled the call retries through a
        reconfiguration: each attempt re-reads the *current* term's
        primary, so a trim issued against a dead primary converges on
        the new term's sequencer instead of failing on the corpse.
        Trims are idempotent (same ``until_seqnum``), so ambiguous
        timeouts are safe to retry.
        """
        if self.resil is not None:
            _, _, policy = _resil_policies()

            def attempt():
                term_config = self.term_config
                log_id = term_config.log_for_book(book_id)
                asg = term_config.assignment(log_id)
                yield self.net.rpc(
                    self.node,
                    asg.primary,
                    "seq.append_trim",
                    {
                        "term": term_config.term_id,
                        "log_id": log_id,
                        "book_id": book_id,
                        "tag": tag,
                        "until_seqnum": until_seqnum,
                    },
                    timeout=policy.attempt_timeout,
                )

            yield from self.resil.call(attempt, policy=policy)
            return
        term_config = self.term_config
        log_id = term_config.log_for_book(book_id)
        asg = term_config.assignment(log_id)
        yield self.net.rpc(
            self.node,
            asg.primary,
            "seq.append_trim",
            {
                "term": term_config.term_id,
                "log_id": log_id,
                "book_id": book_id,
                "tag": tag,
                "until_seqnum": until_seqnum,
            },
            timeout=1.0,
        )

    # ------------------------------------------------------------------
    # Metalog subscription: ordering resolution + index updates
    # ------------------------------------------------------------------
    def _h_metalog_entry(self, payload: dict) -> None:
        term, log_id = payload["term"], payload["log_id"]
        state = self._state(term, log_id)
        entry: MetalogEntry = payload["entry"]
        state.buffer.setdefault(entry.index, entry)
        self._drain(term, log_id, state)

    def _h_index_meta(self, payload: dict) -> None:
        state = self._state(payload["term"], payload["log_id"])
        state.meta[(payload["shard"], payload["local_id"])] = (
            payload["book_id"],
            tuple(payload["tags"]),
        )
        self._drain(payload["term"], payload["log_id"], state)

    def _drain(self, term: int, log_id: int, state: _TermLogState) -> None:
        advanced = False
        while state.applied in state.buffer:
            entry = state.buffer[state.applied]
            delta = delta_set(state.prev_progress, entry)
            if self.indexes(log_id):
                missing = [
                    (shard, local_id)
                    for shard, local_id, _ in delta
                    if (shard, local_id) not in state.meta
                ]
                if missing:
                    if state.stalled_since is None:
                        state.stalled_since = self.env.now
                    break  # stall until metadata arrives (or is fetched)
            state.stalled_since = None
            del state.buffer[state.applied]
            self._apply_entry(term, log_id, state, entry, delta)
            state.applied += 1
            advanced = True
        if state.buffer and state.applied not in state.buffer:
            # Later entries buffered but the next one missing: a
            # metalog.entry broadcast was lost. Mark stalled so
            # maintenance fetches the gap from the sequencers.
            if state.stalled_since is None:
                state.stalled_since = self.env.now
        if advanced:
            state.last_advance = self.env.now
            current = self.index_version.get(log_id, MetalogPosition.zero())
            candidate = MetalogPosition(term, state.applied)
            if candidate > current:
                self.index_version[log_id] = candidate
            self._wake_readers(log_id)

    def _apply_entry(
        self, term: int, log_id: int, state: _TermLogState, entry: MetalogEntry, delta
    ) -> None:
        index = self.indices.get(log_id)
        for shard, local_id, pos in delta:
            seqnum = pack_seqnum(term, log_id, pos)
            if index is not None:
                meta = state.meta.get((shard, local_id))
                if meta is not None:
                    book_id, tags = meta
                    index.add_record(book_id, tags, seqnum, shard)
            # Resolve our own pending appends.
            pending = state.pending.pop((shard, local_id), None)
            if pending is not None and not pending.triggered:
                pending.succeed((seqnum, MetalogPosition(term, entry.index + 1)))
                if self.monitor is not None:
                    self.monitor.on_append_done(
                        shard, (term, log_id, local_id), self.env.now
                    )
        state.prev_progress = entry.progress_dict()
        if index is not None:
            for trim in entry.trims:
                dropped = index.apply_trim(trim)
                for seqnum in dropped:
                    self.cache.drop(seqnum)

    # ------------------------------------------------------------------
    # Sealing: finish the old term, abort unordered appends
    # ------------------------------------------------------------------
    def _h_log_sealed(self, payload: dict) -> Generator:
        term, log_id, final_len = payload["term"], payload["log_id"], payload["final_len"]
        state = self._state(term, log_id)
        state.final_len = final_len
        state.sealed = True
        if state.applied < final_len:
            entries = yield from self._fetch_entries(
                term, log_id, state.applied, payload.get("sequencers", [])
            )
            for entry in entries:
                state.buffer.setdefault(entry.index, entry)
            yield from self._drain_with_meta_fetch(term, log_id, state)
        # Anything still unordered in this term never will be: abort so the
        # append path retries in the new term. (If we failed to fetch the
        # final entries this may retry a record the sealed term did order —
        # an at-least-once corner the support libraries' first-record-wins
        # protocols tolerate.)
        for key, event in list(state.pending.items()):
            if not event.triggered:
                event.fail(AppendAborted(f"term {term} sealed"))
            state.pending.pop(key, None)
            if self.monitor is not None:
                self.monitor.on_append_abort(key[0], (term, log_id, key[1]))
        # The sealed term contributes a final index version so readers
        # waiting on old-term positions are released.
        self._wake_readers(log_id)

    def _fetch_entries(self, term: int, log_id: int, from_index: int, sequencers: List[str]) -> Generator:
        for name in sequencers:
            try:
                entries = yield self.net.rpc(
                    self.node, name, "seq.fetch_entries",
                    {"term": term, "log_id": log_id, "from_index": from_index},
                    timeout=0.05,
                )
                return entries
            except (RpcError, RpcTimeout):
                continue
        return []

    def _recover(
        self, term: int, log_id: int, state: _TermLogState, force_fetch: bool = False
    ) -> Generator:
        """Un-stall a subscription: fill metalog-entry gaps from the term's
        sequencers (lost ``metalog.entry`` broadcasts), then fetch any
        missing record metadata from storage. ``force_fetch`` polls the
        sequencers even with an empty buffer — the tail-drop case, where
        the lost broadcast was the newest entry and nothing after it has
        arrived to reveal the gap."""
        if force_fetch or (state.buffer and state.applied not in state.buffer):
            term_config = self.term_history.get(term) or self.term_config
            sequencers: List[str] = []
            if term_config is not None and term_config.term_id == term and log_id in term_config.logs:
                asg = term_config.assignment(log_id)
                sequencers = [asg.primary] + [s for s in asg.sequencers if s != asg.primary]
            entries = yield from self._fetch_entries(term, log_id, state.applied, sequencers)
            for entry in entries:
                state.buffer.setdefault(entry.index, entry)
        yield from self._drain_with_meta_fetch(term, log_id, state)

    def _drain_with_meta_fetch(self, term: int, log_id: int, state: _TermLogState) -> Generator:
        """Drain, fetching any missing record metadata from storage."""
        self._drain(term, log_id, state)
        guard = 0
        while state.applied in state.buffer and guard < 100:
            guard += 1
            entry = state.buffer[state.applied]
            delta = delta_set(state.prev_progress, entry)
            missing_shards = {
                shard for shard, local_id, _ in delta
                if (shard, local_id) not in state.meta
            }
            if not missing_shards:
                break
            yield from self._fetch_meta(term, log_id, state, missing_shards)
            self._drain(term, log_id, state)

    def _fetch_meta(self, term: int, log_id: int, state: _TermLogState, shards) -> Generator:
        term_config = self.term_history.get(term) or self.term_config
        asg = term_config.assignment(log_id)
        for shard in shards:
            for name in asg.shard_storage.get(shard, []):
                try:
                    metas = yield self.net.rpc(
                        self.node, name, "storage.fetch_meta",
                        {"term": term, "log_id": log_id, "shard": shard, "from_local_id": 0},
                        timeout=0.05,
                    )
                except (RpcError, RpcTimeout):
                    continue
                for local_id, meta in metas.items():
                    state.meta.setdefault((shard, local_id), (meta[0], tuple(meta[1])))
                break

    # ------------------------------------------------------------------
    # Maintenance: un-stall subscriptions whose metadata never arrived
    # ------------------------------------------------------------------
    def _maintenance(self) -> Generator:
        try:
            while True:
                yield self.env.timeout(MAINTENANCE_INTERVAL)
                for (term, log_id), state in list(self._states.items()):
                    stalled = (
                        state.stalled_since is not None
                        and self.env.now - state.stalled_since > STALL_FETCH_DELAY
                    )
                    # Tail drop: appends wait for ordering, the subscription
                    # has not advanced, and there is no buffered entry to
                    # reveal a gap. Poll the sequencers for the lost tail.
                    tail_lost = (
                        bool(state.pending)
                        and not state.sealed
                        and self.env.now - state.last_advance > TAIL_FETCH_DELAY
                    )
                    if stalled or tail_lost:
                        state.stalled_since = self.env.now
                        state.last_advance = self.env.now  # back off the watchdog
                        self.node.spawn(
                            self._recover(term, log_id, state, force_fetch=tail_lost),
                            name=f"{self.name}:meta-fetch",
                        )
        except Interrupt:
            return
