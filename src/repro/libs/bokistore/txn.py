"""BokiStore transactions (§5.2, Figure 8).

Following Tango's protocol: a read-write transaction appends a ``txn_start``
record, replays the log only up to that position for its reads (snapshot
isolation), buffers writes, and appends a speculative ``txn_commit`` record
carrying its write set. The commit outcome is decided by log replay: the
transaction commits iff no conflicting committed write lies in its conflict
window. Read-only transactions skip the records entirely: they cache the
log tail at start and read against that snapshot.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional

from repro.libs.bokistore.jsonpath import apply_ops, get_path
from repro.libs.bokistore.store import BokiStore, ObjectView, WRITE_STREAM_TAG, object_tag

_txn_ids = itertools.count(1)


class TxnConflictError(Exception):
    """Raised by commit() when the transaction aborted due to conflict
    (only when commit is called with ``raise_on_conflict=True``)."""


class TxnObject:
    """An object handle inside a transaction: snapshot reads, buffered
    writes (the Figure 6c API)."""

    def __init__(self, txn: "Transaction", name: str, snapshot: ObjectView):
        self.txn = txn
        self.name = name
        self._snapshot = snapshot
        self._local: Optional[dict] = snapshot.as_dict()

    @property
    def exists(self) -> bool:
        return self._local is not None

    def get(self, path: str, default: Any = None) -> Any:
        if self._local is None:
            return default
        return get_path(self._local, path, default)

    def _buffer(self, op: dict) -> None:
        if self.txn.finished:
            raise RuntimeError("transaction already finished")
        if self.txn.readonly:
            raise RuntimeError("read-only transaction cannot write")
        self.txn._writes.setdefault(self.name, []).append(op)
        self._local = apply_ops(self._local, [op])

    def set(self, path: str, value: Any) -> None:
        self._buffer({"op": "set", "path": path, "value": value})

    def inc(self, path: str, amount: Any = 1) -> None:
        self._buffer({"op": "inc", "path": path, "value": amount})

    def push_array(self, path: str, value: Any) -> None:
        self._buffer({"op": "push", "path": path, "value": value})

    def make_array(self, path: str) -> None:
        self._buffer({"op": "make_array", "path": path})

    def delete_field(self, path: str) -> None:
        self._buffer({"op": "delete", "path": path})


class Transaction:
    """One BokiStore transaction."""

    def __init__(self, store: BokiStore, readonly: bool = False):
        self.store = store
        self.readonly = readonly
        self.txn_id = next(_txn_ids)
        self.start_seqnum: Optional[int] = None
        self._writes: Dict[str, List[dict]] = {}
        self._objects: Dict[str, TxnObject] = {}
        self.finished = False
        self.committed: Optional[bool] = None

    # ------------------------------------------------------------------
    def begin(self) -> Generator:
        if self.readonly:
            # No records needed: cache the tail as the snapshot (§5.2).
            self.start_seqnum = yield from self.store.tail_seqnum()
        else:
            self.start_seqnum = yield from self.store.book.append(
                {"kind": "txn_start", "txn_id": self.txn_id},
                tags=[WRITE_STREAM_TAG],
            )
        return self

    def get_object(self, name: str) -> Generator:
        if self._snapshot_missing():
            raise RuntimeError("transaction not begun")
        cached = self._objects.get(name)
        if cached is not None:
            return cached
        view = yield from self.store.get_object(name, at=self.start_seqnum)
        obj = TxnObject(self, name, view)
        self._objects[name] = obj
        return obj

    def _snapshot_missing(self) -> bool:
        return self.start_seqnum is None

    # ------------------------------------------------------------------
    def commit(self, raise_on_conflict: bool = False) -> Generator:
        """Returns True if the transaction committed."""
        if self.finished:
            raise RuntimeError("transaction already finished")
        self.finished = True
        if self.readonly or not self._writes:
            self.committed = True
            return True
        seqnum = yield from self.store.book.append(
            {
                "kind": "txn_commit",
                "txn_id": self.txn_id,
                "start_seqnum": self.start_seqnum,
                "writes": self._writes,
            },
            tags=[object_tag(n) for n in self._writes] + [WRITE_STREAM_TAG],
        )
        record = yield from self.store.book.read_next(
            tag=WRITE_STREAM_TAG, min_seqnum=seqnum
        )
        self.committed = yield from self.store.resolve_outcome(record)
        if self.committed:
            # Cache views of modified objects on the commit record (§5.4:
            # "if the commit succeeds, the auxiliary data also caches a
            # view of modified objects").
            views = {}
            for name, obj in self._objects.items():
                if name in self._writes:
                    views[name] = obj._local
            current_aux = yield from self.store.aux_get(record)
            merged = self.store._merged_aux(record, current_aux, {"view": views})
            yield from self.store.aux_put(record, merged)
        if not self.committed and raise_on_conflict:
            raise TxnConflictError(f"txn {self.txn_id} conflicted")
        return self.committed

    def abort(self) -> Generator:
        """Abandon: the txn_start record is inert without a commit."""
        if False:
            yield
        self.finished = True
        self.committed = False
