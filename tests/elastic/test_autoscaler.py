"""End-to-end autoscaler behaviour on a small cluster: scale-out under
load, scale-in when idle, routing + fencing of decommissioned nodes,
node-seconds accounting, and same-seed determinism."""

import pytest

from repro.core.cluster import BokiCluster
from repro.elastic import HysteresisPolicy, PolicyConfig

pytestmark = pytest.mark.elastic


def _elastic_cluster(seed=1, resilience=True):
    cluster = BokiCluster(
        num_function_nodes=2, num_spare_function_nodes=2,
        num_storage_nodes=3, num_spare_storage_nodes=1,
        workers_per_node=4, seed=seed,
    )
    if resilience:
        cluster.enable_resilience()
    auto = cluster.enable_elasticity(
        interval=0.05,
        engine_policy=HysteresisPolicy(PolicyConfig(
            min_nodes=1, max_nodes=4, breach_up=2, breach_down=4,
            cooldown_down=0.5,
        )),
    )
    cluster.boot()
    env = cluster.env

    def handler(ctx, arg):
        yield env.timeout(0.01)
        return arg

    cluster.register_function("busy", handler)
    return cluster, auto


def _drive_load(cluster, clients=12, requests=60):
    env = cluster.env

    def client(n):
        for k in range(n):
            yield from cluster.invoke("busy", k)

    procs = [env.process(client(requests)) for _ in range(clients)]
    for proc in procs:
        env.run_until(proc, limit=120)


def test_spares_start_outside_the_fleet():
    cluster, auto = _elastic_cluster()
    assert auto.active_engines == ["func-0", "func-1"]
    assert auto.active_storage == ["storage-0", "storage-1", "storage-2"]
    term = cluster.controller.current_term
    for asg in term.logs.values():
        assert set(asg.shards) == {"func-0", "func-1"}
        assert "storage-3" not in asg.storage_nodes()


def test_scale_out_under_load_then_scale_in_when_idle():
    cluster, auto = _elastic_cluster()
    _drive_load(cluster)
    out = auto.scale_events("scale-out")
    assert out, "sustained overload must trigger a scale-out"
    assert len(auto.active_engines) > 2
    assert cluster.controller.current_term.term_id > 1
    # Gateway routing follows the fleet.
    assert cluster.gateway.active_nodes == frozenset(auto.active_engines)

    cluster.env.run(until=cluster.env.now + 3.0)
    assert auto.scale_events("scale-in"), "idle fleet must shrink"
    assert len(auto.active_engines) < 4


def test_scale_in_fences_and_scale_out_unfences():
    cluster, auto = _elastic_cluster()
    _drive_load(cluster)
    cluster.env.run(until=cluster.env.now + 3.0)
    removed = {
        name for event in auto.scale_events("scale-in")
        for name in event["removed"]
    }
    assert removed
    assert removed <= auto._fenced, "decommissioned nodes must be fenced"
    for name in removed:
        assert not cluster.net.reachable(
            cluster.gateway.node.name, name
        ), f"{name} should be isolated"
    # A second surge re-admits (and unfences) the spares.
    _drive_load(cluster)
    for name in auto.active_engines:
        assert name not in auto._fenced
        assert cluster.net.reachable(cluster.gateway.node.name, name)


def test_no_fencing_without_resilience():
    cluster, auto = _elastic_cluster(resilience=False)
    _drive_load(cluster)
    cluster.env.run(until=cluster.env.now + 3.0)
    assert auto.scale_events("scale-in")
    assert not auto._fenced, "fencing requires read failover (repro.resil)"


def test_node_seconds_accounting_tracks_fleet_changes():
    cluster, auto = _elastic_cluster()
    _drive_load(cluster)
    cluster.env.run(until=cluster.env.now + 3.0)
    now = cluster.env.now
    static = now * (len(auto.engine_pool) + len(auto.storage_pool))
    assert 0 < auto.node_seconds(now) < static, (
        "autoscaled node-seconds must undercut an always-max fleet"
    )


def test_autoscaler_timeline_is_deterministic_per_seed():
    def run(seed):
        cluster, auto = _elastic_cluster(seed=seed)
        _drive_load(cluster)
        cluster.env.run(until=cluster.env.now + 3.0)
        return auto.events, cluster.env.now

    events_a, now_a = run(7)
    events_b, now_b = run(7)
    assert events_a == events_b
    assert now_a == now_b
    events_c, _ = run(8)
    assert events_c, "different seed still scales"


def test_signals_are_recorded_as_windowed_gauges():
    cluster, auto = _elastic_cluster()
    _drive_load(cluster)
    stats = auto.registry.gauge_window("elastic.engine.util", window=1.0)
    assert stats["count"] > 0
    assert stats["max"] > 0.75, "overload must be visible in the signal"
    fleet = auto.registry.gauge_window("elastic.fleet.engines", window=1.0)
    assert fleet["last"] == len(auto.active_engines)


def test_stop_halts_the_loop():
    cluster, auto = _elastic_cluster()
    auto.stop()
    before = len(auto.events)
    _drive_load(cluster, clients=12, requests=30)
    assert len(auto.events) == before
