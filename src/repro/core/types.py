"""Core types: sequence numbers, log records, metalog positions.

Seqnum structure (§4.2): every log record has a unique 64-bit seqnum laid
out, from high to low bits, as ``(term_id, log_id, pos)``. Integer order of
seqnums therefore matches the chronological order of terms and the total
order within each physical log. Seqnums within a LogBook are monotonically
increasing but *not* consecutive, because a physical log interleaves many
LogBooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

TERM_BITS = 16
LOG_BITS = 16
POS_BITS = 32

MAX_TERM = (1 << TERM_BITS) - 1
MAX_LOG = (1 << LOG_BITS) - 1
MAX_POS = (1 << POS_BITS) - 1

#: The largest possible seqnum; logCheckTail reads backward from here.
MAX_SEQNUM = (1 << (TERM_BITS + LOG_BITS + POS_BITS)) - 1


def pack_seqnum(term_id: int, log_id: int, pos: int) -> int:
    """Pack ``(term_id, log_id, pos)`` into a 64-bit seqnum."""
    if not 0 <= term_id <= MAX_TERM:
        raise ValueError(f"term_id {term_id} out of range")
    if not 0 <= log_id <= MAX_LOG:
        raise ValueError(f"log_id {log_id} out of range")
    if not 0 <= pos <= MAX_POS:
        raise ValueError(f"pos {pos} out of range")
    return (term_id << (LOG_BITS + POS_BITS)) | (log_id << POS_BITS) | pos


def unpack_seqnum(seqnum: int) -> Tuple[int, int, int]:
    """Unpack a seqnum into ``(term_id, log_id, pos)``."""
    if not 0 <= seqnum <= MAX_SEQNUM:
        raise ValueError(f"seqnum {seqnum} out of range")
    return (
        seqnum >> (LOG_BITS + POS_BITS),
        (seqnum >> POS_BITS) & MAX_LOG,
        seqnum & MAX_POS,
    )


def seqnum_term(seqnum: int) -> int:
    return seqnum >> (LOG_BITS + POS_BITS)


def seqnum_log_id(seqnum: int) -> int:
    return (seqnum >> POS_BITS) & MAX_LOG


def seqnum_pos(seqnum: int) -> int:
    return seqnum & MAX_POS


@dataclass
class LogRecord:
    """A record in a LogBook (Figure 1's ``struct LogRecord``).

    ``data`` and ``tags`` are immutable once appended; ``auxdata`` is the
    per-record cache slot with relaxed durability/consistency (§3).
    Internal placement fields (``shard``, ``local_id``) identify the record
    before the metalog assigns its seqnum.
    """

    seqnum: Optional[int]
    tags: Tuple[int, ...]
    data: Any
    auxdata: Any = None
    book_id: int = 0
    # -- internal placement metadata --
    shard: str = ""
    local_id: int = -1

    def size_bytes(self) -> int:
        """Approximate serialized size, for cache accounting."""
        return _approx_size(self.data) + 16 * len(self.tags) + 32

    def __post_init__(self) -> None:
        self.tags = tuple(self.tags)


def _approx_size(value: Any) -> int:
    """Rough byte size of a record payload (strings/bytes exact-ish,
    containers recursive, numbers fixed)."""
    if value is None:
        return 0
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, (int, float, bool)):
        return 8
    if isinstance(value, dict):
        return sum(_approx_size(k) + _approx_size(v) for k, v in value.items()) + 8
    if isinstance(value, (list, tuple, set)):
        return sum(_approx_size(v) for v in value) + 8
    return 64


@dataclass(frozen=True, order=True)
class MetalogPosition:
    """A position in a metalog: ``(term_id, entry_index)``.

    Functions carry their position in baggage; engines stamp their index
    version with one. Read consistency (§4.4) is "serving index version >=
    reader position", with term compared first (§4.5).
    """

    term_id: int = 0
    entry_index: int = 0

    def advance_to(self, other: "MetalogPosition") -> "MetalogPosition":
        return max(self, other)

    @staticmethod
    def zero() -> "MetalogPosition":
        return MetalogPosition(0, 0)


#: Baggage key under which a function's metalog position travels (per log).
BAGGAGE_POSITIONS = "boki.positions"


def merge_positions(a: dict, b: dict) -> dict:
    """Baggage merger: per-log maximum of two position maps."""
    merged = dict(a)
    for log_id, pos in b.items():
        if log_id not in merged or merged[log_id] < pos:
            merged[log_id] = pos
    return merged
