"""Fixed sharding: the placement policy Boki's log index replaces (§7.5).

Previous systems (e.g. vCorfu) map each stream to a fixed shard so a
single storage group holds all of its records — making reads easy but
turning the shard into the stream's write bottleneck. Table 8 compares:
under a uniform LogBook distribution both policies perform alike, but
under a Zipf-skewed distribution fixed sharding collapses onto the hot
book's shard while Boki (any record on any shard + log index) is
unaffected.

This module implements the fixed policy on top of unmodified Boki: a
frontend routes every append for a book to the engine owning
``hash(book_id)``'s shard, instead of the appender's local shard.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from repro.core.cluster import BokiCluster
from repro.core.engine import LogBookEngine
from repro.core.hashing import stable_hash
from repro.core.logbook import LogBook
from repro.sim.network import RpcError


class FixedShardingLogBook(LogBook):
    """A LogBook whose appends are pinned to one engine by book hash."""

    def __init__(self, cluster: BokiCluster, engine: LogBookEngine, book_id: int):
        super().__init__(engine, book_id)
        self.cluster = cluster
        engine_names = sorted(cluster.engines)
        self.home_engine = engine_names[
            stable_hash(book_id, salt="fixed-shard") % len(engine_names)
        ]

    def append(self, data: Any, tags: Iterable[int] = ()) -> Generator:
        tags = tuple(tags)
        if self.home_engine == self.engine.name:
            return (yield from super().append(data, tags))
        # Remote append: forward to the book's home engine.
        yield from self._ipc()
        try:
            reply = yield self.cluster.net.rpc(
                self.engine.node,
                self.home_engine,
                "engine.append",
                {"book_id": self.book_id, "tags": tags, "data": data},
                timeout=30.0,
            )
        except RpcError as exc:
            raise exc.cause from None
        log_id = self.engine.term_config.log_for_book(self.book_id)
        self._advance(log_id, reply["position"])
        yield from self._ipc()
        return reply["seqnum"]


def fixed_sharding_logbook(cluster: BokiCluster, book_id: int, engine=None) -> FixedShardingLogBook:
    if engine is None:
        engine = cluster.any_engine()
    return FixedShardingLogBook(cluster, engine, book_id)
