"""Spans and trace contexts for the simulated cluster.

A *span* covers one operation (an RPC, a handler execution, an engine
read) with virtual-time start/end, a status, and a parent link; spans
sharing a ``trace_id`` form one request's causal tree. Context travels
two ways:

- **across processes**: every kernel :class:`~repro.sim.kernel.Process`
  carries a ``trace_ctx`` attribute inherited from the process that
  created it, so ``env.process(...)`` chains keep the ambient context;
- **across nodes**: the network attaches the sender's context to each
  :class:`~repro.sim.network.Message` and installs it on the receiving
  handler's process, so the tree follows a request through
  worker -> engine -> sequencer/storage and back.

Tracing is purely observational: starting or finishing a span creates no
kernel events and never advances virtual time, so enabling it cannot
change simulation results — and traces themselves are deterministic.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Union

from repro.sim.kernel import Environment

#: Span statuses. "ok" is the success path; the rest close a span on a
#: failure path ("timeout": no RPC reply; "dropped": the network dropped
#: the message; "error": the operation raised).
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
STATUS_DROPPED = "dropped"


class SpanContext:
    """The propagated identity of a span: ``(trace_id, span_id)``."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int):
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:
        return f"SpanContext(trace={self.trace_id}, span={self.span_id})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SpanContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))


class Span:
    """One timed operation in a trace."""

    __slots__ = (
        "name", "context", "parent_id", "node", "kind",
        "start", "end", "status", "attrs", "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        context: SpanContext,
        parent_id: Optional[int],
        node: str,
        kind: str,
        start: float,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self._tracer = tracer
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.node = node
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.status: Optional[str] = None
        self.attrs: Dict[str, Any] = attrs or {}

    @property
    def trace_id(self) -> int:
        return self.context.trace_id

    @property
    def span_id(self) -> int:
        return self.context.span_id

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} not finished")
        return self.end - self.start

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def finish(self, status: str = STATUS_OK, **attrs: Any) -> "Span":
        """Close the span at the current virtual time (idempotent)."""
        if self.end is not None:
            return self
        self.end = self._tracer.env.now
        self.status = status
        if attrs:
            self.attrs.update(attrs)
        self._tracer._finished(self)
        return self

    def __repr__(self) -> str:
        when = f"[{self.start:.6f}, {self.end:.6f}]" if self.finished else f"[{self.start:.6f}, ...)"
        return f"<Span {self.name} {self.node} {when} {self.status or 'open'}>"


class Tracer:
    """Creates spans and tracks the ambient per-process context."""

    def __init__(self, env: Environment):
        self.env = env
        #: Finished spans in finish order (deterministic for a given seed).
        self.spans: List[Span] = []
        self._open: Dict[int, Span] = {}
        self._next_span_id = 1
        self._next_trace_id = 1

    # ------------------------------------------------------------------
    # Ambient context (per kernel process)
    # ------------------------------------------------------------------
    def current_context(self) -> Optional[SpanContext]:
        """The trace context of the currently executing process."""
        active = self.env._active
        return active.trace_ctx if active is not None else None

    def set_process_context(self, ctx: Optional[SpanContext]) -> Optional[SpanContext]:
        """Install ``ctx`` on the currently executing process; returns the
        previous context so callers can restore it."""
        active = self.env._active
        if active is None:
            return None
        prev = active.trace_ctx
        active.trace_ctx = ctx
        return prev

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: Union[SpanContext, Span, None] = None,
        node: str = "",
        kind: str = "internal",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span. ``parent`` defaults to the ambient process context;
        a span with no parent at all starts a new trace."""
        if parent is None:
            parent = self.current_context()
        if isinstance(parent, Span):
            parent = parent.context
        if parent is None:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span_id = self._next_span_id
        self._next_span_id += 1
        span = Span(
            self, name, SpanContext(trace_id, span_id), parent_id,
            node, kind, self.env.now, attrs,
        )
        self._open[span_id] = span
        return span

    def start_trace(
        self, name: str, node: str = "", kind: str = "request",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a root span of a brand-new trace, ignoring ambient context."""
        trace_id = self._next_trace_id
        self._next_trace_id += 1
        span_id = self._next_span_id
        self._next_span_id += 1
        span = Span(
            self, name, SpanContext(trace_id, span_id), None,
            node, kind, self.env.now, attrs,
        )
        self._open[span_id] = span
        return span

    def instant(
        self,
        name: str,
        parent: Union[SpanContext, Span, None] = None,
        node: str = "",
        kind: str = "internal",
        status: str = STATUS_OK,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """A zero-duration span (e.g. a message drop)."""
        return self.start_span(name, parent=parent, node=node, kind=kind, attrs=attrs).finish(status)

    def span(
        self,
        name: str,
        parent: Union[SpanContext, Span, None] = None,
        node: str = "",
        kind: str = "internal",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> "_SpanScope":
        """Context manager: opens a span, makes it the ambient context for
        the current process, and closes it on exit (error status when the
        block raises — including kernel :class:`Interrupt`)."""
        return _SpanScope(self, name, parent, node, kind, attrs)

    def _finished(self, span: Span) -> None:
        self._open.pop(span.span_id, None)
        self.spans.append(span)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def open_spans(self) -> List[Span]:
        return list(self._open.values())

    def finish_open(self, status: str = STATUS_ERROR) -> int:
        """Close every still-open span (end-of-run cleanup); returns the
        number closed."""
        stragglers = sorted(self._open.values(), key=lambda s: s.span_id)
        for span in stragglers:
            span.finish(status)
        return len(stragglers)

    def trace(self, trace_id: int) -> List[Span]:
        """All finished spans of one trace, in start order."""
        spans = [s for s in self.spans if s.trace_id == trace_id]
        spans.sort(key=lambda s: (s.start, s.span_id))
        return spans

    def roots(self) -> Iterator[Span]:
        return (s for s in self.spans if s.parent_id is None)


class _SpanScope:
    """Context-manager wrapper produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_args", "span", "_prev_ctx")

    def __init__(self, tracer, name, parent, node, kind, attrs):
        self._tracer = tracer
        self._args = (name, parent, node, kind, attrs)
        self.span: Optional[Span] = None
        self._prev_ctx: Optional[SpanContext] = None

    def __enter__(self) -> Span:
        name, parent, node, kind, attrs = self._args
        self.span = self._tracer.start_span(name, parent=parent, node=node, kind=kind, attrs=attrs)
        self._prev_ctx = self._tracer.set_process_context(self.span.context)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer.set_process_context(self._prev_ctx)
        if exc_type is None:
            self.span.finish(STATUS_OK)
        else:
            # Lazy import (network imports this module). It can fail when
            # abandoned generators are closed at interpreter shutdown —
            # treat that as a plain error rather than raising from __exit__.
            try:
                from repro.sim.network import RpcTimeout
            except Exception:  # pragma: no cover - shutdown only
                RpcTimeout = ()
            status = STATUS_TIMEOUT if isinstance(exc, RpcTimeout) else STATUS_ERROR
            self.span.finish(status, error=repr(exc))
        return False
