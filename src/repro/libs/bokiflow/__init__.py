"""BokiFlow: fault-tolerant serverless workflows on LogBooks (§5.1).

BokiFlow adapts Beldi's techniques — step logging, idempotent database
updates, log-backed locks — to the LogBook API:

- *atomic test-and-append* via log tags: every step appends its record and
  honors the first record carrying the step's tag (Figure 6a);
- *idempotent DB updates* using the step record's seqnum as the written
  version, guarded by a conditional update (Figure 6a);
- *locks* as linearizable replicated state machines via prev-pointer
  chains (Figure 6b / Figure 7), accelerated with auxiliary data (§5.4);
- *transactions* built from locks, two-phase style.
"""

from repro.libs.bokiflow.env import BokiFlowRuntime, WorkflowEnv
from repro.libs.bokiflow.locks import EMPTY_HOLDER, LockState, check_lock_state, try_lock, unlock
from repro.libs.bokiflow.txn import TxnAbortedError, WorkflowTxn

# Uniform runtime interface (BeldiRuntime / UnsafeRuntime mirror these), so
# the workflow workloads are written once and parameterized by runtime.
BokiFlowRuntime.env_class = WorkflowEnv
BokiFlowRuntime.txn_class = WorkflowTxn

__all__ = [
    "BokiFlowRuntime",
    "EMPTY_HOLDER",
    "LockState",
    "TxnAbortedError",
    "WorkflowEnv",
    "WorkflowTxn",
    "check_lock_state",
    "try_lock",
    "unlock",
]
