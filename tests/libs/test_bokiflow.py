"""Tests for BokiFlow: exactly-once workflows, locks, transactions (§5.1)."""

import pytest

from repro.libs.bokiflow import BokiFlowRuntime, WorkflowTxn, check_lock_state, try_lock, unlock
from repro.libs.bokiflow.env import WorkflowCrash, WorkflowEnv
from tests.libs.conftest import drive


@pytest.fixture
def runtime(cluster):
    return BokiFlowRuntime(cluster)


class TestBasicWorkflows:
    def test_write_then_read(self, cluster, runtime):
        def body(env, arg):
            yield from env.write("t", "k", "hello")
            return (yield from env.read("t", "k"))

        runtime.register_workflow("wf", body)

        def flow():
            return (yield from runtime.start_workflow("wf", book_id=1))

        assert drive(cluster, flow()) == "hello"

    def test_read_missing_returns_none(self, cluster, runtime):
        def body(env, arg):
            return (yield from env.read("t", "missing"))

        runtime.register_workflow("wf", body)

        def flow():
            return (yield from runtime.start_workflow("wf", book_id=1))

        assert drive(cluster, flow()) is None

    def test_invoke_returns_child_result(self, cluster, runtime):
        def child(env, arg):
            yield from env.write("t", "c", arg)
            return arg + 1

        def parent(env, arg):
            return (yield from env.invoke("child", 41))

        runtime.register_workflow("child", child)
        runtime.register_workflow("parent", parent)

        def flow():
            return (yield from runtime.start_workflow("parent", book_id=1))

        assert drive(cluster, flow()) == 42

    def test_cond_write_applies_only_on_match(self, cluster, runtime):
        def body(env, arg):
            yield from env.write("t", "k", "v0")
            first = yield from env.cond_write("t", "k", "v1", expected="v0")
            second = yield from env.cond_write("t", "k", "v2", expected="nope")
            final = yield from env.read("t", "k")
            return first, second, final

        runtime.register_workflow("wf", body)

        def flow():
            return (yield from runtime.start_workflow("wf", book_id=1))

        assert drive(cluster, flow()) == (True, False, "v1")

    def test_distinct_workflow_ids_isolated(self, cluster, runtime):
        def body(env, arg):
            yield from env.write("t", f"k-{arg}", arg)
            return arg

        runtime.register_workflow("wf", body)

        def flow():
            a = yield from runtime.start_workflow("wf", 1, book_id=1)
            b = yield from runtime.start_workflow("wf", 2, book_id=1)
            return a, b

        assert drive(cluster, flow()) == (1, 2)


class TestExactlyOnce:
    def test_reexecution_skips_completed_writes(self, cluster, runtime):
        """Crash after the first write; re-execute; the write must apply
        exactly once even though the workflow ran twice."""
        crashes = {"armed": True}

        def body(env, arg):
            # Increment-style write: read, then write read+1. Re-executing
            # blindly would double-increment.
            current = (yield from env.read("t", "counter")) or 0
            yield from env.write("t", "counter", current + 1)
            if crashes["armed"]:
                crashes["armed"] = False
                raise WorkflowCrash("injected")
            yield from env.write("t", "other", "done")
            return (yield from env.read("t", "counter"))

        runtime.register_workflow("wf", body)

        def flow():
            wf_id = runtime.new_workflow_id()
            try:
                yield from runtime.start_workflow("wf", book_id=1, workflow_id=wf_id)
            except WorkflowCrash:
                pass
            # Re-execute with the same workflow id (Beldi's recovery path).
            return (yield from runtime.start_workflow("wf", book_id=1, workflow_id=wf_id))

        assert drive(cluster, flow()) == 1  # not 2

    def test_reexecution_returns_logged_result(self, cluster, runtime):
        """A completed workflow re-executed returns its original result
        without re-running the body."""
        runs = {"count": 0}

        def body(env, arg):
            runs["count"] += 1
            yield from env.write("t", "k", runs["count"])
            return runs["count"]

        runtime.register_workflow("wf", body)

        def flow():
            wf_id = runtime.new_workflow_id()
            first = yield from runtime.start_workflow("wf", book_id=1, workflow_id=wf_id)
            second = yield from runtime.start_workflow("wf", book_id=1, workflow_id=wf_id)
            return first, second

        assert drive(cluster, flow()) == (1, 1)
        assert runs["count"] == 1

    def test_reexecuted_invoke_does_not_rerun_completed_child(self, cluster, runtime):
        child_runs = {"count": 0}
        crashes = {"armed": True}

        def child(env, arg):
            child_runs["count"] += 1
            yield from env.write("t", "child-effect", child_runs["count"])
            return "child-result"

        def parent(env, arg):
            result = yield from env.invoke("child")
            if crashes["armed"]:
                crashes["armed"] = False
                raise WorkflowCrash("injected after child")
            return result

        runtime.register_workflow("child", child)
        runtime.register_workflow("parent", parent)

        def flow():
            wf_id = runtime.new_workflow_id()
            try:
                yield from runtime.start_workflow("parent", book_id=1, workflow_id=wf_id)
            except WorkflowCrash:
                pass
            return (yield from runtime.start_workflow("parent", book_id=1, workflow_id=wf_id))

        assert drive(cluster, flow()) == "child-result"
        # Child body ran once: the re-invoked child saw its logged result.
        assert child_runs["count"] == 1

    def test_crash_before_any_step_then_full_run(self, cluster, runtime):
        crashes = {"armed": True}

        def body(env, arg):
            if crashes["armed"]:
                crashes["armed"] = False
                raise WorkflowCrash("early")
            yield from env.write("t", "k", "v")
            return "ok"

        runtime.register_workflow("wf", body)

        def flow():
            wf_id = runtime.new_workflow_id()
            try:
                yield from runtime.start_workflow("wf", book_id=1, workflow_id=wf_id)
            except WorkflowCrash:
                pass
            return (yield from runtime.start_workflow("wf", book_id=1, workflow_id=wf_id))

        assert drive(cluster, flow()) == "ok"


class TestLocks:
    def make_env(self, cluster, runtime, wf_id="lock-wf"):
        """A WorkflowEnv outside a function (driven from the client)."""
        from repro.faas import FunctionContext

        fnode = cluster.function_nodes[0]
        ctx = FunctionContext(node=fnode.node, gateway_invoke=None, book_id=7)
        return WorkflowEnv(runtime, ctx, wf_id)

    def test_lock_acquire_release_cycle(self, cluster, runtime):
        env = self.make_env(cluster, runtime)

        def flow():
            state = yield from try_lock(env, "resource", "me")
            assert state is not None
            held = yield from check_lock_state(env, "resource")
            yield from unlock(env, "resource", state)
            free = yield from check_lock_state(env, "resource")
            return held.holder, free.holder

        assert drive(cluster, flow()) == ("me", "")

    def test_second_acquire_fails_while_held(self, cluster, runtime):
        env = self.make_env(cluster, runtime)

        def flow():
            first = yield from try_lock(env, "res", "alice")
            second = yield from try_lock(env, "res", "bob")
            return first is not None, second is None

        assert drive(cluster, flow()) == (True, True)

    def test_acquire_after_release_succeeds(self, cluster, runtime):
        env = self.make_env(cluster, runtime)

        def flow():
            first = yield from try_lock(env, "res", "alice")
            yield from unlock(env, "res", first)
            second = yield from try_lock(env, "res", "bob")
            return second is not None and second.holder == "bob"

        assert drive(cluster, flow()) is True

    def test_concurrent_acquires_one_winner(self, cluster, runtime):
        """Two racing acquires: the log linearizes them — exactly one wins
        (the prev-chain mechanism of Figure 7)."""
        envs = [self.make_env(cluster, runtime, f"wf-{i}") for i in range(2)]
        results = []

        def contender(env, name):
            state = yield from try_lock(env, "hot", name)
            results.append((name, state is not None))

        p1 = cluster.env.process(contender(envs[0], "a"))
        p2 = cluster.env.process(contender(envs[1], "b"))
        cluster.env.run_until(p1, limit=120.0)
        cluster.env.run_until(p2, limit=120.0)
        wins = [name for name, won in results if won]
        assert len(wins) == 1

    def test_chain_survives_many_cycles(self, cluster, runtime):
        """Figure 7: alternating acquire/release builds a valid chain."""
        env = self.make_env(cluster, runtime)

        def flow():
            holders = []
            for i in range(4):
                state = yield from try_lock(env, "res", f"h{i}")
                assert state is not None
                holders.append(state.holder)
                yield from unlock(env, "res", state)
            return holders

        assert drive(cluster, flow()) == ["h0", "h1", "h2", "h3"]


class TestWorkflowTxn:
    def test_commit_applies_writes(self, cluster, runtime):
        def body(env, arg):
            txn = WorkflowTxn(env)
            ok = yield from txn.acquire([("t", "x"), ("t", "y")])
            assert ok
            txn.write("t", "x", 1)
            txn.write("t", "y", 2)
            yield from txn.commit()
            x = yield from env.read("t", "x")
            y = yield from env.read("t", "y")
            return x, y

        runtime.register_workflow("wf", body)

        def flow():
            return (yield from runtime.start_workflow("wf", book_id=1))

        assert drive(cluster, flow()) == (1, 2)

    def test_abort_discards_writes(self, cluster, runtime):
        def body(env, arg):
            txn = WorkflowTxn(env)
            yield from txn.acquire([("t", "x")])
            txn.write("t", "x", "should-not-appear")
            yield from txn.abort()
            return (yield from env.read("t", "x"))

        runtime.register_workflow("wf", body)

        def flow():
            return (yield from runtime.start_workflow("wf", book_id=1))

        assert drive(cluster, flow()) is None

    def test_txn_read_sees_buffered_write(self, cluster, runtime):
        def body(env, arg):
            txn = WorkflowTxn(env)
            yield from txn.acquire([("t", "x")])
            txn.write("t", "x", 99)
            value = yield from txn.read("t", "x")
            yield from txn.commit()
            return value

        runtime.register_workflow("wf", body)

        def flow():
            return (yield from runtime.start_workflow("wf", book_id=1))

        assert drive(cluster, flow()) == 99

    def test_locks_released_after_commit(self, cluster, runtime):
        def body(env, arg):
            txn1 = WorkflowTxn(env)
            yield from txn1.acquire([("t", "x")])
            txn1.write("t", "x", 1)
            yield from txn1.commit()
            txn2 = WorkflowTxn(env)
            ok = yield from txn2.acquire([("t", "x")])
            yield from txn2.commit()
            return ok

        runtime.register_workflow("wf", body)

        def flow():
            return (yield from runtime.start_workflow("wf", book_id=1))

        assert drive(cluster, flow()) is True

    def test_conflicting_txns_serialize(self, cluster, runtime):
        """Two transactions doing read-modify-write on the same key must
        not lose an update."""
        def body(env, arg):
            txn = WorkflowTxn(env)
            ok = yield from txn.acquire([("t", "counter")])
            if not ok:
                return False
            current = (yield from txn.read("t", "counter")) or 0
            txn.write("t", "counter", current + 1)
            yield from txn.commit()
            return True

        runtime.register_workflow("wf", body)

        def one(i):
            return runtime.start_workflow("wf", book_id=1, workflow_id=f"txn-wf-{i}")

        procs = [cluster.env.process(one(i)) for i in range(4)]
        outcomes = [cluster.env.run_until(p, limit=300.0) for p in procs]

        def check():
            env = TestLocks().make_env(cluster, runtime, "checker")
            return (yield from env.read("t", "counter"))

        final = drive(cluster, check())
        assert final == sum(1 for o in outcomes if o)
        assert final >= 1
