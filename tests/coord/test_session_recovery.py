"""Session expiry and re-registration under an injected partition.

A client holding an ephemeral znode is partitioned from the coordination
server for longer than its session timeout: the server must expire the
session and drop the ephemeral, and the healed client must be able to
start a fresh session and re-register.
"""

import pytest

from repro.coord import CoordClient, CoordServer
from repro.coord.server import SessionExpiredError
from repro.sim import Environment, Network, Node
from repro.sim.randvar import RandomStreams

pytestmark = [pytest.mark.chaos, pytest.mark.recovery]


@pytest.fixture
def setup():
    env = Environment()
    net = Network(env, RandomStreams(seed=11), jitter=0.0)
    coord_node = net.register(Node(env, "coord"))
    server = CoordServer(env, net, coord_node)
    node = net.register(Node(env, "worker"))
    client = CoordClient(env, net, node)
    return env, net, server, client


def drive(env, gen, limit=300.0):
    return env.run_until(env.process(gen), limit=limit)


def test_partition_expires_session_and_drops_ephemeral(setup):
    env, net, server, client = setup

    def flow():
        yield from client.start_session()
        yield from client.create("/members/worker", {"epoch": 1},
                                 ephemeral=True)
        # Cut the client off for longer than the session timeout; the
        # keepalive misses its heartbeats and the server sweeps the session.
        net.partition("worker", "coord")
        yield env.timeout(client.session_timeout + 1.5)
        net.heal("worker", "coord")

    drive(env, flow())
    probe = net.register(Node(env, "probe"))
    observer = CoordClient(env, net, probe)

    def check():
        return (yield from observer.exists("/members/worker"))

    assert drive(env, check()) is False
    assert len(server.expired_sessions) == 1


def test_expired_session_rejects_stale_heartbeats(setup):
    env, net, server, client = setup

    def flow():
        sid = yield from client.start_session()
        net.partition("worker", "coord")
        yield env.timeout(client.session_timeout + 1.5)
        net.heal("worker", "coord")
        # A heartbeat on the dead session must be refused, not revived.
        yield from client._call("coord.heartbeat", {"session_id": sid})

    with pytest.raises(SessionExpiredError):
        drive(env, flow())


def test_client_rejoins_with_fresh_session_after_heal(setup):
    env, net, server, client = setup

    def flow():
        first = yield from client.start_session()
        yield from client.create("/members/worker", {"epoch": 1},
                                 ephemeral=True)
        net.partition("worker", "coord")
        yield env.timeout(client.session_timeout + 1.5)
        net.heal("worker", "coord")
        # Recovery path: explicit re-registration under a new session.
        second = yield from client.start_session()
        yield from client.create("/members/worker", {"epoch": 2},
                                 ephemeral=True)
        info = yield from client.get("/members/worker")
        return first, second, info

    first, second, info = drive(env, flow())
    assert second != first
    assert info["data"] == {"epoch": 2}

    def keep_living():
        # The new session's keepalive holds the ephemeral alive.
        yield env.timeout(client.session_timeout + 1.0)
        return (yield from client.exists("/members/worker"))

    assert drive(env, keep_living()) is True
    assert server.expired_sessions == [1]
