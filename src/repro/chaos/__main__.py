"""CLI: ``python -m repro.chaos``.

Commands
--------
``list``
    Show the scenario catalog.
``run <scenario>|all|fast|recovery|elastic|admission|tenant [--seed N | --seeds N N ...] [--out DIR]``
    Execute scenarios, write verdict artifacts, print a summary; exits
    non-zero if any scenario's verdict is not ``passed`` or its online
    monitors disagree. ``--no-monitors`` disables the online monitors;
    ``--flight-dir DIR`` writes flight-recorder snapshots (one
    ``repro.monitor/1`` JSON per fired alert).
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.chaos.runner import run_scenario, write_flight_records, write_verdict
from repro.chaos.scenarios import (
    SCENARIOS,
    admission_scenarios,
    all_scenarios,
    elastic_scenarios,
    fast_scenarios,
    recovery_scenarios,
    tenant_scenarios,
)


def _cmd_list(_args) -> int:
    width = max(len(name) for name in SCENARIOS)
    for name in all_scenarios():
        scenario = SCENARIOS[name]
        flags = []
        if scenario.fast:
            flags.append("fast")
        if scenario.recovery:
            flags.append("recovery")
        if scenario.elastic:
            flags.append("elastic")
        if scenario.admission:
            flags.append("admission")
        if scenario.tenant:
            flags.append("tenant")
        if scenario.expect_violations:
            flags.append("expects-violations")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        print(f"{name:<{width}}  {scenario.description}{suffix}")
    return 0


def _resolve(selector: str) -> List[str]:
    if selector == "all":
        return all_scenarios()
    if selector == "fast":
        return fast_scenarios()
    if selector == "recovery":
        return recovery_scenarios()
    if selector == "elastic":
        return elastic_scenarios()
    if selector == "admission":
        return admission_scenarios()
    if selector == "tenant":
        return tenant_scenarios()
    if selector not in SCENARIOS:
        known = ", ".join(all_scenarios())
        raise SystemExit(
            f"unknown scenario {selector!r} "
            f"(known: {known}, all, fast, recovery, elastic, admission, "
            f"tenant)"
        )
    return [selector]


def _online_line(doc) -> str:
    """One-line online-monitor summary for the run log."""
    online = doc["online"]
    if not online["enabled"]:
        return "online: disabled"
    alerts = online.get("alerts") or []
    failed = [c["name"] for c in online["checks"] if not c["ok"]]
    verdict = "ok" if online["passed"] else "FAIL " + ",".join(failed)
    return (
        f"online: {verdict} "
        f"({online['events_seen']} events, {len(alerts)} alert(s))"
    )


def _cmd_run(args) -> int:
    names = _resolve(args.scenario)
    seeds = args.seeds if args.seeds is not None else [args.seed]
    failures = 0
    for name in names:
        for seed in seeds:
            doc = run_scenario(name, seed=seed, monitors=not args.no_monitors)
            path = write_verdict(doc, directory=args.out)
            status = "PASS" if doc["passed"] else "FAIL"
            detail = ""
            if doc["expect_violations"]:
                detail = f" ({doc['violations']} violations, expected >0)"
            elif doc["violations"]:
                detail = f" ({doc['violations']} violations)"
            print(f"[{status}] {name} seed={seed}{detail} -> {path}")
            online = doc["online"]
            if online["enabled"]:
                print(f"    {_online_line(doc)}")
                # A failing online verdict on a scenario that does not
                # expect violations is a disagreement with the offline
                # checkers — fail the run loudly rather than silently.
                if not online["passed"] and not doc["expect_violations"]:
                    failures += 1
                    for check in online["checks"]:
                        for violation in check["violations"]:
                            print(f"    online {check['name']}: {violation}")
                if args.flight_dir:
                    for fpath in write_flight_records(
                        name, seed, directory=args.flight_dir
                    ):
                        print(f"    flight record -> {fpath}")
            if not doc["passed"]:
                failures += 1
                for check in doc["checks"]:
                    for violation in check["violations"]:
                        print(f"    {check['name']}: {violation}")
    print(f"{'FAILED' if failures else 'OK'}: "
          f"{len(names) * len(seeds) - failures}/{len(names) * len(seeds)} verdicts passed")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.chaos",
                                     description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show the scenario catalog")
    run = sub.add_parser("run", help="run scenarios and write verdicts")
    run.add_argument("scenario",
                     help="scenario name, 'all', 'fast', 'recovery', "
                          "'elastic', 'admission', or 'tenant'")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--seeds", type=int, nargs="+", default=None,
                     help="run each scenario once per seed")
    run.add_argument("--out", default=None,
                     help="verdict directory (default bench/chaos or $REPRO_CHAOS_DIR)")
    run.add_argument("--no-monitors", action="store_true",
                     help="disable the online invariant monitors (repro.monitor)")
    run.add_argument("--flight-dir", default=None, metavar="DIR",
                     help="write flight-recorder snapshots (repro.monitor/1) here")
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
