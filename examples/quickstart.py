"""Quickstart: boot a Boki cluster and use the LogBook API (Figure 1).

Run:  python examples/quickstart.py

Boots a simulated Boki deployment (4 function nodes, 3 storage nodes,
3 sequencers), then walks through the LogBook API: appends, tag-selective
reads, bidirectional traversal, auxiliary data, and trims. Times shown are
*virtual* (simulated) seconds.
"""

from repro.core import BokiCluster


def main():
    cluster = BokiCluster(num_function_nodes=4, num_storage_nodes=3)
    term = cluster.boot()
    print(f"cluster up: term={term.term_id}, physical logs={list(term.logs)}")

    def demo():
        book = cluster.logbook(book_id=42)

        # -- logAppend: returns a unique, monotonically increasing seqnum.
        orders_tag, alerts_tag = 1, 2
        s1 = yield from book.append({"order": "espresso"}, tags=[orders_tag])
        s2 = yield from book.append({"order": "flat white"}, tags=[orders_tag])
        s3 = yield from book.append({"alert": "low on beans"}, tags=[alerts_tag])
        print(f"appended records at seqnums {s1:#x}, {s2:#x}, {s3:#x}")

        # -- logReadNext: seek forward, filtered by tag.
        first_order = yield from book.read_next(tag=orders_tag, min_seqnum=0)
        print(f"first order: {first_order.data}")

        # -- logCheckTail: the most recent record of a tag.
        last_order = yield from book.check_tail(tag=orders_tag)
        print(f"latest order: {last_order.data}")

        # -- tag 0 is the implicit every-record stream.
        everything = yield from book.iter_records(tag=0)
        print(f"total records in the book: {len(everything)}")

        # -- logSetAuxData: per-record cache storage (never authoritative).
        yield from book.set_auxdata(s1, {"status": "served"})
        again = yield from book.read_next(tag=orders_tag, min_seqnum=0)
        print(f"aux data on first order: {again.auxdata}")

        # -- logTrim: drop the alert stream.
        yield from book.trim(s3, tag=alerts_tag)
        yield cluster.env.timeout(0.05)  # trim propagates via the metalog
        remaining = yield from book.read_next(tag=alerts_tag, min_seqnum=0)
        print(f"alerts after trim: {remaining}")

        return cluster.env.now

    elapsed = cluster.drive(demo())
    print(f"done in {elapsed * 1e3:.2f} virtual ms")


if __name__ == "__main__":
    main()
