"""Minimal-movement replica rebalancing for log-space placement.

When the storage fleet grows or shrinks, rehashing every ``(log, shard)``
replica set (the ``stable_hash`` placement :func:`repro.core.placement.
build_term` uses for fresh terms) would move almost every replica — each
move is a full shard copy. This module recomputes placement so that:

- every slot keeps ``replicas`` distinct nodes (capped at the fleet size),
- load stays balanced within the ceiling quota
  ``ceil(total_replica_slots / len(nodes))`` plus a slack of at most
  ``replicas - 1`` (within-slot distinctness can force an already-full
  node to take a replica when every under-quota node holds the slot —
  only possible when the fleet barely exceeds the replication factor),
- a surviving replica moves **only** when its node left the fleet or the
  node is over quota in the new fleet.

The greedy two-pass assignment (retain survivors under quota, then fill
gaps from the least-loaded node) achieves exactly the lower bound
:func:`optimal_moves` computes; the property tests assert
``moved <= optimal + 1`` across randomized fleet transitions. Everything
is pure and deterministic: dict/iteration order follows the caller's slot
and fleet ordering, ties break by fleet position.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

Slot = Hashable


def replica_quota(num_slots: int, num_nodes: int, replicas: int) -> int:
    """Ceiling quota of replica assignments per node for a balanced fleet."""
    if num_nodes <= 0:
        raise ValueError("need at least one node")
    total = num_slots * min(replicas, num_nodes)
    return ceil(total / num_nodes) if total else 0


def rebalance_replicas(
    slots: Sequence[Slot],
    old: Mapping[Slot, Sequence[str]],
    nodes: Sequence[str],
    replicas: int,
) -> Dict[Slot, List[str]]:
    """Assign ``replicas`` distinct nodes to every slot, moving as few
    surviving replicas as possible.

    ``slots`` orders the assignment (deterministic); ``old`` maps slots to
    their previous replica lists (slots absent from ``old`` are new and
    place greedily); ``nodes`` is the new fleet in priority order.
    """
    if not nodes:
        raise ValueError("need at least one node")
    node_set = set(nodes)
    if len(node_set) != len(nodes):
        raise ValueError("duplicate node names in fleet")
    want = min(replicas, len(nodes))
    quota = replica_quota(len(slots), len(nodes), replicas)
    rank = {name: i for i, name in enumerate(nodes)}
    load: Dict[str, int] = {name: 0 for name in nodes}

    # Pass 1: retain surviving replicas while their node is under quota.
    assignment: Dict[Slot, List[str]] = {}
    for slot in slots:
        keep: List[str] = []
        for name in old.get(slot, ()):
            if (name in node_set and name not in keep
                    and load[name] < quota and len(keep) < want):
                keep.append(name)
                load[name] += 1
        assignment[slot] = keep

    # Pass 2: fill the gaps from the least-loaded nodes (ties by fleet
    # position). Distinctness within a slot can push a node past quota
    # only when every under-quota node already holds this slot.
    for slot in slots:
        current = assignment[slot]
        while len(current) < want:
            chosen = min(
                (name for name in nodes if name not in current),
                key=lambda name: (load[name], rank[name]),
            )
            current.append(chosen)
            load[chosen] += 1
    return assignment


def count_moves(
    old: Mapping[Slot, Sequence[str]],
    new: Mapping[Slot, Sequence[str]],
) -> int:
    """Replica copies the transition costs: assignments in ``new`` whose
    node did not already hold that slot. Slots absent from ``old`` are new
    data (unavoidable placement, not movement) and cost nothing."""
    moves = 0
    for slot, replicas in new.items():
        if slot not in old:
            continue
        prior = set(old[slot])
        moves += sum(1 for name in replicas if name not in prior)
    return moves


def optimal_moves(
    slots: Sequence[Slot],
    old: Mapping[Slot, Sequence[str]],
    nodes: Sequence[str],
    replicas: int,
) -> int:
    """Lower bound on replica moves for any balanced assignment.

    Two unavoidable costs: replicas whose node left the fleet must be
    re-replicated somewhere, and surviving nodes holding more than the
    ceiling quota must shed the excess. (Slots missing from ``old`` are
    new and free, matching :func:`count_moves`.)
    """
    node_set = set(nodes)
    want = min(replicas, len(nodes))
    quota = replica_quota(len(slots), len(nodes), replicas)
    dead = 0
    surviving_load: Dict[str, int] = {name: 0 for name in nodes}
    for slot in slots:
        prior = list(dict.fromkeys(old.get(slot, ())))[:want]
        for name in prior:
            if name in node_set:
                surviving_load[name] += 1
            else:
                dead += 1
    over = sum(max(0, held - quota) for held in surviving_load.values())
    return dead + over
