"""Online invariant monitors: incremental guarantee checking inside the DES.

The offline checkers in :mod:`repro.chaos.checkers` replay *full*
histories after a run ends — exact, but O(history) in memory and useless
for alerting while the run is still going. This module provides the
online complement: a :class:`MonitorHub` of incremental monitors fed by
lightweight event taps in the core components (sequencer, storage,
engine, gateway) and the client libraries (BokiQueue, BokiFlow's effect
journal). Each monitor keeps O(1)/O(shards) rolling state — last
indices, watermarks, per-record sequence accounting bounded by the
in-flight set — and flags a violation the moment the observed event
stream can no longer be explained by the guarantee.

Design rules (the project's golden invariant depends on them):

- **Observe, never perturb.** Taps are synchronous attribute calls
  guarded by ``if component.monitor is not None``; they touch no
  simulation state, send no messages, and consume no RNG. Same-seed
  runs are byte-identical with monitors on or off.
- **Never raise.** A detected violation is recorded and reported; the
  simulated system keeps running (the flight recorder wants the
  aftermath too).
- **Agree with the offline checkers.** Monitors that shadow an offline
  checker reuse its name (``metalog-consistency``, ``queue-delivery``,
  ``exactly-once-effects``) and its violation semantics, so verdicts can
  carry both and tests can assert they agree.

The SLO/alerting layer on top lives in :mod:`repro.obs.alerts`; the
package surface is re-exported as :mod:`repro.monitor`.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from math import inf
from typing import Any, Dict, List, Optional, Tuple


def _value_key(value: Any) -> str:
    """Canonical hashable form of a message value (mirrors
    ``repro.chaos.checkers._value_key`` so violations read identically)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class MonitorResult:
    """Outcome of one online monitor — the same shape as
    ``repro.chaos.checkers.CheckResult`` (duplicated here rather than
    imported: ``repro.chaos`` already imports ``repro.obs``)."""

    def __init__(self, name: str, violations: List[str], checked: int):
        self.name = name
        self.violations = violations
        self.checked = checked

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "checked": self.checked,
            "violations": list(self.violations),
        }


# ----------------------------------------------------------------------
# Incremental sample windows
# ----------------------------------------------------------------------
class SampleWindow:
    """Time-ordered ``(t, value)`` samples with windowed queries.

    The incremental core shared by the freshness/latency monitors and the
    burn-rate rules: O(1) amortized ingest, O(log n) window selection
    (same bisect semantics as :func:`repro.obs.registry.window_stats`:
    ``start <= t <= end`` inclusive), optional pruning so long runs keep
    bounded state.
    """

    __slots__ = ("samples",)

    def __init__(self):
        self.samples: List[Tuple[float, float]] = []

    def __len__(self) -> int:
        return len(self.samples)

    def record(self, t: float, value: float) -> None:
        if self.samples and t < self.samples[-1][0]:
            raise ValueError(
                f"samples must be time-ordered ({t} < {self.samples[-1][0]})"
            )
        self.samples.append((t, value))

    def _bounds(
        self,
        window: Optional[float],
        start: Optional[float],
        end: Optional[float],
    ) -> Tuple[int, int]:
        samples = self.samples
        if end is None:
            end = samples[-1][0] if samples else 0.0
        if window is not None:
            lookback = end - window
            start = lookback if start is None else max(start, lookback)
        lo = 0 if start is None else bisect_left(samples, (start, -inf))
        hi = bisect_left(samples, (end, inf))
        return lo, hi

    def values(
        self,
        window: Optional[float] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[float]:
        lo, hi = self._bounds(window, start, end)
        return [v for _, v in self.samples[lo:hi]]

    def stats(
        self,
        window: Optional[float] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Dict[str, Any]:
        values = self.values(window=window, start=start, end=end)
        if not values:
            return {"count": 0, "mean": None, "max": None, "min": None, "last": None}
        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "max": max(values),
            "min": min(values),
            "last": values[-1],
        }

    def quantile(
        self,
        q: float,
        window: Optional[float] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Optional[float]:
        """Nearest-rank quantile over the window (None when empty)."""
        values = sorted(self.values(window=window, start=start, end=end))
        if not values:
            return None
        rank = min(len(values) - 1, max(0, int(q * len(values) + 0.5) - 1))
        return values[rank]

    def prune(self, before: float) -> None:
        """Drop samples with ``t < before`` (keeps state bounded)."""
        lo = bisect_left(self.samples, (before, -inf))
        if lo:
            del self.samples[:lo]


class SuccessWindow(SampleWindow):
    """Per-operation success accounting: ``(t, ok)`` samples plus a prefix
    sum of successes, so windowed availability is two bisects and a
    subtraction instead of a rescan of raw samples.

    This is the windowed counter behind both the online availability
    monitor and :func:`repro.chaos.liveness.recovery_metrics` — one
    incremental implementation instead of per-call recomputation.
    """

    __slots__ = ("_cum_ok", "_ok_completions")

    def __init__(self):
        super().__init__()
        self._cum_ok: List[int] = []  # _cum_ok[i] = successes among samples[:i+1]
        self._ok_completions: List[Tuple[float, float]] = []  # (t_invoke, t_done)

    def record(self, t: float, ok: bool, t_done: Optional[float] = None) -> None:
        super().record(t, 1.0 if ok else 0.0)
        prev = self._cum_ok[-1] if self._cum_ok else 0
        self._cum_ok.append(prev + (1 if ok else 0))
        if ok and t_done is not None:
            self._ok_completions.append((t, t_done))

    def counts(
        self,
        window: Optional[float] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Tuple[int, int]:
        """``(operations, successes)`` inside the window."""
        lo, hi = self._bounds(window, start, end)
        if hi <= lo:
            return 0, 0
        ok = self._cum_ok[hi - 1] - (self._cum_ok[lo - 1] if lo else 0)
        return hi - lo, ok

    def availability(
        self,
        window: Optional[float] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Optional[float]:
        count, ok = self.counts(window=window, start=start, end=end)
        return ok / count if count else None

    def error_rate(
        self,
        window: Optional[float] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> Optional[float]:
        availability = self.availability(window=window, start=start, end=end)
        return None if availability is None else 1.0 - availability

    def first_ok_after(self, t0: float) -> Optional[float]:
        """Earliest completion time among successful operations *invoked*
        at/after ``t0`` (the RTO numerator). None if none succeeded."""
        lo = bisect_left(self._ok_completions, (t0, -inf))
        tail = self._ok_completions[lo:]
        return min(done for _, done in tail) if tail else None

    def prune(self, before: float) -> None:  # pragma: no cover - safety net
        raise NotImplementedError(
            "SuccessWindow keeps its full prefix sum; wrap-around pruning "
            "would silently change availability history"
        )


# ----------------------------------------------------------------------
# Metalog monotonicity + cross-replica prefix watermarks
# ----------------------------------------------------------------------
class MetalogMonitor:
    """Incremental shadow of ``checkers.check_metalog``.

    Per replica of each ``(term, log)``: entry indices must be contiguous,
    per-shard progress monotone, and ``start_pos`` must equal the running
    record total. Across replicas: any two replicas must agree byte-for-
    byte on every entry index both have appended. Cross-replica state is
    a *watermark* map — entry digests are retained only for indices not
    yet confirmed by every replica seen, then dropped, so memory is
    O(replication lag), not O(log length).
    """

    name = "metalog-consistency"
    DIGEST_CAP = 4096  # hard bound on retained in-flight digests per key

    def __init__(self):
        self.checked = 0
        self.violations: List[str] = []
        # (node, term, log) -> [next_index, prev_progress, running_total]
        self._replica: Dict[Tuple[str, int, int], list] = {}
        # (term, log) -> {"digests": {index: digest}, "last": {node: index}}
        self._cross: Dict[Tuple[int, int], dict] = {}
        # (term, log) -> records ordered so far (for storage reconciliation)
        self.ordered_total: Dict[Tuple[int, int], int] = {}

    def on_entry(self, node: str, term: int, log_id: int, entry) -> None:
        self.checked += 1
        key = (node, term, log_id)
        state = self._replica.get(key)
        if state is None:
            state = self._replica[key] = [0, {}, 0]
        next_index, prev_progress, running_total = state
        label = f"{node} ({term},{log_id})"
        if entry.index != next_index:
            self.violations.append(
                f"{label}: entry {next_index} has index {entry.index}"
            )
            # Resynchronize on the observed index so one gap does not
            # cascade into a violation per subsequent entry.
            state[0] = entry.index + 1
            state[1] = entry.progress_dict()
            state[2] = entry.start_pos
            return
        progress = entry.progress_dict()
        for shard in sorted(progress):
            if progress[shard] < prev_progress.get(shard, 0):
                self.violations.append(
                    f"{label} entry {entry.index}: progress for shard {shard} "
                    f"regressed {prev_progress.get(shard, 0)} -> {progress[shard]}"
                )
        if entry.start_pos != running_total:
            self.violations.append(
                f"{label} entry {entry.index}: start_pos {entry.start_pos} "
                f"!= records ordered so far {running_total}"
            )
        delta = sum(
            progress.get(s, 0) - prev_progress.get(s, 0) for s in progress
        )
        state[0] = next_index + 1
        state[1] = progress
        state[2] = running_total + delta
        self.ordered_total[(term, log_id)] = max(
            self.ordered_total.get((term, log_id), 0), state[2]
        )
        self._check_cross(node, term, log_id, entry)

    def _check_cross(self, node: str, term: int, log_id: int, entry) -> None:
        cross = self._cross.get((term, log_id))
        if cross is None:
            cross = self._cross[(term, log_id)] = {"digests": {}, "last": {}}
        digests: Dict[int, tuple] = cross["digests"]
        digest = (entry.progress, entry.start_pos, entry.trims)
        known = digests.get(entry.index)
        if known is None:
            if len(digests) < self.DIGEST_CAP:
                digests[entry.index] = digest
        elif known != digest:
            self.violations.append(
                f"({term},{log_id}) entry {entry.index}: replica {node} "
                f"diverges from the agreed prefix"
            )
        cross["last"][node] = max(cross["last"].get(node, -1), entry.index)
        # Advance the watermark: once every replica seen so far has passed
        # an index, its digest can never be contradicted again — drop it.
        if len(cross["last"]) >= 2:
            watermark = min(cross["last"].values())
            for index in [i for i in digests if i <= watermark]:
                del digests[index]

    def result(self) -> MonitorResult:
        return MonitorResult(self.name, list(self.violations), self.checked)


# ----------------------------------------------------------------------
# Queue no-loss / no-duplicate delivery
# ----------------------------------------------------------------------
class QueueMonitor:
    """Incremental shadow of ``checkers.check_queue_delivery``.

    Per-record sequence accounting: every acknowledged push is tracked as
    ``value -> (shard, push seqnum)`` until its delivery is confirmed, at
    which point the entry is retired — state is bounded by the in-flight
    backlog, not the run length. Per shard, delivered push seqnums must
    be strictly increasing (FIFO replay delivers oldest-first), which
    catches a duplicate or reordered delivery in O(1) at the pop that
    exhibits it. Losses are only decidable once the scenario drains the
    queue; ``finish(drained=True)`` flushes them.
    """

    name = "queue-delivery"

    def __init__(self):
        self.checked = 0
        self.violations: List[str] = []
        # value key -> [shard, seqnum or None, status, delivered]
        # status: "inflight" | "acked" | "failed"
        self._pending: Dict[str, list] = {}
        # (queue, shard) -> last delivered push seqnum
        self._last_delivered: Dict[Tuple[str, int], int] = {}
        self.pushes = 0
        self.pops = 0
        self.delivered = 0

    def on_push_attempt(self, queue: str, shard: int, value: Any) -> None:
        self.checked += 1
        self.pushes += 1
        key = _value_key(value)
        if key in self._pending:
            # Monitoring relies on the scenarios' unique-payload convention
            # (the offline checker does too).
            self.violations.append(
                f"value {key} pushed twice: payloads must be unique for "
                f"delivery accounting"
            )
            return
        self._pending[key] = [shard, None, "inflight", 0]

    def on_push_ack(self, queue: str, shard: int, value: Any, seqnum: int) -> None:
        entry = self._pending.get(_value_key(value))
        if entry is None:
            return
        entry[1] = seqnum
        entry[2] = "acked"
        if entry[3]:  # delivered before the ack raced back to the producer
            self._retire(queue, value, entry)

    def on_push_fail(self, queue: str, shard: int, value: Any) -> None:
        entry = self._pending.get(_value_key(value))
        if entry is not None and entry[2] == "inflight":
            entry[2] = "failed"  # indeterminate: may surface zero or one time

    def on_pop(self, queue: str, shard: int, value: Any) -> None:
        self.checked += 1
        self.pops += 1
        if value is None:
            return  # empty poll: no delivery to account
        key = _value_key(value)
        entry = self._pending.get(key)
        if entry is None:
            self.violations.append(
                f"value {key} popped but never pushed, or already delivered "
                f"(phantom/duplicate)"
            )
            return
        if entry[3]:
            self.violations.append(
                f"value {key} popped {entry[3] + 1} times (duplicate delivery)"
            )
            entry[3] += 1
            return
        entry[3] = 1
        self.delivered += 1
        if entry[1] is not None:
            self._check_order(queue, shard, key, entry[1])
            self._retire(queue, value, entry)
        # else: delivery observed before the push ack (the record was
        # durable; only the producer's ack message is still in flight) —
        # retired when on_push_ack arrives.

    def _check_order(self, queue: str, shard: int, key: str, seqnum: int) -> None:
        last = self._last_delivered.get((queue, shard), -1)
        if seqnum <= last:
            self.violations.append(
                f"shard {shard} of {queue!r}: delivered push seqnum {seqnum} "
                f"<= previously delivered {last} (duplicate or reorder)"
            )
        else:
            self._last_delivered[(queue, shard)] = seqnum

    def _retire(self, queue: str, value: Any, entry: list) -> None:
        self._pending.pop(_value_key(value), None)

    def finish(self, drained: bool = True) -> None:
        """Flush loss checks: with the queue drained, an acknowledged push
        still pending delivery is a lost message."""
        if not drained:
            self._pending.clear()
            return
        for key in sorted(self._pending):
            shard, seqnum, status, delivered = self._pending[key]
            if status == "acked" and not delivered:
                self.violations.append(
                    f"value {key} acknowledged but never popped (lost)"
                )
        self._pending.clear()

    def result(self) -> MonitorResult:
        return MonitorResult(self.name, list(self.violations), self.checked)


# ----------------------------------------------------------------------
# BokiFlow exactly-once effect application
# ----------------------------------------------------------------------
class FlowMonitor:
    """Incremental shadow of ``checkers.check_exactly_once``: the database
    reports every *applied* update that carries an effect id; a repeat of
    an already-applied id is flagged at the exact write that duplicates
    it. State is one set entry per workflow step (bounded by workload
    size, not history length — ids retire with their workflows offline,
    but the scenarios here are short enough to keep them all)."""

    name = "exactly-once-effects"

    def __init__(self):
        self.checked = 0
        self.violations: List[str] = []
        self._applied: Dict[str, int] = {}

    def on_effect(self, effect_id: Any, table: str, key: Any) -> None:
        self.checked += 1
        eid_key = _value_key(
            list(effect_id) if isinstance(effect_id, tuple) else effect_id
        )
        count = self._applied.get(eid_key, 0) + 1
        self._applied[eid_key] = count
        if count > 1:
            self.violations.append(
                f"effect {eid_key} applied {count} times (duplicate)"
            )

    def finish(self, expected_effects: Optional[List[Any]] = None) -> None:
        for eid in expected_effects or []:
            eid_key = _value_key(list(eid) if isinstance(eid, tuple) else eid)
            if self._applied.get(eid_key, 0) == 0:
                self.violations.append(f"effect {eid_key} never applied (lost write)")

    def result(self) -> MonitorResult:
        return MonitorResult(self.name, list(self.violations), self.checked)


# ----------------------------------------------------------------------
# Read freshness: append -> readable lag per shard
# ----------------------------------------------------------------------
class FreshnessMonitor:
    """Measures the append->readable lag: the virtual time between an
    engine accepting an append and the record becoming readable (its
    covering metalog entry applied locally). One in-flight entry per
    outstanding append; one :class:`SampleWindow` per shard. Sealed terms
    abort their in-flight appends — those are discarded, not counted."""

    name = "read-freshness"

    def __init__(self, max_age: float = 60.0):
        self.checked = 0
        self.violations: List[str] = []
        self.max_age = max_age
        self._inflight: Dict[Tuple[str, int], float] = {}
        self.per_shard: Dict[str, SampleWindow] = {}
        #: Per-tenant freshness windows (repro.tenant feeds these via
        #: :meth:`observe_tenant`); empty unless tenancy is in use.
        self.per_tenant: Dict[str, SampleWindow] = {}
        self.overall = SampleWindow()
        self.aborted = 0

    def on_append_start(self, shard: str, local_id: int, t: float) -> None:
        self._inflight[(shard, local_id)] = t

    def on_append_done(self, shard: str, local_id: int, t: float) -> None:
        t0 = self._inflight.pop((shard, local_id), None)
        if t0 is None:
            return
        self.checked += 1
        lag = t - t0
        if lag < 0:
            self.violations.append(
                f"shard {shard} append {local_id}: negative freshness lag {lag}"
            )
            return
        window = self.per_shard.get(shard)
        if window is None:
            window = self.per_shard[shard] = SampleWindow()
        window.record(t, lag)
        self.overall.record(t, lag)
        if self.overall.samples and t - self.overall.samples[0][0] > 4 * self.max_age:
            cutoff = t - self.max_age
            self.overall.prune(cutoff)
            for w in self.per_shard.values():
                w.prune(cutoff)

    def on_append_abort(self, shard: str, local_id: int) -> None:
        if self._inflight.pop((shard, local_id), None) is not None:
            self.aborted += 1

    def observe_tenant(self, tenant: str, t: float, lag: float) -> None:
        """Record one tenant-attributed freshness sample (the tenancy hub
        forwards workload-measured append->readable lags here, so
        per-tenant freshness SLOs can be checked from one place)."""
        window = self.per_tenant.get(tenant)
        if window is None:
            window = self.per_tenant[tenant] = SampleWindow()
        window.record(t, lag)

    def summary(self) -> dict:
        stats = self.overall.stats()
        doc = {
            "appends": self.checked,
            "aborted": self.aborted,
            "mean_s": round(stats["mean"], 9) if stats["count"] else None,
            "max_s": round(stats["max"], 9) if stats["count"] else None,
            "p99_s": (
                round(self.overall.quantile(0.99), 9)
                if stats["count"] else None
            ),
            "shards": len(self.per_shard),
        }
        if self.per_tenant:
            # Key present only when tenancy fed samples: historical
            # (single-tenant) summaries stay byte-identical.
            tenants = {}
            for tenant in sorted(self.per_tenant):
                window = self.per_tenant[tenant]
                tstats = window.stats()
                tenants[tenant] = {
                    "samples": tstats["count"],
                    "p99_s": (round(window.quantile(0.99), 9)
                              if tstats["count"] else None),
                }
            doc["tenants"] = tenants
        return doc

    def result(self) -> MonitorResult:
        return MonitorResult(self.name, list(self.violations), self.checked)


# ----------------------------------------------------------------------
# Storage record-count reconciliation
# ----------------------------------------------------------------------
class StorageMonitor:
    """Record-count reconciliation between storage nodes and the metalog.

    Every storage apply carries ``(term, log, shard, position)``. A node
    backs only some shards of a log, so its applied positions are sparse
    — but still strictly increasing within one node incarnation (state
    is keyed by the node's crash count: a restarted node legitimately
    re-applies from scratch). Two invariants are *violations*:

    - a node applies the same or an earlier position again without
      having crashed (duplicate apply);
    - a node applies a position the metalog has not ordered yet
      (phantom ordering — checked against the metalog monitor's running
      totals, which are updated before the entry is broadcast).

    Cross-node record-count reconciliation — per ``(term, log, shard)``,
    how many records each backing node applied vs the metalog's ordered
    total — is reported in :meth:`summary` rather than flagged: in-flight
    broadcasts and crash-lost replicas make transient disagreement
    legitimate, so it is a diagnostic, not an invariant."""

    name = "record-reconciliation"

    def __init__(self, metalog: Optional[MetalogMonitor] = None):
        self.checked = 0
        self.violations: List[str] = []
        self._metalog = metalog
        # (storage, incarnation, term, log) -> last applied position
        self._last_pos: Dict[Tuple[str, int, int, int], int] = {}
        # (term, log) -> {storage -> applied record count}
        self._counts: Dict[Tuple[int, int], Dict[str, int]] = {}

    def on_apply(
        self, storage: str, incarnation: int, term: int, log_id: int,
        shard: str, pos: int,
    ) -> None:
        self.checked += 1
        key = (storage, incarnation, term, log_id)
        last = self._last_pos.get(key)
        label = f"{storage} ({term},{log_id})"
        if last is not None and pos <= last:
            self.violations.append(
                f"{label}: applied position {pos} <= already applied "
                f"{last} (duplicate apply)"
            )
            return
        self._last_pos[key] = pos
        counts = self._counts.setdefault((term, log_id), {})
        counts[storage] = counts.get(storage, 0) + 1
        if self._metalog is not None:
            ordered = self._metalog.ordered_total.get((term, log_id))
            if ordered is not None and pos >= ordered:
                self.violations.append(
                    f"{label}: applied position {pos} but the metalog has "
                    f"only ordered {ordered} records"
                )

    def finish(self) -> None:
        pass  # reconciliation is reported via summary(), not violations

    def summary(self) -> dict:
        """Per-log reconciliation: metalog ordered total vs per-node
        applied counts (JSON-serializable, deterministic order)."""
        out = {}
        for key in sorted(self._counts):
            term, log_id = key
            ordered = (
                self._metalog.ordered_total.get(key)
                if self._metalog is not None else None
            )
            out[f"{term}:{log_id}"] = {
                "ordered": ordered,
                "applied": dict(sorted(self._counts[key].items())),
            }
        return out

    def result(self) -> MonitorResult:
        return MonitorResult(self.name, list(self.violations), self.checked)


# ----------------------------------------------------------------------
# The hub: tap fan-in + verdict assembly
# ----------------------------------------------------------------------
class MonitorHub:
    """Fan-in point for every event tap, owner of the per-guarantee
    monitors, and (optionally) host of the alerting layer.

    Components hold ``self.monitor = None`` by default; wiring a hub in
    (``BokiCluster.enable_monitoring``) swaps the attribute, and every tap
    site is guarded by ``if self.monitor is not None`` — the disabled path
    costs one attribute load."""

    def __init__(self, env=None):
        self.env = env
        self.metalog = MetalogMonitor()
        self.queue = QueueMonitor()
        self.flow = FlowMonitor()
        self.freshness = FreshnessMonitor()
        self.storage = StorageMonitor(metalog=self.metalog)
        self.availability = SuccessWindow()
        self.latency_ms = SampleWindow()
        self.shed = SuccessWindow()
        self.shed_by_reason: Dict[str, int] = {}
        self.events_seen = 0
        self.alerts = None      # AlertManager, attached by enable_monitoring
        self.recorder = None    # FlightRecorder, attached by enable_monitoring
        self._finished = False

    # -- taps (called synchronously from the components) ---------------
    def _forward_violations(self, monitor, before: int) -> None:
        """New violations go to the flight recorder as they happen."""
        if self.recorder is not None and len(monitor.violations) > before:
            t = self.env.now if self.env is not None else 0.0
            for message in monitor.violations[before:]:
                self.recorder.on_violation(t, monitor.name, message)

    def on_metalog_entry(self, node: str, term: int, log_id: int, entry) -> None:
        self.events_seen += 1
        before = len(self.metalog.violations)
        self.metalog.on_entry(node, term, log_id, entry)
        self._forward_violations(self.metalog, before)

    def on_storage_apply(
        self, storage: str, incarnation: int, term: int, log_id: int,
        shard: str, pos: int,
    ) -> None:
        self.events_seen += 1
        before = len(self.storage.violations)
        self.storage.on_apply(storage, incarnation, term, log_id, shard, pos)
        self._forward_violations(self.storage, before)

    def on_append_start(self, shard: str, local_id: int, t: float) -> None:
        self.events_seen += 1
        self.freshness.on_append_start(shard, local_id, t)

    def on_append_done(self, shard: str, local_id: int, t: float) -> None:
        self.events_seen += 1
        self.freshness.on_append_done(shard, local_id, t)

    def on_append_abort(self, shard: str, local_id: int) -> None:
        self.events_seen += 1
        self.freshness.on_append_abort(shard, local_id)

    def on_queue_push_attempt(self, queue: str, shard: int, value: Any) -> None:
        self.events_seen += 1
        self.queue.on_push_attempt(queue, shard, value)

    def on_queue_push_ack(self, queue: str, shard: int, value: Any, seqnum: int) -> None:
        self.events_seen += 1
        self.queue.on_push_ack(queue, shard, value, seqnum)

    def on_queue_push_fail(self, queue: str, shard: int, value: Any) -> None:
        self.events_seen += 1
        self.queue.on_push_fail(queue, shard, value)

    def on_queue_pop(self, queue: str, shard: int, value: Any) -> None:
        self.events_seen += 1
        before = len(self.queue.violations)
        self.queue.on_pop(queue, shard, value)
        self._forward_violations(self.queue, before)

    def on_effect(self, effect_id: Any, table: str, key: Any) -> None:
        self.events_seen += 1
        before = len(self.flow.violations)
        self.flow.on_effect(effect_id, table, key)
        self._forward_violations(self.flow, before)

    def on_invoke(self, t_start: float, t_end: float, ok: bool) -> None:
        """Gateway client operation completed (or failed).

        Samples are keyed by *completion* time: overlapping operations
        complete out of invoke order, and completion time is the moment
        the outcome is known (what burn-rate windows measure anyway)."""
        self.events_seen += 1
        self.availability.record(t_end, ok, t_done=t_end if ok else None)
        if ok:
            self.latency_ms.record(t_end, (t_end - t_start) * 1e3)
        if self.recorder is not None:
            self.recorder.on_metric(
                t_end, "gateway.op",
                {"ok": ok, "latency_ms": round((t_end - t_start) * 1e3, 6)},
            )

    def on_admission(self, t: float, admitted: bool, priority: str,
                     reason: str) -> None:
        """Admission decision (gateway limiter or a node window) from
        :mod:`repro.admission`. ``ok`` samples feed the shed-rate burn
        window; sheds also land in the flight recorder."""
        self.events_seen += 1
        self.shed.record(t, admitted)
        if not admitted:
            self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
            if self.recorder is not None:
                self.recorder.on_metric(
                    t, "admission.shed",
                    {"priority": priority, "reason": reason},
                )

    def on_fault(self, entry: dict) -> None:
        """Fault injector applied an event (already timeline-shaped)."""
        self.events_seen += 1
        if self.recorder is not None:
            self.recorder.on_fault(entry)

    # -- verdict assembly ----------------------------------------------
    def monitors(self) -> List:
        return [self.metalog, self.queue, self.flow, self.freshness, self.storage]

    def results(self) -> List[MonitorResult]:
        return [m.result() for m in self.monitors()]

    def finish(
        self,
        drained: bool = True,
        expected_effects: Optional[List[Any]] = None,
    ) -> None:
        """Run the end-of-run flushes (loss checks need quiescence)."""
        if self._finished:
            return
        self._finished = True
        self.queue.finish(drained=drained)
        self.flow.finish(expected_effects=expected_effects)
        self.storage.finish()

    def admission_summary(self) -> dict:
        """Windowless admission accounting for the verdict: how many
        arrivals the admission layer saw, how many it shed, and why."""
        count, ok = self.shed.counts()
        return {
            "decisions": count,
            "admitted": ok,
            "shed": count - ok,
            "shed_rate": round((count - ok) / count, 6) if count else None,
            "by_reason": dict(sorted(self.shed_by_reason.items())),
        }

    def verdict(self) -> dict:
        """Deterministic JSON-serializable online verdict (the ``online``
        key of a ``repro.chaos/2`` artifact)."""
        checks = [m.result().to_dict() for m in self.monitors()]
        doc = {
            "enabled": True,
            "events_seen": self.events_seen,
            "checks": checks,
            "passed": all(c["ok"] for c in checks),
            "freshness": self.freshness.summary(),
            "reconciliation": self.storage.summary(),
            "admission": self.admission_summary(),
            "alerts": (
                [a.to_dict() for a in self.alerts.alerts]
                if self.alerts is not None else []
            ),
        }
        return doc
