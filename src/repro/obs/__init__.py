"""Deterministic observability for the simulated Boki cluster.

The DES substrate makes distributed tracing uniquely cheap and exact:
virtual timestamps are deterministic, so two runs with the same seed
produce byte-identical traces, and instrumentation never perturbs the
simulated clock (spans are plain Python objects; no events are created).

Modules
-------
``trace``
    Spans with parent/child causality and a :class:`SpanContext` that
    piggybacks on network messages, following a request across nodes.
``registry``
    A central :class:`MetricsRegistry` of named counters, gauges, and
    histograms.
``profile``
    DES-kernel instrumentation: event-queue depth, events per virtual
    second, and per-node CPU busy time.
``export``
    Chrome ``trace_event`` JSON and plain-text latency attribution.
``critical_path``
    Exact critical-path extraction over a request's span tree, with
    per-component (network / sequencer / storage / engine / compute)
    attribution that sums to the end-to-end latency.
``bench``
    Benchmark run artifacts, committed baselines, and the
    improved/unchanged/regressed comparator behind
    ``python -m repro.obs bench run|compare|report``.
``recorder``
    The enabled/disabled switch; disabled tracing costs one attribute
    check on the hot path.
"""

# Initialize the sim substrate before any obs submodule: obs modules pull
# from repro.sim.kernel/metrics while repro.sim.network pulls the DISABLED
# recorder from here, and the cycle only resolves in this order (e.g. when
# ``python -m repro.obs`` makes this package the first import).
import repro.sim  # noqa: F401  (import-order dependency, see above)

from repro.obs.bench import (
    ArtifactWriter,
    BenchmarkArtifact,
    MetricDelta,
    compare_artifacts,
    load_artifact,
    validate_artifact,
)
from repro.obs.critical_path import (
    AttributionAggregate,
    attribute_trace,
    categorize,
    critical_path,
    critical_path_report,
)
from repro.obs.export import (
    attribution_report,
    self_times,
    slowest_trace,
    to_chrome_trace,
    trace_spans,
    write_chrome_trace,
)
from repro.obs.profile import KernelProfiler, NodeProfile
from repro.obs.recorder import DISABLED, ObsRecorder
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry, registry_from_cluster
from repro.obs.trace import Span, SpanContext, Tracer

__all__ = [
    "ArtifactWriter",
    "AttributionAggregate",
    "BenchmarkArtifact",
    "Counter",
    "DISABLED",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricDelta",
    "MetricsRegistry",
    "NodeProfile",
    "ObsRecorder",
    "Span",
    "SpanContext",
    "Tracer",
    "attribute_trace",
    "attribution_report",
    "categorize",
    "compare_artifacts",
    "critical_path",
    "critical_path_report",
    "load_artifact",
    "registry_from_cluster",
    "self_times",
    "slowest_trace",
    "to_chrome_trace",
    "trace_spans",
    "validate_artifact",
    "write_chrome_trace",
]
