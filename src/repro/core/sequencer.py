"""Sequencer nodes: metalog replicas and the primary driver (§4.1, §4.3).

Every metalog is stored by ``nmeta`` sequencers; one is primary. Only the
primary appends: it aggregates the storage nodes' progress vectors into the
global progress vector (element-wise minimum per shard over the shard's
backers), and periodically appends it — together with any queued trim
commands — as a new metalog entry. An entry is appended once a quorum of
sequencers (counting the primary) acknowledges it; the primary always waits
for the previous entry before issuing the next. Appended entries are then
propagated to subscribers (engines and storage nodes).

Sealing (§4.5, Delos's protocol): on ``seq.seal`` the primary stops issuing
entries and secondaries commit to rejecting future entries; the ack carries
the replica's length so the controller can determine the final tail.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.core.config import BokiConfig, TermConfig
from repro.core.metalog import Metalog, MetalogEntry, SealedError, TrimCommand, freeze_progress
from repro.core.ordering import merge_progress_by_shard
from repro.obs.recorder import DISABLED
from repro.obs.trace import STATUS_ERROR, STATUS_OK
from repro.sim.kernel import Environment, Interrupt
from repro.sim.network import Network, RpcError, RpcTimeout
from repro.sim.node import Node


class _PrimaryState:
    """The primary's volatile ordering state for one (term, log)."""

    def __init__(self) -> None:
        self.reports: Dict[str, Dict[str, int]] = {}  # storage node -> vector
        self.pending_trims: List[TrimCommand] = []


class SequencerNode:
    """A simulated sequencer node."""

    def __init__(self, env: Environment, net: Network, name: str, config: BokiConfig):
        self.env = env
        self.net = net
        self.config = config
        self.node = net.register(Node(env, name, cpu_capacity=8))
        self.term_config: Optional[TermConfig] = None
        #: (term, log) -> local metalog replica
        self.replicas: Dict[Tuple[int, int], Metalog] = {}
        self._primary_state: Dict[Tuple[int, int], _PrimaryState] = {}
        self._drivers: Dict[Tuple[int, int], object] = {}
        self.entries_appended = 0
        self.obs = DISABLED
        #: Online monitor hub (repro.monitor), set by enable_monitoring;
        #: None keeps the tap-free fast path.
        self.monitor = None
        self._register_handlers()

    @property
    def name(self) -> str:
        return self.node.name

    def _register_handlers(self) -> None:
        self.node.handle("seq.report_progress", self._h_report_progress)
        self.node.handle("seq.append_trim", self._h_append_trim)
        self.node.handle("seq.replicate", self._h_replicate)
        self.node.handle("seq.seal", self._h_seal)
        self.node.handle("seq.fetch_entries", self._h_fetch_entries)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(self, term_config: TermConfig) -> None:
        """Create replicas for this term's logs and start primary drivers."""
        self.term_config = term_config
        term = term_config.term_id
        for log_id, asg in term_config.logs.items():
            if self.name not in asg.sequencers:
                continue
            key = (term, log_id)
            self.replicas[key] = Metalog(log_id, term)
            if asg.primary == self.name:
                self._primary_state[key] = _PrimaryState()
                self._drivers[key] = self.node.spawn(
                    self._drive(term_config, log_id), name=f"{self.name}:drive:{log_id}"
                )

    # ------------------------------------------------------------------
    # Primary: ordering
    # ------------------------------------------------------------------
    def _h_report_progress(self, payload: dict) -> None:
        key = (payload["term"], payload["log_id"])
        state = self._primary_state.get(key)
        if state is None:
            return  # not primary for this log (stale message)
        state.reports[payload["storage"]] = dict(payload["vector"])

    def _h_append_trim(self, payload: dict) -> bool:
        key = (payload["term"], payload["log_id"])
        state = self._primary_state.get(key)
        if state is None:
            raise SealedError(f"not primary for {key}")
        replica = self.replicas.get(key)
        if replica is None or replica.sealed:
            raise SealedError(f"metalog {key} sealed")
        state.pending_trims.append(
            TrimCommand(payload["book_id"], payload["tag"], payload["until_seqnum"])
        )
        return True

    def _drive(self, term_config: TermConfig, log_id: int) -> Generator:
        """The primary's periodic ordering loop for one metalog."""
        term = term_config.term_id
        key = (term, log_id)
        asg = term_config.assignment(log_id)
        replica = self.replicas[key]
        state = self._primary_state[key]
        secondaries = [s for s in asg.sequencers if s != self.name]
        quorum = self.config.quorum()
        try:
            while not replica.sealed:
                yield self.env.timeout(self.config.metalog_interval)
                if replica.sealed:
                    return
                vector = merge_progress_by_shard(state.reports, asg.shard_storage)
                trims = tuple(state.pending_trims)
                if vector == replica.tail_progress() and not trims:
                    continue
                # Progress must never regress (a late report from a slow
                # replica could otherwise shrink the minimum).
                tail = replica.tail_progress()
                vector = {s: max(c, tail.get(s, 0)) for s, c in vector.items()}
                entry = MetalogEntry(
                    index=len(replica),
                    progress=freeze_progress(vector),
                    start_pos=replica.total_ordered(),
                    trims=trims,
                )
                # Replicate this exact entry until a quorum acks it. Retrying
                # with different content at the same index would diverge any
                # secondary that already stored the first attempt.
                span = None
                if self.obs.enabled:
                    # Background ordering work: each committed entry is its
                    # own (root) trace covering the quorum round trips.
                    span = self.obs.tracer.start_trace(
                        "seq.quorum", node=self.name, kind="sequencer",
                        attrs={"log_id": log_id, "entry": entry.index},
                    )
                    self.obs.tracer.set_process_context(span.context)
                while True:
                    acks = 1  # self
                    calls = [
                        self.net.rpc(
                            self.node, sec, "seq.replicate",
                            {"term": term, "log_id": log_id, "entry": entry},
                            timeout=0.05,
                        )
                        for sec in secondaries
                    ]
                    for call in calls:
                        try:
                            ok = yield call
                            if ok:
                                acks += 1
                        except (RpcError, RpcTimeout):
                            continue
                    if acks >= quorum:
                        break
                    if replica.sealed:
                        if span is not None:
                            span.finish(STATUS_ERROR, error="sealed before quorum")
                            self.obs.tracer.set_process_context(None)
                        return
                    yield self.env.timeout(self.config.metalog_interval)
                try:
                    replica.append(entry)
                except SealedError:
                    if span is not None:
                        span.finish(STATUS_ERROR, error="sealed at append")
                        self.obs.tracer.set_process_context(None)
                    return
                if span is not None:
                    span.finish(STATUS_OK, acks=acks)
                    self.obs.tracer.set_process_context(None)
                if self.monitor is not None:
                    self.monitor.on_metalog_entry(self.name, term, log_id, entry)
                state.pending_trims = state.pending_trims[len(trims):]
                self.entries_appended += 1
                payload = {"term": term, "log_id": log_id, "entry": entry}
                for subscriber in asg.subscribers():
                    self.net.send(self.node, subscriber, "metalog.entry", payload)
        except Interrupt:
            return

    # ------------------------------------------------------------------
    # Secondary: replication
    # ------------------------------------------------------------------
    def _h_replicate(self, payload: dict) -> bool:
        key = (payload["term"], payload["log_id"])
        replica = self.replicas.get(key)
        if replica is None:
            raise SealedError(f"no replica for {key} on {self.name}")
        if replica.sealed:
            raise SealedError(f"metalog {key} sealed on {self.name}")
        entry: MetalogEntry = payload["entry"]
        if entry.index < len(replica):
            return True  # duplicate (primary retry)
        if entry.index > len(replica):
            raise SealedError(f"gap in replication at {self.name}")
        replica.append(entry)
        if self.monitor is not None:
            self.monitor.on_metalog_entry(
                self.name, payload["term"], payload["log_id"], entry
            )
        return True

    # ------------------------------------------------------------------
    # Sealing & catch-up
    # ------------------------------------------------------------------
    def _h_seal(self, payload: dict) -> int:
        key = (payload["term"], payload["log_id"])
        replica = self.replicas.get(key)
        if replica is None:
            # Seal of a log we never hosted: report empty.
            replica = self.replicas[key] = Metalog(payload["log_id"], payload["term"])
        length = replica.seal()
        driver = self._drivers.get(key)
        if driver is not None and getattr(driver, "is_alive", False):
            driver.interrupt("sealed")
        return length

    def _h_fetch_entries(self, payload: dict) -> List[MetalogEntry]:
        key = (payload["term"], payload["log_id"])
        replica = self.replicas.get(key)
        if replica is None:
            return []
        return replica.entries_from(payload["from_index"])
