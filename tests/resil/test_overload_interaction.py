"""The resil <-> admission contract: overload sheds are definite, cheap
failures — never charged to the retry budget, never counted against a
circuit breaker, and always retried no earlier than the shedder's
retry-after hint. This is what turns a retry storm into paced, bounded
re-offered load instead of metastable amplification.
"""

import pytest

from repro.admission import Overloaded
from repro.resil import (
    FAILURE,
    OVERLOAD,
    TIMEOUT,
    Resilience,
    RetryBudget,
    RetryPolicy,
    classify,
)
from repro.sim import Environment
from repro.sim.network import RpcError, RpcTimeout
from repro.sim.randvar import RandomStreams

pytestmark = pytest.mark.admission

#: Deterministic policy for the retry-loop tests: no jitter, tiny base
#: delay so the retry-after floor is clearly what paces the loop.
POLICY = RetryPolicy(max_attempts=4, base_delay=1e-3, max_delay=1e-3,
                     jitter=0.0, retry_timeouts=True)


def make_resil(env, net=None, policy=POLICY, budget=None, threshold=5):
    return Resilience(env, net, RandomStreams(seed=1), policy=policy,
                      budget=budget or RetryBudget(initial=5.0, ratio=0.0),
                      breaker_threshold=threshold)


def shed_error(retry_after=0.05):
    """An admission shed as the gateway relays it to clients."""
    return RpcError("faas.invoke",
                    Overloaded("gateway", "concurrency-limit",
                               retry_after=retry_after))


class TestClassification:
    def test_overloaded_is_its_own_failure_kind(self):
        assert classify(Overloaded("gateway", "deadline")) == OVERLOAD

    def test_overload_survives_rpc_relay_nesting(self):
        shed = Overloaded("storage.s-1", "window-full", retry_after=0.02)
        relayed = RpcError("faas.invoke", RpcError("engine.relay", shed))
        assert classify(relayed) == OVERLOAD

    def test_overload_outranks_the_timeout_failure_split(self):
        # Without the overload marker these classify as before.
        assert classify(RpcTimeout("m", "dst", 1.0)) == TIMEOUT
        assert classify(RpcError("m", ValueError())) == FAILURE


class TestRetryAfterFloor:
    def test_hint_floors_the_backoff_delay(self):
        resil = make_resil(Environment())
        assert resil._retry_delay(POLICY, 0, shed_error(0.5)) == \
            pytest.approx(0.5)

    def test_larger_backoff_wins_over_a_small_hint(self):
        resil = make_resil(Environment())
        slow = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.0)
        assert resil._retry_delay(slow, 0, shed_error(0.1)) == \
            pytest.approx(1.0)

    def test_no_hint_means_plain_backoff(self):
        resil = make_resil(Environment())
        exc = RpcError("m", ValueError())
        assert resil._retry_delay(POLICY, 0, exc) == pytest.approx(1e-3)


def _drive(env, resil, attempt_fn, until=10.0):
    """Run ``resil.call(attempt_fn)`` to completion; returns (result,
    error) with exactly one of the two set."""
    out = {}

    def driver():
        try:
            out["result"] = yield from resil.call(attempt_fn)
        except Exception as exc:  # noqa: BLE001 — the assertion target
            out["error"] = exc

    env.process(driver())
    env.run(until=until)
    return out.get("result"), out.get("error")


class TestBudgetExemption:
    def test_shed_retries_charge_no_budget_and_pace_at_the_hint(self):
        env = Environment()
        resil = make_resil(env)
        calls = []

        def attempt():
            calls.append(env.now)
            if len(calls) < 3:
                raise shed_error(0.05)
            return "ok"
            yield  # pragma: no cover — makes this a generator function

        result, error = _drive(env, resil, attempt)
        assert result == "ok" and error is None
        assert resil.counters["retries"] == 2
        # No budget token was spent on either shed retry...
        assert resil.budget.spent == 0
        assert resil.budget.denied == 0
        # ...and each retry waited the full retry-after hint, not the
        # 1ms backoff: arrivals at t=0, 0.05, 0.10.
        assert calls == [pytest.approx(0.0), pytest.approx(0.05),
                         pytest.approx(0.10)]

    def test_ordinary_failures_still_charge_the_budget(self):
        env = Environment()
        resil = make_resil(env)
        calls = []

        def attempt():
            calls.append(env.now)
            if len(calls) < 3:
                raise RpcError("m", ValueError("boom"))
            return "ok"
            yield  # pragma: no cover

        result, _ = _drive(env, resil, attempt)
        assert result == "ok"
        assert resil.budget.spent == 2

    def test_exhausted_budget_denies_failure_retries(self):
        env = Environment()
        resil = make_resil(env, budget=RetryBudget(initial=0.0, ratio=0.0))

        def attempt():
            raise RpcError("m", ValueError("boom"))
            yield  # pragma: no cover

        result, error = _drive(env, resil, attempt)
        assert result is None
        assert isinstance(error, RpcError)
        assert resil.counters["retries"] == 0
        assert resil.budget.denied == 1

    def test_exhausted_budget_does_not_block_shed_retries(self):
        """The whole point of the exemption: when the budget is gone
        (e.g. burned by a real outage) shed requests still re-offer at
        the shedder's pace — they add no amplification to bound."""
        env = Environment()
        resil = make_resil(env, budget=RetryBudget(initial=0.0, ratio=0.0))
        calls = []

        def attempt():
            calls.append(env.now)
            if len(calls) < 2:
                raise shed_error(0.05)
            return "ok"
            yield  # pragma: no cover

        result, error = _drive(env, resil, attempt)
        assert result == "ok" and error is None
        assert resil.counters["retries"] == 1
        assert resil.budget.denied == 0


class _ScriptedNet:
    """A Network stand-in whose rpc() fails with scripted errors, then
    succeeds — enough to exercise Resilience.rpc's breaker accounting."""

    def __init__(self, env, errors):
        self.env = env
        self.errors = list(errors)

    def rpc(self, src, dst, method, payload, timeout=None):
        event = self.env.event()
        if self.errors:
            event.fail(self.errors.pop(0))
        else:
            event.succeed("ok")
        return event


class TestBreakerExemption:
    def test_sheds_never_trip_the_breaker(self):
        env = Environment()
        net = _ScriptedNet(env, [shed_error(0.01)] * 3)
        resil = make_resil(env, net=net, threshold=2)
        out = {}

        def driver():
            out["result"] = yield from resil.rpc("client", "dst", "m")

        env.process(driver())
        env.run(until=10.0)
        assert out["result"] == "ok"
        breaker = resil.breaker("dst")
        # Three consecutive sheds with threshold 2: a real failure streak
        # would have opened the breaker; sheds left it untouched.
        assert breaker.state == "closed"
        assert breaker.trips == 0
        assert resil.counters["breaker_fast_fails"] == 0

    def test_real_failures_still_trip_the_breaker(self):
        env = Environment()
        net = _ScriptedNet(env, [RpcError("m", ValueError())] * 3)
        resil = make_resil(env, net=net, threshold=2)
        out = {}

        def driver():
            try:
                yield from resil.rpc("client", "dst", "m")
            except Exception as exc:  # noqa: BLE001
                out["error"] = exc

        env.process(driver())
        env.run(until=10.0)
        assert resil.breaker("dst").trips == 1
        assert out["error"] is not None
