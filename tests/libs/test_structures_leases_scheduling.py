"""Tests for durable data structures, shard leases, locality scheduling."""

import pytest

from repro.faas import FunctionContext
from repro.faas.scheduling import LocalityScheduler, enable_locality_scheduling
from repro.libs.bokiflow import BokiFlowRuntime, WorkflowEnv
from repro.libs.bokiqueue import BokiQueue
from repro.libs.bokiqueue.leases import acquire_shard, acquire_shard_wait
from repro.libs.bokistore import BokiStore
from repro.libs.bokistore.structures import (
    DurableCounter,
    DurableList,
    DurableMap,
    DurableRegister,
)
from tests.libs.conftest import drive


def make_store(cluster, book_id=25):
    return BokiStore(cluster.logbook(book_id))


class TestDurableCounter:
    def test_starts_at_zero(self, cluster):
        counter = DurableCounter(make_store(cluster), "hits")

        def flow():
            return (yield from counter.get())

        assert drive(cluster, flow()) == 0

    def test_add_and_get(self, cluster):
        counter = DurableCounter(make_store(cluster), "hits")

        def flow():
            yield from counter.increment()
            yield from counter.add(10)
            yield from counter.decrement()
            return (yield from counter.get())

        assert drive(cluster, flow()) == 10

    def test_two_handles_share_state(self, cluster):
        store = make_store(cluster)
        a = DurableCounter(store, "shared")
        b = DurableCounter(BokiStore(cluster.logbook(25)), "shared")

        def flow():
            yield from a.add(5)
            return (yield from b.get())

        assert drive(cluster, flow()) == 5


class TestDurableRegister:
    def test_set_get(self, cluster):
        reg = DurableRegister(make_store(cluster), "config")

        def flow():
            yield from reg.set({"mode": "on"})
            return (yield from reg.get())

        assert drive(cluster, flow()) == {"mode": "on"}

    def test_default(self, cluster):
        reg = DurableRegister(make_store(cluster), "empty")

        def flow():
            return (yield from reg.get("fallback"))

        assert drive(cluster, flow()) == "fallback"

    def test_cas_success_and_failure(self, cluster):
        reg = DurableRegister(make_store(cluster), "cas")

        def flow():
            yield from reg.set("a")
            ok1 = yield from reg.compare_and_set("a", "b")
            ok2 = yield from reg.compare_and_set("a", "c")  # stale expected
            final = yield from reg.get()
            return ok1, ok2, final

        assert drive(cluster, flow()) == (True, False, "b")


class TestDurableMap:
    def test_put_get_delete(self, cluster):
        m = DurableMap(make_store(cluster), "users")

        def flow():
            yield from m.put("alice", 1)
            yield from m.put("bob", 2)
            yield from m.delete("alice")
            has_alice = yield from m.contains("alice")
            bob = yield from m.get("bob")
            return has_alice, bob

        assert drive(cluster, flow()) == (False, 2)

    def test_keys_and_items(self, cluster):
        m = DurableMap(make_store(cluster), "kv")

        def flow():
            yield from m.put("z", 26)
            yield from m.put("a", 1)
            keys = yield from m.keys()
            items = yield from m.items()
            size = yield from m.size()
            return keys, items, size

        assert drive(cluster, flow()) == (["a", "z"], [("a", 1), ("z", 26)], 2)

    def test_dotted_keys_safe(self, cluster):
        m = DurableMap(make_store(cluster), "dotty")

        def flow():
            yield from m.put("a.b.c", "nested-looking")
            value = yield from m.get("a.b.c")
            keys = yield from m.keys()
            return value, keys

        assert drive(cluster, flow()) == ("nested-looking", ["a.b.c"])


class TestDurableList:
    def test_append_and_read(self, cluster):
        lst = DurableList(make_store(cluster), "events")

        def flow():
            for v in ["x", "y", "z"]:
                yield from lst.append(v)
            return (yield from lst.all()), (yield from lst.get(1))

        assert drive(cluster, flow()) == (["x", "y", "z"], "y")

    def test_pop_front_fifo(self, cluster):
        lst = DurableList(make_store(cluster), "fifo")

        def flow():
            yield from lst.append(1)
            yield from lst.append(2)
            a = yield from lst.pop_front()
            b = yield from lst.pop_front()
            c = yield from lst.pop_front()
            return a, b, c

        assert drive(cluster, flow()) == (1, 2, None)


class TestShardLeases:
    def make_env(self, cluster, name):
        runtime = BokiFlowRuntime(cluster)
        fnode = cluster.function_nodes[0]
        ctx = FunctionContext(node=fnode.node, gateway_invoke=None, book_id=26)
        return WorkflowEnv(runtime, ctx, name)

    def test_each_shard_leased_once(self, cluster):
        q = BokiQueue(cluster.logbook(26), "leased", num_shards=2)

        def flow():
            env1 = self.make_env(cluster, "c1")
            env2 = self.make_env(cluster, "c2")
            env3 = self.make_env(cluster, "c3")
            l1 = yield from acquire_shard(q, env1, "c1")
            l2 = yield from acquire_shard(q, env2, "c2")
            l3 = yield from acquire_shard(q, env3, "c3")
            return (
                l1.shard if l1 else None,
                l2.shard if l2 else None,
                l3 is None,
            )

        s1, s2, none3 = drive(cluster, flow())
        assert {s1, s2} == {0, 1}
        assert none3 is True

    def test_release_frees_shard(self, cluster):
        q = BokiQueue(cluster.logbook(26), "leased2", num_shards=1)

        def flow():
            env1 = self.make_env(cluster, "c1")
            env2 = self.make_env(cluster, "c2")
            lease = yield from acquire_shard(q, env1, "c1")
            yield from lease.release()
            lease2 = yield from acquire_shard(q, env2, "c2")
            return lease2 is not None

        assert drive(cluster, flow()) is True

    def test_leased_consumer_pops(self, cluster):
        q = BokiQueue(cluster.logbook(26), "leased3", num_shards=1)

        def flow():
            yield from q.producer().push("job")
            env = self.make_env(cluster, "worker")
            lease = yield from acquire_shard(q, env, "worker")
            value = yield from lease.consumer.pop()
            yield from lease.release()
            return value

        assert drive(cluster, flow()) == "job"

    def test_start_shard_rotates_scan_order(self, cluster):
        """A consumer re-acquiring with a start offset must reach shards
        beyond shard 0 even when shard 0 is free (drained-shard camping)."""
        q = BokiQueue(cluster.logbook(26), "leased5", num_shards=3)

        def flow():
            env = self.make_env(cluster, "rotator")
            lease = yield from acquire_shard(q, env, "rotator", start_shard=2)
            shard = lease.shard
            yield from lease.release()
            return shard

        assert drive(cluster, flow()) == 2

    def test_acquire_wait_blocks_until_release(self, cluster):
        q = BokiQueue(cluster.logbook(26), "leased4", num_shards=1)
        env_sim = cluster.env
        got = []

        def holder():
            env = self.make_env(cluster, "holder")
            lease = yield from acquire_shard(q, env, "holder")
            yield env_sim.timeout(0.05)
            yield from lease.release()

        def waiter():
            env = self.make_env(cluster, "waiter")
            lease = yield from acquire_shard_wait(q, env, "waiter")
            got.append((lease is not None, env_sim.now))

        ph = env_sim.process(holder())
        pw = env_sim.process(waiter())
        env_sim.run_until(pw, limit=300.0)
        env_sim.run_until(ph, limit=300.0)
        assert got[0][0] is True
        assert got[0][1] >= 0.05


class TestLocalityScheduler:
    def test_prefers_index_nodes(self, cluster):
        scheduler = enable_locality_scheduling(cluster)
        seen_nodes = []

        def probe(ctx, arg):
            seen_nodes.append(ctx.node.name)
            if False:
                yield
            return None

        cluster.register_function("probe", probe)

        def flow():
            for _ in range(8):
                yield from cluster.invoke("probe", book_id=5)

        cluster.drive(flow(), limit=120.0)
        log_id = cluster.term.log_for_book(5)
        index_names = set(cluster.term.assignment(log_id).index_engines)
        assert all(name in index_names for name in seen_nodes)
        assert scheduler.locality_rate == 1.0

    def test_falls_back_without_book(self, cluster):
        scheduler = enable_locality_scheduling(cluster)

        def probe(ctx, arg):
            if False:
                yield
            return None

        cluster.register_function("probe2", probe)

        def flow():
            for _ in range(4):
                yield from cluster.invoke("probe2")  # no book binding

        cluster.drive(flow(), limit=120.0)
        assert scheduler.remote_placements == 4

    def test_falls_back_when_preferred_nodes_dead(self):
        from repro.core import BokiCluster

        c = BokiCluster(num_function_nodes=4, index_engines_per_log=2)
        c.boot()
        enable_locality_scheduling(c)

        def probe(ctx, arg):
            if False:
                yield
            return ctx.node.name

        c.register_function("probe4", probe)
        log_id = c.term.log_for_book(5)
        preferred = set(c.term.assignment(log_id).index_engines)
        for fnode in c.function_nodes:
            if fnode.name in preferred:
                fnode.node.crash()

        def flow():
            return (yield from c.invoke("probe4", book_id=5))

        # With all preferred nodes dead the scheduler still places the
        # invocation on a surviving node.
        survivors = {f.name for f in c.function_nodes if f.node.alive}
        assert survivors
        assert c.drive(flow(), limit=120.0) in survivors

    def test_balances_within_preferred_set(self, cluster):
        enable_locality_scheduling(cluster)
        seen = []

        def probe(ctx, arg):
            seen.append(ctx.node.name)
            yield cluster.env.timeout(0.001)
            return None

        cluster.register_function("probe3", probe)

        def flow():
            for _ in range(12):
                yield from cluster.invoke("probe3", book_id=5)

        cluster.drive(flow(), limit=120.0)
        # All four index engines should receive work.
        assert len(set(seen)) >= 3


class TestLeaseReclaim:
    """Recovering shards whose consumer crashed while holding the lease."""

    def make_env(self, cluster, name):
        runtime = BokiFlowRuntime(cluster)
        fnode = cluster.function_nodes[0]
        ctx = FunctionContext(node=fnode.node, gateway_invoke=None, book_id=26)
        return WorkflowEnv(runtime, ctx, name)

    def test_reclaim_takes_over_dead_consumer_shard(self, cluster):
        from repro.libs.bokiqueue.leases import reclaim_shard

        q = BokiQueue(cluster.logbook(26), "reclaim1", num_shards=1)

        def flow():
            dead_env = self.make_env(cluster, "dead")
            # The consumer acquires, processes nothing, and "crashes":
            # its lease record stays in the log with no release.
            yield from acquire_shard(q, dead_env, "dead-consumer")
            succ_env = self.make_env(cluster, "succ")
            # A successor cannot acquire normally...
            blocked = yield from acquire_shard(q, succ_env, "successor")
            # ...but after (externally) determining the holder is gone it
            # reclaims: force-release chained on the stale acquire + lock.
            lease = yield from reclaim_shard(q, succ_env, 0, "dead-consumer",
                                             "successor")
            return blocked is None, lease

        blocked, lease = drive(cluster, flow())
        assert blocked is True
        assert lease is not None and lease.shard == 0

    def test_reclaimed_lease_consumes_and_releases(self, cluster):
        from repro.libs.bokiqueue.leases import reclaim_shard

        q = BokiQueue(cluster.logbook(26), "reclaim2", num_shards=1)

        def flow():
            yield from q.producer().push("orphaned-job")
            dead_env = self.make_env(cluster, "dead")
            yield from acquire_shard(q, dead_env, "dead-consumer")
            succ_env = self.make_env(cluster, "succ")
            lease = yield from reclaim_shard(q, succ_env, 0, "dead-consumer",
                                             "successor")
            value = yield from lease.consumer.pop()
            yield from lease.release()
            # After the successor releases, a third consumer acquires freely.
            third = yield from acquire_shard(q, self.make_env(cluster, "t"),
                                             "third")
            return value, third is not None

        value, reacquired = drive(cluster, flow())
        assert value == "orphaned-job"
        assert reacquired is True

    def test_racing_reclaims_linearized_one_winner(self, cluster):
        from repro.libs.bokiqueue.leases import reclaim_shard

        q = BokiQueue(cluster.logbook(26), "reclaim3", num_shards=1)
        env_sim = cluster.env
        results = {}

        def setup():
            dead_env = self.make_env(cluster, "dead")
            yield from acquire_shard(q, dead_env, "dead-consumer")

        def racer(name):
            env = self.make_env(cluster, name)
            lease = yield from reclaim_shard(q, env, 0, "dead-consumer", name)
            results[name] = lease

        drive(cluster, setup())
        procs = [env_sim.process(racer(f"succ-{i}")) for i in range(2)]
        env_sim.run_until(env_sim.all_of(procs), limit=600.0)
        winners = [name for name, lease in results.items() if lease is not None]
        assert len(winners) == 1
