"""Tests for exactly-once parallel fan-out invocation."""

import pytest

from repro.baselines.beldi import BeldiRuntime
from repro.baselines.unsafe import UnsafeRuntime
from repro.libs.bokiflow import BokiFlowRuntime
from repro.libs.bokiflow.env import WorkflowCrash
from tests.libs.conftest import drive

ALL_RUNTIMES = [BokiFlowRuntime, BeldiRuntime, UnsafeRuntime]


@pytest.mark.parametrize("runtime_class", ALL_RUNTIMES)
def test_fanout_returns_results_in_order(cluster, runtime_class):
    runtime = runtime_class(cluster)
    name = runtime_class.__name__

    def child(env, arg):
        yield cluster.env.timeout(0.002)
        return arg * 10

    def parent(env, arg):
        return (
            yield from env.invoke_parallel(
                [(f"{name}-child", 1), (f"{name}-child", 2), (f"{name}-child", 3)]
            )
        )

    runtime.register_workflow(f"{name}-child", child)
    runtime.register_workflow(f"{name}-parent", parent)

    def flow():
        return (yield from runtime.start_workflow(f"{name}-parent", book_id=1))

    assert drive(cluster, flow()) == [10, 20, 30]


def test_fanout_actually_parallel(cluster):
    """Three 10ms children in parallel must finish far faster than 30ms of
    serial invokes."""
    runtime = BokiFlowRuntime(cluster)

    def slow_child(env, arg):
        yield cluster.env.timeout(0.01)
        return arg

    def parent(env, arg):
        started = cluster.env.now
        yield from env.invoke_parallel([("slow", i) for i in range(3)])
        return cluster.env.now - started

    runtime.register_workflow("slow", slow_child)
    runtime.register_workflow("par", parent)

    def flow():
        return (yield from runtime.start_workflow("par", book_id=1))

    elapsed = drive(cluster, flow())
    assert elapsed < 0.025  # ~one child duration + protocol, not 3x


def test_fanout_exactly_once_across_crash(cluster):
    """Crash the parent after the fan-out completes; re-execution must not
    re-run any completed child body."""
    runtime = BokiFlowRuntime(cluster)
    child_runs = {"n": 0}
    crash = {"armed": True}

    def child(env, arg):
        child_runs["n"] += 1
        yield from env.write("t", f"eff-{arg}", arg)
        return arg

    def parent(env, arg):
        results = yield from env.invoke_parallel([("fo-child", i) for i in range(3)])
        if crash["armed"]:
            crash["armed"] = False
            raise WorkflowCrash("post-fanout crash")
        return results

    runtime.register_workflow("fo-child", child)
    runtime.register_workflow("fo-parent", parent)

    def flow():
        wf_id = runtime.new_workflow_id()
        try:
            yield from runtime.start_workflow("fo-parent", book_id=1, workflow_id=wf_id)
        except WorkflowCrash:
            pass
        return (
            yield from runtime.start_workflow("fo-parent", book_id=1, workflow_id=wf_id)
        )

    assert drive(cluster, flow()) == [0, 1, 2]
    assert child_runs["n"] == 3  # children did not re-execute


def test_fanout_step_counter_advances_once(cluster):
    runtime = BokiFlowRuntime(cluster)
    steps = []

    def child(env, arg):
        if False:
            yield
        return arg

    def parent(env, arg):
        yield from env.invoke_parallel([("sc-child", 1), ("sc-child", 2)])
        steps.append(env.step)
        yield from env.write("t", "after", "x")
        steps.append(env.step)
        return None

    runtime.register_workflow("sc-child", child)
    runtime.register_workflow("sc-parent", parent)

    def flow():
        yield from runtime.start_workflow("sc-parent", book_id=1)

    drive(cluster, flow())
    assert steps == [1, 2]  # fan-out consumed exactly one step


def test_empty_fanout(cluster):
    runtime = BokiFlowRuntime(cluster)

    def parent(env, arg):
        return (yield from env.invoke_parallel([]))

    runtime.register_workflow("empty-parent", parent)

    def flow():
        return (yield from runtime.start_workflow("empty-parent", book_id=1))

    assert drive(cluster, flow()) == []
