"""BokiFlow locks: linearizable registers over the LogBook (Figure 6b/7).

The LogBook API has no conditional append, so a "test-and-set" cannot be
linearized directly. BokiFlow's solution: every proposed lock-state update
carries the log position (``prev``) of the state-machine tail it observed.
On replay, an update is accepted only if its ``prev`` equals the current
chain tail's seqnum — the *first* of any concurrently proposed updates
wins, and the total order of the log linearizes the rest away (Figure 7's
implicit chain).

Auxiliary data accelerates ``checkLockState``: each lock record's aux slot
caches the chain tail as of that record, so replay restarts from the most
recent record with a cached tail instead of the beginning (§5.4, Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from repro.core.hashing import stable_hash
from repro.libs.bokiflow.env import _TAG_MOD, WorkflowEnv

EMPTY_HOLDER = ""


def lock_tag(key: Any) -> int:
    return stable_hash(("lock", key), salt="bokiflow-lock") % _TAG_MOD + 1


@dataclass
class LockState:
    """The chain tail: the lock's current state."""

    holder: str
    seqnum: int  # seqnum of the chain-tail record


def check_lock_state(env: WorkflowEnv, key: Any) -> Generator:
    """Replay the lock's log to find the chain tail (Figure 6b's
    ``checkLockState``), using aux-cached tails to skip replay (Figure 9).

    Returns a :class:`LockState` or None if the lock has no records."""
    tag = lock_tag(key)
    tail_record = yield from env.book.check_tail(tag=tag)
    if tail_record is None:
        return None
    if tail_record.auxdata is not None:
        cached = tail_record.auxdata
        return LockState(holder=cached["holder"], seqnum=cached["tail_seqnum"])
    # Walk backward to the most recent record with a cached tail.
    replay_from = 0
    chain: Optional[LockState] = None
    cursor = tail_record.seqnum
    while True:
        record = yield from env.book.read_prev(tag=tag, max_seqnum=cursor)
        if record is None:
            break
        if record.auxdata is not None:
            chain = LockState(
                holder=record.auxdata["holder"], seqnum=record.auxdata["tail_seqnum"]
            )
            replay_from = record.seqnum + 1
            break
        if record.seqnum == 0:
            break
        cursor = record.seqnum - 1
    # Replay forward applying the chain rule; fill in missing aux views.
    records = yield from env.book.iter_records(tag=tag, min_seqnum=replay_from)
    for record in records:
        # Figure 6b's chain rule: the first record is always accepted;
        # afterwards only updates chained on the current tail are.
        accepted = chain is None or record.data["prev"] == chain.seqnum
        if accepted:
            chain = LockState(holder=record.data["holder"], seqnum=record.seqnum)
        if record.auxdata is None and chain is not None:
            yield from env.book.set_auxdata(
                record.seqnum, {"holder": chain.holder, "tail_seqnum": chain.seqnum}
            )
    return chain


def try_lock(env: WorkflowEnv, key: Any, holder_id: str) -> Generator:
    """Attempt to acquire; returns the winning LockState (keep it for
    unlock) or None if the lock is held (Figure 6b's ``tryLock``)."""
    tag = lock_tag(key)
    state = yield from check_lock_state(env, key)
    if state is not None and state.holder != EMPTY_HOLDER:
        return None  # held by someone else
    prev = state.seqnum if state is not None else 0
    yield from env.book.append({"holder": holder_id, "prev": prev}, tags=[tag])
    state = yield from check_lock_state(env, key)
    if state is not None and state.holder == holder_id:
        return state  # we are the chain tail: lock acquired
    return None  # a concurrent proposal won


def unlock(env: WorkflowEnv, key: Any, lock_state: LockState) -> Generator:
    """Release: append the EMPTY update chained after our acquire record."""
    tag = lock_tag(key)
    yield from env.book.append(
        {"holder": EMPTY_HOLDER, "prev": lock_state.seqnum}, tags=[tag]
    )
    # Refresh aux caching for the release record.
    yield from check_lock_state(env, key)
