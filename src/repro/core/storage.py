"""Storage nodes: durable record stores for physical-log shards (§4.2-4.3).

Each physical-log shard is replicated on ``ndata`` storage nodes. Storage
nodes:

- accept ``storage.replicate`` writes from the shard-owning engine and
  track, per shard, the contiguous prefix of local_ids received;
- periodically report their progress vectors to the primary sequencer
  (step 2 of the append workflow, Figure 2);
- subscribe to the metalog and, once records are ordered, index them by
  seqnum to serve ``storage.read``;
- reclaim trimmed records in the background;
- optionally store auxiliary-data backups (Table 7's second configuration).

Record payloads are plain dicts (not shared object references) so every
node owns an independent copy, as real message passing would give.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core.config import BokiConfig, TermConfig
from repro.core.metalog import MetalogEntry
from repro.core.ordering import delta_set
from repro.obs.recorder import DISABLED
from repro.core.types import pack_seqnum, seqnum_log_id, seqnum_term
from repro.sim.kernel import Environment, Interrupt
from repro.sim.network import Network
from repro.sim.node import Node


class _ShardStore:
    """Records of one (term, log, shard) this node backs."""

    def __init__(self) -> None:
        self.records: Dict[int, dict] = {}  # local_id -> record payload
        self.contiguous = 0  # local_ids [0, contiguous) all present

    def put(self, local_id: int, payload: dict) -> None:
        self.records[local_id] = payload
        while self.contiguous in self.records:
            self.contiguous += 1


class _LogState:
    """Per-(term, log) metalog application state."""

    def __init__(self) -> None:
        self.applied = 0
        self.prev_progress: Dict[str, int] = {}
        self.buffer: Dict[int, MetalogEntry] = {}
        self.final_len: Optional[int] = None
        self.recovering = False  # a gap-fetch process is in flight


class StorageNode:
    """A simulated storage node."""

    def __init__(self, env: Environment, net: Network, name: str, config: BokiConfig):
        self.env = env
        self.net = net
        self.config = config
        self.node = net.register(Node(env, name, cpu_capacity=config.storage_cpu))
        self.term_config: Optional[TermConfig] = None
        #: (term, log, shard) -> shard store
        self._shards: Dict[Tuple[int, int, str], _ShardStore] = {}
        #: (term, log) -> application state
        self._logs: Dict[Tuple[int, int], _LogState] = {}
        #: seqnum -> record payload (ordered records, the read path)
        self._by_seqnum: Dict[int, dict] = {}
        #: seqnum -> auxiliary data backup
        self._aux_backup: Dict[int, Any] = {}
        self.trimmed_count = 0
        self.records_ordered = 0
        self._progress_proc = None
        self.obs = DISABLED
        #: Online monitor hub (repro.monitor), set by enable_monitoring.
        self.monitor = None
        #: Node admission guard (repro.admission), set by
        #: enable_admission; None accepts every write.
        self.admission = None
        #: Replicate writes currently queued or in service — maintained
        #: always (plain arithmetic) so the pending-write gauge exists
        #: with or without admission control.
        self.pending_writes = 0
        self.pending_writes_peak = 0
        self._register_handlers()

    @property
    def name(self) -> str:
        return self.node.name

    def _register_handlers(self) -> None:
        self.node.handle("storage.replicate", self._h_replicate)
        self.node.handle("storage.read", self._h_read)
        self.node.handle("storage.put_aux", self._h_put_aux)
        self.node.handle("storage.fetch_meta", self._h_fetch_meta)
        self.node.handle("metalog.entry", self._h_metalog_entry)
        self.node.handle("log.sealed", self._h_log_sealed)

    # ------------------------------------------------------------------
    # Configuration / term changes
    # ------------------------------------------------------------------
    def configure(self, term_config: TermConfig) -> None:
        """Install a new term's assignment and (re)start progress reporting."""
        self.term_config = term_config
        if self._progress_proc is not None and self._progress_proc.is_alive:
            self._progress_proc.interrupt("reconfigured")
        if self._backed_logs():
            self._progress_proc = self.node.spawn(
                self._progress_loop(term_config), name=f"{self.name}:progress"
            )

    def _backed_logs(self) -> List[Tuple[int, List[str]]]:
        """Logs (and their shards) this node backs under the current term."""
        assert self.term_config is not None
        out = []
        for log_id, asg in self.term_config.logs.items():
            shards = [s for s, nodes in asg.shard_storage.items() if self.name in nodes]
            if shards:
                out.append((log_id, shards))
        return out

    def _progress_loop(self, term_config: TermConfig) -> Generator:
        term = term_config.term_id
        backed = self._backed_logs()
        try:
            while self.term_config is term_config:
                yield self.env.timeout(self.config.progress_interval)
                for log_id, shards in backed:
                    vector = {
                        shard: self._shard(term, log_id, shard).contiguous
                        for shard in shards
                    }
                    asg = term_config.assignment(log_id)
                    self.net.send(
                        self.node,
                        asg.primary,
                        "seq.report_progress",
                        {"term": term, "log_id": log_id, "storage": self.name, "vector": vector},
                    )
        except Interrupt:
            return

    def _shard(self, term: int, log_id: int, shard: str) -> _ShardStore:
        key = (term, log_id, shard)
        store = self._shards.get(key)
        if store is None:
            store = self._shards[key] = _ShardStore()
        return store

    def _log_state(self, term: int, log_id: int) -> _LogState:
        key = (term, log_id)
        state = self._logs.get(key)
        if state is None:
            state = self._logs[key] = _LogState()
        return state

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _h_replicate(self, payload: dict) -> Generator:
        """Store one record; ack once durable.

        With admission control enabled the write first passes this node's
        bounded window + CoDel guard; a shed raises
        :class:`~repro.admission.Overloaded` back to the appending
        engine, which honors the retry-after hint — the bottom rung of
        the storage -> engine -> gateway backpressure ladder.
        """
        if self.admission is not None:
            self.admission.try_enter()
        self.pending_writes += 1
        if self.pending_writes > self.pending_writes_peak:
            self.pending_writes_peak = self.pending_writes
        if self.obs.enabled:
            self.obs.metrics.gauge(f"queue.storage.{self.name}.pending").record(
                self.env.now, self.pending_writes
            )
        try:
            yield self.node.cpu.use(self.config.storage_service)
            store = self._shard(payload["term"], payload["log_id"], payload["shard"])
            store.put(payload["local_id"], payload)
        finally:
            self.pending_writes -= 1
            if self.admission is not None:
                self.admission.exit()
        return True

    def _h_put_aux(self, payload: dict) -> None:
        if self.config.aux_backup:
            self._aux_backup[payload["seqnum"]] = payload["auxdata"]

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _h_read(self, payload: dict) -> Generator:
        yield self.node.cpu.use(self.config.storage_service)
        if self.obs.enabled:
            with self.obs.tracer.span(
                "storage.media_read", node=self.name, kind="storage"
            ):
                yield self.env.timeout(self.config.media_read_latency)
        else:
            yield self.env.timeout(self.config.media_read_latency)
        record = self._by_seqnum.get(payload["seqnum"])
        if record is None:
            # The reader's engine saw this seqnum ordered, so the metalog
            # entry assigning it exists — we just haven't applied it (the
            # broadcast was lost or is still in flight). Catch up from the
            # sequencers inline and retry the lookup.
            yield from self._catchup_for(payload["seqnum"])
            record = self._by_seqnum.get(payload["seqnum"])
        if record is None:
            raise KeyError(f"seqnum {payload['seqnum']:#x} not on {self.name}")
        reply = dict(record)
        if self.config.aux_backup:
            reply["auxdata"] = self._aux_backup.get(payload["seqnum"])
        return reply

    def _h_fetch_meta(self, payload: dict) -> Generator:
        """Catch-up path for index engines missing record metadata: return
        (local_id -> (book_id, tags)) for a shard range we back."""
        yield self.node.cpu.use(self.config.storage_service)
        store = self._shard(payload["term"], payload["log_id"], payload["shard"])
        out = {}
        for local_id in range(payload["from_local_id"], store.contiguous):
            record = store.records.get(local_id)
            if record is not None:
                out[local_id] = (record["book_id"], record["tags"])
        return out

    # ------------------------------------------------------------------
    # Metalog subscription: assign seqnums, apply trims
    # ------------------------------------------------------------------
    def _h_metalog_entry(self, payload: dict) -> None:
        term, log_id = payload["term"], payload["log_id"]
        state = self._log_state(term, log_id)
        entry: MetalogEntry = payload["entry"]
        state.buffer[entry.index] = entry
        self._drain(term, log_id, state)
        if state.buffer and state.applied not in state.buffer and not state.recovering:
            # A metalog.entry broadcast was lost (later entries buffered,
            # next one missing): fetch the gap from the sequencers after a
            # grace period, in case the broadcast is merely delayed.
            state.recovering = True
            self.node.spawn(
                self._recover_gap(term, log_id, state), name=f"{self.name}:gap-fetch"
            )

    def _catchup_for(self, seqnum: int) -> Generator:
        """Read-triggered metalog catch-up: fetch entries we have not yet
        applied for the seqnum's (term, log) from its sequencers."""
        term, log_id = seqnum_term(seqnum), seqnum_log_id(seqnum)
        term_config = self.term_config
        if term_config is None or term_config.term_id != term or log_id not in term_config.logs:
            return
        state = self._log_state(term, log_id)
        asg = term_config.assignment(log_id)
        sequencers = [asg.primary] + [s for s in asg.sequencers if s != asg.primary]
        entries = yield from self._fetch_entries(term, log_id, state.applied, sequencers)
        for entry in entries:
            state.buffer.setdefault(entry.index, entry)
        self._drain(term, log_id, state)

    def _recover_gap(self, term: int, log_id: int, state: _LogState) -> Generator:
        try:
            yield self.env.timeout(self.config.progress_interval)
            if not state.buffer or state.applied in state.buffer:
                return
            term_config = self.term_config
            if term_config is None or term_config.term_id != term or log_id not in term_config.logs:
                return
            asg = term_config.assignment(log_id)
            sequencers = [asg.primary] + [s for s in asg.sequencers if s != asg.primary]
            entries = yield from self._fetch_entries(term, log_id, state.applied, sequencers)
            for entry in entries:
                state.buffer.setdefault(entry.index, entry)
            self._drain(term, log_id, state)
        finally:
            state.recovering = False

    def _drain(self, term: int, log_id: int, state: _LogState) -> None:
        while state.applied in state.buffer:
            entry = state.buffer.pop(state.applied)
            self._apply_entry(term, log_id, state, entry)
            state.applied += 1

    def _apply_entry(self, term: int, log_id: int, state: _LogState, entry: MetalogEntry) -> None:
        for shard, local_id, pos in delta_set(state.prev_progress, entry):
            store = self._shards.get((term, log_id, shard))
            if store is None:
                continue  # we do not back this shard
            record = store.records.get(local_id)
            if record is not None:
                seqnum = pack_seqnum(term, log_id, pos)
                record["seqnum"] = seqnum
                self._by_seqnum[seqnum] = record
                self.records_ordered += 1
                if self.monitor is not None:
                    self.monitor.on_storage_apply(
                        self.name, self.node.crash_count, term, log_id, shard, pos
                    )
        state.prev_progress = entry.progress_dict()
        for trim in entry.trims:
            self._reclaim(trim)

    def _reclaim(self, trim) -> None:
        """Background space reclamation for trimmed records (§4.4). We model
        it as immediate deletion; the latency-insensitive path."""
        doomed = []
        for seqnum, record in self._by_seqnum.items():
            if seqnum > trim.until_seqnum or record["book_id"] != trim.book_id:
                continue
            if trim.tag == 0 or trim.tag in record["tags"]:
                doomed.append(seqnum)
        for seqnum in doomed:
            record = self._by_seqnum.pop(seqnum)
            self._aux_backup.pop(seqnum, None)
            store = self._shards.get((record["term"], record["log_id"], record["shard"]))
            if store is not None:
                store.records.pop(record["local_id"], None)
            self.trimmed_count += 1

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------
    def _h_log_sealed(self, payload: dict) -> Generator:
        """The controller announces the final metalog length for a sealed
        (term, log); fetch any entries we are missing and finish applying."""
        term, log_id, final_len = payload["term"], payload["log_id"], payload["final_len"]
        state = self._log_state(term, log_id)
        state.final_len = final_len
        if state.applied < final_len and self.term_config is not None:
            old_assignment = payload.get("sequencers", [])
            entries = yield from self._fetch_entries(term, log_id, state.applied, old_assignment)
            for entry in entries:
                state.buffer.setdefault(entry.index, entry)
            self._drain(term, log_id, state)

    def _fetch_entries(self, term: int, log_id: int, from_index: int, sequencers: List[str]) -> Generator:
        from repro.sim.network import RpcError, RpcTimeout

        for seq_name in sequencers:
            try:
                entries = yield self.net.rpc(
                    self.node, seq_name, "seq.fetch_entries",
                    {"term": term, "log_id": log_id, "from_index": from_index},
                    timeout=0.05,
                )
                return entries
            except (RpcError, RpcTimeout):
                continue
        return []
