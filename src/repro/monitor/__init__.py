"""repro.monitor — online invariant monitoring, SLO alerting, and the
flight recorder.

A thin package surface over :mod:`repro.obs.monitor` and
:mod:`repro.obs.alerts` (the implementations live in ``repro.obs`` so
they can share the sample-window machinery with the metrics registry):

- :class:`MonitorHub` + the incremental monitors (metalog consistency,
  queue delivery, exactly-once effects, read freshness, storage record
  reconciliation), fed by event taps in the core components;
- :class:`SLO` / :class:`BurnRateRule` / :class:`AlertManager` — the
  multi-window burn-rate alerting layer;
- :class:`FlightRecorder` and the ``repro.monitor/1`` snapshot schema.

Enable on a cluster with ``cluster.enable_monitoring()``; chaos
scenarios run with monitors on by default and carry the online verdict
in their ``repro.chaos/2`` artifacts.
"""

from repro.obs.alerts import (
    MONITOR_SCHEMA,
    Alert,
    AlertManager,
    BurnRateRule,
    FlightRecorder,
    SLO,
    default_rules,
    flight_record_to_json,
    render_flight_record,
    validate_flight_record,
)
from repro.obs.monitor import (
    FlowMonitor,
    FreshnessMonitor,
    MetalogMonitor,
    MonitorHub,
    MonitorResult,
    QueueMonitor,
    SampleWindow,
    StorageMonitor,
    SuccessWindow,
)

__all__ = [
    "MONITOR_SCHEMA",
    "Alert",
    "AlertManager",
    "BurnRateRule",
    "FlightRecorder",
    "FlowMonitor",
    "FreshnessMonitor",
    "MetalogMonitor",
    "MonitorHub",
    "MonitorResult",
    "QueueMonitor",
    "SLO",
    "SampleWindow",
    "StorageMonitor",
    "SuccessWindow",
    "default_rules",
    "flight_record_to_json",
    "render_flight_record",
    "validate_flight_record",
]
