"""SLO burn-rate alerting and the flight recorder.

Sits on top of the online monitors (:mod:`repro.obs.monitor`): SLOs are
declared as objectives over the hub's incremental windows (availability,
p99 latency, read freshness), burn-rate rules evaluate them over a
*fast* and a *slow* window (the SRE multi-window pattern: the fast
window makes alerts responsive, the slow window keeps them from flapping
on a single bad sample), and every ``ok -> firing`` transition emits a
typed :class:`Alert` record.

The :class:`FlightRecorder` is the black box: a bounded ring buffer of
recent metric samples, fault injections, monitor violations, and alert
transitions. When an alert fires, the recorder snapshots the ring into a
deterministic ``repro.monitor/1`` JSON document — the last N events
before the problem, attached to the verdict instead of lost to the
scrollback.

Like the monitors, everything here observes and never perturbs: the
evaluation loop is a kernel process that reads windows and writes only
its own state, so same-seed runs stay byte-identical with alerting on
or off.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

MONITOR_SCHEMA = "repro.monitor/1"

#: Flight-recorder ring capacity (events); ~enough to cover the window
#: between cause and detection in every committed scenario.
DEFAULT_RING = 512


# ----------------------------------------------------------------------
# SLOs and burn-rate rules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SLO:
    """A service-level objective over one of the hub's windows.

    ``kind`` selects the signal:

    - ``availability`` — ``objective`` is the success-ratio target
      (e.g. 0.99); burn rate = observed error rate / error budget.
    - ``latency_p99_ms`` — ``objective`` is the p99 target in ms; burn
      rate = observed p99 / target.
    - ``freshness_p99_s`` — ``objective`` is the append->readable p99
      target in seconds; burn rate = observed p99 / target.
    - ``shed_rate`` — ``objective`` is the tolerable fraction of
      arrivals the admission layer may shed (repro.admission); burn
      rate = observed shed rate / objective.
    """

    name: str
    kind: str
    objective: float

    KINDS = ("availability", "latency_p99_ms", "freshness_p99_s", "shed_rate")
    _RATIO_KINDS = ("availability", "shed_rate")

    def __post_init__(self):
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind in self._RATIO_KINDS and not 0.0 < self.objective < 1.0:
            raise ValueError(f"{self.kind} objective must be in (0, 1)")
        if self.kind not in self._RATIO_KINDS and self.objective <= 0:
            raise ValueError(f"{self.kind} objective must be positive")


@dataclass(frozen=True)
class BurnRateRule:
    """Multi-window burn-rate rule: fire when *both* the fast and the
    slow window burn at ``threshold`` times the sustainable rate."""

    slo: SLO
    fast_window: float
    slow_window: float
    threshold: float
    min_events: int = 5
    severity: str = "page"

    @property
    def name(self) -> str:
        return f"{self.slo.name}-burn"

    def _burn(self, hub, window: float, now: float) -> Optional[float]:
        kind = self.slo.kind
        if kind == "availability":
            count, ok = hub.availability.counts(window=window, end=now)
            if count < self.min_events:
                return None
            budget = 1.0 - self.slo.objective
            return ((count - ok) / count) / budget
        if kind == "shed_rate":
            shed = getattr(hub, "shed", None)
            if shed is None:
                return None
            count, ok = shed.counts(window=window, end=now)
            if count < self.min_events:
                return None
            return ((count - ok) / count) / self.slo.objective
        if kind == "latency_p99_ms":
            source = hub.latency_ms
        else:
            source = hub.freshness.overall
        lo, hi = source._bounds(window, None, now)
        if hi - lo < self.min_events:
            return None
        p99 = source.quantile(0.99, start=None, window=window, end=now)
        return None if p99 is None else p99 / self.slo.objective

    def evaluate(self, hub, now: float) -> Optional[Dict[str, float]]:
        """Burn rates for both windows, or None when either window has
        too little data to judge."""
        fast = self._burn(hub, self.fast_window, now)
        slow = self._burn(hub, self.slow_window, now)
        if fast is None or slow is None:
            return None
        return {"fast": fast, "slow": slow}


@dataclass
class Alert:
    """A typed alert record: one per ``ok -> firing`` transition."""

    t: float
    rule: str
    slo: str
    kind: str
    severity: str
    threshold: float
    burn_fast: float
    burn_slow: float
    message: str

    def to_dict(self) -> dict:
        return {
            "t": round(self.t, 9),
            "rule": self.rule,
            "slo": self.slo,
            "kind": self.kind,
            "severity": self.severity,
            "threshold": self.threshold,
            "burn_fast": round(self.burn_fast, 6),
            "burn_slow": round(self.burn_slow, 6),
            "message": self.message,
        }


def default_rules(
    availability: float = 0.9,
    latency_p99_ms: float = 250.0,
    freshness_p99_s: float = 0.25,
    shed_rate: float = 0.10,
) -> List[BurnRateRule]:
    """The stock rule set wired in by ``enable_monitoring``: one paging
    rule per SLO with a 2s fast window and a 10s slow window (virtual
    seconds — chaos scenarios live on that timescale). The shed-rate
    rule is silent unless admission control is enabled and shedding
    (the ``min_events`` guard never sees admission decisions otherwise)."""
    return [
        BurnRateRule(
            SLO("availability", "availability", availability),
            fast_window=2.0, slow_window=10.0, threshold=2.0,
        ),
        BurnRateRule(
            SLO("latency-p99", "latency_p99_ms", latency_p99_ms),
            fast_window=2.0, slow_window=10.0, threshold=1.0,
        ),
        BurnRateRule(
            SLO("freshness-p99", "freshness_p99_s", freshness_p99_s),
            fast_window=2.0, slow_window=10.0, threshold=1.0,
        ),
        BurnRateRule(
            SLO("shed-rate", "shed_rate", shed_rate),
            fast_window=2.0, slow_window=10.0, threshold=1.0,
        ),
    ]


class AlertManager:
    """Evaluates burn-rate rules on a fixed virtual-time cadence and
    tracks per-rule firing state. Alerts are emitted on the ok->firing
    edge only (no re-page while firing); every state change lands in
    ``transitions`` for the Chrome-trace export."""

    def __init__(
        self,
        hub,
        rules: Optional[List[BurnRateRule]] = None,
        interval: float = 0.05,
    ):
        self.hub = hub
        self.rules = list(rules if rules is not None else default_rules())
        names = [r.name for r in self.rules]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate rule names: {names}")
        self.interval = interval
        self.alerts: List[Alert] = []
        self.transitions: List[dict] = []
        self._firing: Dict[str, bool] = {r.name: False for r in self.rules}
        self.evaluations = 0

    def evaluate(self, now: float) -> List[Alert]:
        """One evaluation pass; returns alerts newly fired at ``now``."""
        self.evaluations += 1
        fired: List[Alert] = []
        for rule in self.rules:
            burn = rule.evaluate(self.hub, now)
            firing = (
                burn is not None
                and burn["fast"] >= rule.threshold
                and burn["slow"] >= rule.threshold
            )
            was_firing = self._firing[rule.name]
            if firing and not was_firing:
                alert = Alert(
                    t=now,
                    rule=rule.name,
                    slo=rule.slo.name,
                    kind=rule.slo.kind,
                    severity=rule.severity,
                    threshold=rule.threshold,
                    burn_fast=burn["fast"],
                    burn_slow=burn["slow"],
                    message=(
                        f"{rule.slo.name} burning at "
                        f"{min(burn['fast'], burn['slow']):.2f}x budget "
                        f"(threshold {rule.threshold}x) in both windows"
                    ),
                )
                self.alerts.append(alert)
                fired.append(alert)
                self._transition(now, rule.name, "firing")
                recorder = self.hub.recorder
                if recorder is not None:
                    recorder.on_alert(alert)
            elif was_firing and not firing:
                self._transition(now, rule.name, "ok")
            self._firing[rule.name] = firing
        return fired

    def _transition(self, now: float, rule: str, state: str) -> None:
        self.transitions.append({"t": round(now, 9), "rule": rule, "state": state})

    def run(self, env) -> Generator:
        """The kernel process: evaluate every ``interval`` virtual
        seconds. Reads windows, writes only alert state — no messages,
        no RNG, no shared simulation state."""
        while True:
            yield env.timeout(self.interval)
            self.evaluate(env.now)


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class FlightRecorder:
    """Bounded ring buffer of recent events, snapshotted on alert.

    Event kinds in the ring: ``metric`` (per-operation samples the hub
    forwards), ``fault`` (injector timeline entries), ``violation``
    (online monitor findings), ``alert`` (manager transitions). The ring
    holds the last ``capacity`` events; a snapshot freezes them together
    with the triggering alert and the monitors' current verdicts into a
    ``repro.monitor/1`` document."""

    def __init__(self, capacity: int = DEFAULT_RING, context: Optional[dict] = None):
        self.capacity = capacity
        self.ring: deque = deque(maxlen=capacity)
        self.context = dict(context or {})
        self.snapshots: List[dict] = []
        self.hub = None  # back-reference, set by enable_monitoring
        self.dropped = 0

    def _push(self, event: dict) -> None:
        if len(self.ring) == self.capacity:
            self.dropped += 1
        self.ring.append(event)

    def on_metric(self, t: float, name: str, fields: dict) -> None:
        self._push({"t": round(t, 9), "type": "metric", "name": name, **fields})

    def on_fault(self, entry: dict) -> None:
        self._push({"type": "fault", **entry})

    def on_violation(self, t: float, monitor: str, message: str) -> None:
        self._push({
            "t": round(t, 9), "type": "violation",
            "monitor": monitor, "message": message,
        })

    def on_alert(self, alert: Alert) -> None:
        self._push({"type": "alert", **alert.to_dict()})
        self.snapshots.append(self.snapshot(alert))

    def snapshot(self, alert: Optional[Alert] = None) -> dict:
        """Freeze the ring into a deterministic ``repro.monitor/1`` doc."""
        doc: Dict[str, Any] = {
            "schema": MONITOR_SCHEMA,
            "context": dict(sorted(self.context.items())),
            "fired_at": round(alert.t, 9) if alert is not None else None,
            "alert": alert.to_dict() if alert is not None else None,
            "events": list(self.ring),
            "events_dropped": self.dropped,
            "monitors": (
                [r.to_dict() for r in self.hub.results()]
                if self.hub is not None else []
            ),
        }
        return doc


def flight_record_to_json(doc: dict) -> str:
    """Canonical byte-identical serialization (same convention as
    ``repro.bench/1`` and ``repro.chaos/2`` artifacts)."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def render_flight_record(doc: dict) -> str:
    """Human-readable rendering of a ``repro.monitor/1`` document (the
    ``python -m repro.obs monitor report`` output)."""
    lines: List[str] = []
    context = doc.get("context") or {}
    ctx = ", ".join(f"{k}={v}" for k, v in sorted(context.items()))
    lines.append(f"=== flight record [{ctx or 'no context'}] ===")
    alert = doc.get("alert")
    if alert is not None:
        lines.append(
            f"alert {alert['rule']} ({alert['severity']}) at "
            f"t={alert['t']}s: {alert['message']}"
        )
        lines.append(
            f"  burn fast={alert['burn_fast']}x slow={alert['burn_slow']}x "
            f"(threshold {alert['threshold']}x)"
        )
    else:
        lines.append("no triggering alert (manual snapshot)")
    events = doc.get("events") or []
    dropped = doc.get("events_dropped", 0)
    by_type: Dict[str, int] = {}
    for event in events:
        by_type[event.get("type", "?")] = by_type.get(event.get("type", "?"), 0) + 1
    breakdown = ", ".join(f"{n} {t}" for t, n in sorted(by_type.items()))
    lines.append(
        f"ring: {len(events)} event(s) ({breakdown or 'empty'}), "
        f"{dropped} dropped before the window"
    )
    for event in events:
        if event.get("type") in ("fault", "violation", "alert"):
            fields = {
                k: v for k, v in sorted(event.items()) if k not in ("t", "type")
            }
            detail = ", ".join(f"{k}={v}" for k, v in fields.items())
            lines.append(f"  t={event.get('t')}s {event['type']}: {detail}")
    lines.append("monitors at snapshot:")
    for monitor in doc.get("monitors") or []:
        status = "ok" if monitor.get("ok") else "VIOLATED"
        lines.append(
            f"  {monitor['name']:<24} {status}  "
            f"({monitor['checked']} checked, "
            f"{len(monitor['violations'])} violation(s))"
        )
    return "\n".join(lines)


def validate_flight_record(doc: dict) -> List[str]:
    """Schema problems in a ``repro.monitor/1`` document (empty = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["flight record is not an object"]
    if doc.get("schema") != MONITOR_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {MONITOR_SCHEMA!r}"
        )
    for key in ("context", "fired_at", "alert", "events", "events_dropped",
                "monitors"):
        if key not in doc:
            problems.append(f"missing key {key!r}")
    events = doc.get("events")
    if isinstance(events, list):
        for i, event in enumerate(events):
            if not isinstance(event, dict) or "type" not in event:
                problems.append(f"events[{i}] has no type")
            elif event["type"] not in ("metric", "fault", "violation", "alert"):
                problems.append(f"events[{i}] has unknown type {event['type']!r}")
    elif "events" in doc:
        problems.append("events is not a list")
    alert = doc.get("alert")
    if alert is not None:
        for key in ("t", "rule", "slo", "kind", "severity", "threshold",
                    "burn_fast", "burn_slow", "message"):
            if not isinstance(alert, dict) or key not in alert:
                problems.append(f"alert missing key {key!r}")
    monitors = doc.get("monitors")
    if isinstance(monitors, list):
        for i, monitor in enumerate(monitors):
            for key in ("name", "ok", "checked", "violations"):
                if not isinstance(monitor, dict) or key not in monitor:
                    problems.append(f"monitors[{i}] missing key {key!r}")
    elif "monitors" in doc:
        problems.append("monitors is not a list")
    return problems
