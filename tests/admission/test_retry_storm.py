"""Overload chaos scenarios: admission control vs metastable collapse.

The retry-storm pair is the load-bearing contrast of the admission
layer: the same saturating open-loop workload with aggressive
timeout-retrying clients collapses to zero goodput without admission
control (zombie executions burn every worker slot, queues grow without
bound) and sustains near-saturation goodput with it. The other two
scenarios pin the elasticity integration (shed only at max_nodes, batch
first) and degraded-mode operation while the controller is partitioned
mid-scale-out. Verdicts are byte-identical per seed — the golden-file
guarantee CI relies on.
"""

import json
import os
from functools import lru_cache

import pytest

from repro.chaos.runner import SCHEMA, run_scenario, verdict_to_json, write_verdict
from repro.chaos.scenarios import SCENARIOS, admission_scenarios

pytestmark = [pytest.mark.chaos, pytest.mark.admission]

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "bench", "chaos")


@lru_cache(maxsize=None)
def _doc(name, seed=0):
    """Scenario runs are deterministic, so one run per (name, seed)
    serves every assertion in this module (tests only read the doc)."""
    return run_scenario(name, seed=seed)


def test_catalog_lists_the_admission_suite():
    names = admission_scenarios()
    assert names == [
        "noisy-neighbor-batch-flood",
        "retry-storm-metastable",
        "retry-storm-metastable-noadmission",
        "split-brain-controller-during-scale-out",
        "sustained-overload-beyond-max-nodes",
    ]
    for name in names:
        assert SCENARIOS[name].admission
    assert SCENARIOS["retry-storm-metastable-noadmission"].expect_violations
    assert not SCENARIOS["retry-storm-metastable"].expect_violations


class TestRetryStormContrast:
    def test_admission_sustains_goodput_under_the_storm(self):
        doc = _doc("retry-storm-metastable")
        assert doc["schema"] == SCHEMA == "repro.chaos/2"
        assert doc["passed"], doc["checks"]
        report = doc["overload"]
        assert report["enabled"] is True
        # The ISSUE acceptance bar: >= 70% of analytic saturation goodput
        # with bounded accepted latency and bounded queues.
        assert report["goodput_fraction"] >= 0.7
        assert report["accepted_p99_s"] <= 0.25
        assert all(peak <= 128 for peak in report["queue_peaks"].values())
        assert report["shed"] > 0
        # The limiter converged near the worker count (4 workers, and it
        # backs off multiplicatively every time it overshoots).
        assert report["admission"]["limiter"]["decreases"] > 0

    def test_baseline_exhibits_metastable_goodput_collapse(self):
        doc = _doc("retry-storm-metastable-noadmission")
        assert doc["expect_violations"] and doc["passed"], doc["checks"]
        report = doc["overload"]
        assert report["enabled"] is False
        assert report["goodput_fraction"] < 0.1  # collapse, not mere dip
        assert report["queue_peaks"]["worker.depth"] > 128
        messages = [
            v for c in doc["checks"] if c["name"] == "goodput-slo"
            for v in c["violations"]
        ]
        assert any("goodput collapse" in m for m in messages)
        assert any("unbounded queue growth" in m for m in messages)
        # The storm really happened: retries flowed until the budget and
        # breakers gave out — and still could not restore goodput.
        assert doc["stats"]["resil_retries"] > 0
        assert doc["stats"]["resil_budget_denied"] > 0

    def test_the_contrast_is_the_admission_layer(self):
        """Same seed, same workload, same retry policy — the only delta
        is enable_admission, and it is the difference between collapse
        and capacity."""
        on = _doc("retry-storm-metastable")["overload"]
        off = _doc("retry-storm-metastable-noadmission")["overload"]
        assert on["goodput_fraction"] >= 0.7 > off["goodput_fraction"]
        assert (off["queue_peaks"]["worker.depth"]
                > 10 * on["queue_peaks"]["worker.depth"])


def test_sustained_overload_scales_out_then_sheds_batch_first():
    doc = _doc("sustained-overload-beyond-max-nodes")
    assert doc["passed"], doc["checks"]
    stats = doc["stats"]
    # Elasticity first: the fleet grew to its max_nodes ceiling...
    assert stats["scale_outs"] >= 1
    assert stats["peak_engines"] == 4
    # ...then shedding engaged, batch before interactive.
    assert stats["shed_total"] > 0
    assert stats["shed_batch"] > stats["shed_interactive"]
    # Interactive store traffic rode through the surge unharmed.
    assert doc["recovery"]["availability"] >= 0.9
    assert doc["overload"]["goodput_fraction"] >= 0.7


def test_split_brain_controller_sheds_while_stuck_then_recovers():
    doc = _doc("split-brain-controller-during-scale-out")
    assert doc["passed"], doc["checks"]
    stats = doc["stats"]
    # Scale-out attempts failed while the controller was partitioned...
    assert stats["reconfig_failures"] > 0
    # ...admission kept the stuck fleet useful...
    assert stats["shed_total"] > 0
    assert doc["recovery"]["availability"] >= 0.9
    # ...and the deferred scale-out landed after the heal.
    assert stats["peak_engines"] == 4
    assert stats["ops_ok_after_heal"] > 0


@pytest.mark.parametrize("name", admission_scenarios())
def test_verdicts_byte_identical_across_reruns(name, tmp_path):
    paths = []
    for run in ("a", "b"):
        doc = run_scenario(name, seed=2)
        paths.append(write_verdict(doc, directory=str(tmp_path / run)))
    with open(paths[0], "rb") as fa, open(paths[1], "rb") as fb:
        assert fa.read() == fb.read()


@pytest.mark.parametrize("name", admission_scenarios())
def test_seed0_verdict_matches_committed_golden(name):
    golden = os.path.join(GOLDEN_DIR, f"chaos_{name}_seed0.json")
    with open(golden) as handle:
        committed = handle.read()
    assert json.loads(committed)["passed"] is True
    assert verdict_to_json(_doc(name, seed=0)) == committed, (
        f"seed-0 verdict for {name} drifted from the committed golden; "
        f"regenerate with: python -m repro.chaos run admission --seed 0"
    )
