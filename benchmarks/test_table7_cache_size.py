"""Table 7: record-cache size and aux-data backup on storage nodes (§7.5).

Paper: shrinking the engine's LRU record cache from 1 GB to 16 MB causes a
sharp throughput drop (3,561 vs ~11,245 Op/s) because auxiliary data gets
evicted, killing the replay optimization. Backing auxiliary data up on
storage nodes removes the cliff (11,358 at 16 MB).

Scaled: the Retwis dataset here is ~100x smaller than the paper's, so the
cache sizes sweep 64 KB - 4 MB (same ratio to the working set).
"""

import pytest

from benchmarks._common import emit_artifact, make_cluster, print_table, run_once, throughput
from benchmarks._retwis_common import run_retwis_bokistore
from repro.core import BokiConfig

CACHE_SIZES = [64 << 10, 256 << 10, 4 << 20]
CLIENTS = 48
DURATION = 0.25
NUM_USERS = 60


def run_cell(cache_bytes, aux_backup):
    config = BokiConfig(cache_bytes=cache_bytes, aux_backup=aux_backup)
    cluster = make_cluster(
        num_function_nodes=8, num_storage_nodes=3, index_engines_per_log=8,
        workers_per_node=24, config=config,
    )
    return run_retwis_bokistore(
        cluster, num_clients=CLIENTS, duration=DURATION, num_users=NUM_USERS
    )


def experiment():
    return {
        (size, backup): run_cell(size, backup)
        for backup in (False, True)
        for size in CACHE_SIZES
    }


def label(size):
    return f"{size >> 10}KB" if size < (1 << 20) else f"{size >> 20}MB"


@pytest.mark.benchmark(group="table7")
def test_table7_cache_size(benchmark):
    results = run_once(benchmark, experiment)

    rows = []
    for backup in (False, True):
        name = "aux backed up on storage" if backup else "aux on function nodes only"
        rows.append(
            [name, *(f"{results[(s, backup)].throughput:,.0f}" for s in CACHE_SIZES)]
        )
    print_table(
        "Table 7: Retwis throughput (Op/s) vs LRU cache size",
        ["", *(label(s) for s in CACHE_SIZES)],
        rows,
    )

    emit_artifact(
        "table7_cache_size",
        {
            f"{'backup' if backup else 'nobackup'}.{label(size)}.throughput": throughput(
                results[(size, backup)].throughput
            )
            for backup in (False, True)
            for size in CACHE_SIZES
        },
        title="Table 7: record-cache size and aux-data backup",
        config={
            "cache_sizes": CACHE_SIZES, "clients": CLIENTS,
            "duration_s": DURATION, "num_users": NUM_USERS,
        },
    )

    smallest, largest = CACHE_SIZES[0], CACHE_SIZES[-1]
    # Claim 1: without backup, a small cache causes a sharp drop (paper:
    # 3.2x below the large-cache configuration).
    assert (
        results[(smallest, False)].throughput
        < 0.6 * results[(largest, False)].throughput
    )
    # Claim 2: with aux backup on storage nodes, the small cache no longer
    # collapses (paper: 11,358 at 16 MB vs 3,561 without backup).
    assert (
        results[(smallest, True)].throughput
        > 1.5 * results[(smallest, False)].throughput
    )
    # Claim 3: at large cache sizes the two configurations converge
    # (within 30%).
    big_no = results[(largest, False)].throughput
    big_yes = results[(largest, True)].throughput
    assert abs(big_yes - big_no) / big_no < 0.3
