"""Elasticity chaos scenarios: the autoscaler's control loop under
faults that overlap its scaling decisions, with byte-identical verdicts
per seed (the golden-file guarantee CI relies on)."""

import json
import os

import pytest

from repro.chaos.runner import SCHEMA, run_scenario, verdict_to_json, write_verdict
from repro.chaos.scenarios import SCENARIOS, elastic_scenarios

pytestmark = [pytest.mark.chaos, pytest.mark.elastic]

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "bench", "chaos")


def test_catalog_lists_both_elastic_scenarios():
    names = elastic_scenarios()
    assert names == [
        "elastic-flash-crowd-primary-crash",
        "elastic-scale-in-during-partition",
    ]
    for name in names:
        assert SCENARIOS[name].elastic
        assert not SCENARIOS[name].expect_violations


def test_scale_in_during_partition_passes_safety_checks():
    doc = run_scenario("elastic-scale-in-during-partition", seed=1)
    assert doc["schema"] == SCHEMA == "repro.chaos/2"
    assert doc["passed"], doc["checks"]
    stats = doc["stats"]
    # The fleet shrank while its victims were partitioned away...
    assert stats["scale_ins_during_partition"] > 0
    assert stats["engines_active"] < 3
    assert stats["storage_active"] == 3
    # ...and the queue lost and duplicated nothing across the shrink.
    assert stats["popped"] == stats["pushed"] == 30
    # Scaling decisions appear in the verdict timeline next to the faults.
    actions = {e["action"] for e in doc["timeline"]}
    assert "scale-in" in actions and "partition_groups" in actions


def test_flash_crowd_primary_crash_meets_slo():
    doc = run_scenario("elastic-flash-crowd-primary-crash", seed=1)
    assert doc["passed"], doc["checks"]
    stats = doc["stats"]
    assert stats["peak_engines"] > 2, "flash crowd must grow the fleet"
    assert stats["reaction_time_s"] < 0.5
    assert stats["final_term"] > stats["initial_term"]
    recovery = doc["recovery"]
    assert recovery["enabled"] is True
    assert recovery["availability"] >= 0.9
    assert recovery["rto_s"] is not None


@pytest.mark.parametrize("name", elastic_scenarios())
def test_verdicts_byte_identical_across_reruns(name, tmp_path):
    paths = []
    for run in ("a", "b"):
        doc = run_scenario(name, seed=2)
        paths.append(write_verdict(doc, directory=str(tmp_path / run)))
    with open(paths[0], "rb") as fa, open(paths[1], "rb") as fb:
        assert fa.read() == fb.read()


@pytest.mark.parametrize("name", elastic_scenarios())
def test_seed0_verdict_matches_committed_golden(name):
    golden = os.path.join(GOLDEN_DIR, f"chaos_{name}_seed0.json")
    with open(golden) as handle:
        committed = handle.read()
    assert json.loads(committed)["passed"] is True
    assert verdict_to_json(run_scenario(name, seed=0)) == committed, (
        f"seed-0 verdict for {name} drifted from the committed golden; "
        f"regenerate with: python -m repro.chaos run elastic --seed 0"
    )
