"""EWMA + hysteresis scaling policy.

The policy is a pure state machine over (time, utilization, fleet size):
no simulation events, no randomness — same inputs, same decisions, so
autoscaled same-seed runs stay byte-identical.

Flap protection is layered three ways:

1. **EWMA smoothing** (``alpha``) filters single-sample spikes.
2. **Consecutive-breach hysteresis**: the smoothed signal must sit above
   ``high_watermark`` for ``breach_up`` consecutive samples (or below
   ``low_watermark`` for ``breach_down``) before anything happens.
   Crossing back into the dead band resets both counters.
3. **Asymmetric cooldowns**: after any fleet change, scale-out is
   blocked for ``cooldown_up`` seconds and scale-in for the (longer)
   ``cooldown_down`` — growing is cheap and urgent, shrinking is
   neither.

Scale-out sizes the jump proportionally (``ceil(current * smoothed /
target)`` where target is the middle of the dead band) so a flash crowd
is absorbed in one reconfiguration instead of a staircase; scale-in
always steps down one node at a time, because each removal narrows the
failure-tolerance margin and must be re-observed before the next.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, inf
from typing import Optional


class Ewma:
    """Exponentially weighted moving average; seeded by the first sample."""

    __slots__ = ("alpha", "value")

    def __init__(self, alpha: float):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value: Optional[float] = None

    def update(self, sample: float) -> float:
        if self.value is None:
            self.value = sample
        else:
            self.value = self.alpha * sample + (1.0 - self.alpha) * self.value
        return self.value


@dataclass
class PolicyConfig:
    """Knobs for one fleet's :class:`HysteresisPolicy` (defaults in
    ``docs/elasticity.md``)."""

    high_watermark: float = 0.75
    low_watermark: float = 0.30
    alpha: float = 0.5
    breach_up: int = 2
    breach_down: int = 4
    cooldown_up: float = 0.25
    cooldown_down: float = 1.0
    min_nodes: int = 1
    max_nodes: Optional[int] = None
    #: Proportional scale-out toward the dead-band midpoint; False steps
    #: up one node at a time.
    proportional_up: bool = True

    def __post_init__(self):
        if not self.low_watermark < self.high_watermark:
            raise ValueError("low_watermark must be below high_watermark")
        if self.min_nodes < 1:
            raise ValueError("min_nodes must be >= 1")
        if self.max_nodes is not None and self.max_nodes < self.min_nodes:
            raise ValueError("max_nodes must be >= min_nodes")


class HysteresisPolicy:
    """Turns a utilization stream into fleet-size deltas."""

    def __init__(self, config: Optional[PolicyConfig] = None):
        self.config = config or PolicyConfig()
        self.ewma = Ewma(self.config.alpha)
        self.up_breaches = 0
        self.down_breaches = 0
        self.last_change: float = -inf
        self.decisions = 0

    @property
    def smoothed(self) -> Optional[float]:
        return self.ewma.value

    def observe(self, now: float, utilization: float, current_nodes: int) -> int:
        """Feed one sample; returns the desired fleet-size delta
        (positive: scale out, negative: scale in, 0: hold)."""
        cfg = self.config
        smoothed = self.ewma.update(utilization)
        self.decisions += 1
        if smoothed > cfg.high_watermark:
            self.up_breaches += 1
            self.down_breaches = 0
        elif smoothed < cfg.low_watermark:
            self.down_breaches += 1
            self.up_breaches = 0
        else:
            self.up_breaches = 0
            self.down_breaches = 0

        ceiling = cfg.max_nodes if cfg.max_nodes is not None else current_nodes
        if (self.up_breaches >= cfg.breach_up
                and now - self.last_change >= cfg.cooldown_up
                and current_nodes < ceiling):
            if cfg.proportional_up:
                target = (cfg.high_watermark + cfg.low_watermark) / 2.0
                desired = ceil(current_nodes * smoothed / target)
            else:
                desired = current_nodes + 1
            desired = max(current_nodes + 1, desired)
            desired = min(desired, ceiling)
            return desired - current_nodes

        if (self.down_breaches >= cfg.breach_down
                and now - self.last_change >= cfg.cooldown_down
                and current_nodes > cfg.min_nodes):
            return -1
        return 0

    def record_change(self, now: float) -> None:
        """Mark a fleet change (ours or anyone's): restart cooldowns and
        require fresh breach streaks against the new fleet size."""
        self.last_change = now
        self.up_breaches = 0
        self.down_breaches = 0
