"""MetricsRegistry unit tests and the cluster snapshot."""

import pytest

from repro.core.cluster import BokiCluster
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_from_cluster,
)


def test_counter_monotonic():
    reg = MetricsRegistry()
    counter = reg.counter("reqs", help="requests")
    counter.incr()
    counter.incr(4)
    assert reg.value("reqs") == 5
    with pytest.raises(ValueError):
        counter.incr(-1)


def test_gauge_set_and_add():
    reg = MetricsRegistry()
    gauge = reg.gauge("depth")
    gauge.set(3.0)
    gauge.add(-1.5)
    assert reg.value("depth") == 1.5


def test_histogram_accepts_negatives_and_summarises():
    reg = MetricsRegistry()
    hist = reg.histogram("delta")
    for value in (3.0, -1.0, 2.0, 0.0):
        hist.observe(value)
    assert hist.sorted_samples() == [-1.0, 0.0, 2.0, 3.0]
    assert hist.percentile(0) == -1.0
    assert hist.max() == 3.0
    hist.observe(-5.0)  # cache must invalidate
    assert hist.percentile(0) == -5.0


def test_get_or_create_is_idempotent_and_typed():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    assert "x" in reg
    assert reg.names() == ["x"]


def test_snapshot_and_render_text():
    reg = MetricsRegistry()
    reg.counter("b.count").incr(2)
    reg.gauge("a.depth").set(1.0)
    reg.histogram("c.lat").observe(0.5)
    snap = reg.snapshot()
    assert list(snap) == ["a.depth", "b.count", "c.lat"]  # sorted
    assert snap["b.count"] == 2
    assert snap["c.lat"]["count"] == 1
    text = reg.render_text()
    assert "a.depth 1" in text
    assert "c.lat count=1" in text
    empty = MetricsRegistry()
    empty.histogram("none")
    assert empty.snapshot()["none"] == {"count": 0}


def test_metric_classes_exported():
    reg = MetricsRegistry()
    assert isinstance(reg.counter("c"), Counter)
    assert isinstance(reg.gauge("g"), Gauge)
    assert isinstance(reg.histogram("h"), Histogram)


def test_registry_from_cluster_snapshot():
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3, seed=3
    )
    cluster.boot()
    book = cluster.logbook(1)
    seqnum = cluster.drive(book.append("hello"))
    cluster.drive(book.read_next(min_seqnum=seqnum))

    reg = registry_from_cluster(cluster)
    assert reg.value("cluster.virtual_time") == cluster.env.now
    assert reg.value("cluster.term_id") >= 1
    assert reg.value("net.messages_sent") > 0
    engine_names = [f"engine.{name}" for name in cluster.engines]
    assert sum(reg.value(f"{p}.appends_started") for p in engine_names) == 1
    assert sum(reg.value(f"{p}.reads_served") for p in engine_names) >= 1
    lookup_names = reg.names(prefix="engine.")
    assert any(n.endswith(".lookups") for n in lookup_names)
    storage_records = sum(
        reg.value(n) for n in reg.names(prefix="storage.") if n.endswith(".records")
    )
    assert storage_records > 0  # the append was replicated and ordered
    seq_entries = sum(
        reg.value(n)
        for n in reg.names(prefix="sequencer.")
        if n.endswith(".entries_appended")
    )
    assert seq_entries >= 1


def test_cluster_metrics_snapshot_uses_obs_registry():
    cluster = BokiCluster(
        num_function_nodes=1, num_storage_nodes=3, num_sequencer_nodes=3, seed=3
    )
    obs = cluster.enable_observability()
    cluster.boot()
    reg = cluster.metrics_snapshot()
    assert reg is obs.metrics  # live registry reused, not a copy
    assert reg.value("cluster.virtual_time") == cluster.env.now


# ---------------------------------------------------------------------------
# Windowed gauges (gauge_window)
# ---------------------------------------------------------------------------

def test_gauge_record_keeps_timestamped_samples():
    reg = MetricsRegistry()
    gauge = reg.gauge("util")
    gauge.record(0.0, 0.2)
    gauge.record(1.0, 0.8)
    assert gauge.value == 0.8  # record also sets the scalar
    assert gauge.samples == [(0.0, 0.2), (1.0, 0.8)]


def test_gauge_record_rejects_time_travel():
    gauge = Gauge("util")
    gauge.record(2.0, 1.0)
    with pytest.raises(ValueError):
        gauge.record(1.0, 1.0)


def test_gauge_window_lookback_duration():
    reg = MetricsRegistry()
    gauge = reg.gauge("depth")
    for t in range(10):
        gauge.record(float(t), float(t))
    stats = reg.gauge_window("depth", window=3.0)
    # end defaults to the last sample (t=9): window covers t in [6, 9].
    assert stats["count"] == 4
    assert stats["mean"] == pytest.approx(7.5)
    assert stats["max"] == 9.0
    assert stats["min"] == 6.0
    assert stats["last"] == 9.0


def test_gauge_window_explicit_bounds():
    reg = MetricsRegistry()
    gauge = reg.gauge("depth")
    for t in range(10):
        gauge.record(float(t), float(t) * 2)
    stats = reg.gauge_window("depth", start=2.0, end=4.0)
    assert stats["count"] == 3  # bounds are inclusive
    assert stats["mean"] == pytest.approx(6.0)
    # start combined with window: the later bound wins.
    stats = reg.gauge_window("depth", window=100.0, start=8.0)
    assert stats["count"] == 2


def test_gauge_window_empty_selection():
    reg = MetricsRegistry()
    reg.gauge("depth").record(1.0, 5.0)
    stats = reg.gauge_window("depth", start=2.0)
    assert stats == {"count": 0, "mean": None, "max": None,
                     "min": None, "last": None}


def test_gauge_window_requires_a_gauge():
    reg = MetricsRegistry()
    reg.counter("reqs")
    with pytest.raises(TypeError):
        reg.gauge_window("reqs")
