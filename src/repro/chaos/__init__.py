"""repro.chaos — deterministic fault injection + guarantee checking.

Jepsen-style testing for the simulated Boki cluster: a seed-deterministic
:class:`FaultPlan` drives crashes, partitions, link faults, and slowdowns
through an injector process on the DES kernel; client operations are
recorded in a global :class:`History`; offline checkers then verify the
paper's guarantees — BokiStore linearizability, BokiFlow exactly-once
effects, BokiQueue no-loss/no-duplicate delivery, and metalog
monotonicity/seal consistency — plus liveness: availability during the
fault window and recovery time (RTO) against per-scenario SLOs.

Run scenarios with ``python -m repro.chaos run <scenario> --seed N``.
"""

from repro.chaos.faults import FaultEvent, FaultInjector, FaultPlan
from repro.chaos.history import History, Op
from repro.chaos.checkers import (
    CheckResult,
    check_exactly_once,
    check_metalog,
    check_queue_delivery,
    check_store_linearizability,
)
from repro.chaos.liveness import check_recovery_slo, recovery_metrics
from repro.chaos.runner import run_scenario, write_verdict

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "History",
    "Op",
    "CheckResult",
    "check_exactly_once",
    "check_metalog",
    "check_queue_delivery",
    "check_recovery_slo",
    "check_store_linearizability",
    "recovery_metrics",
    "run_scenario",
    "write_verdict",
]
