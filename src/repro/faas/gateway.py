"""The FaaS gateway: function registry and request scheduling.

The gateway is the entry point for function requests (§4.2, Figure 2). It
keeps the registry of deployed functions, tracks the live function nodes,
and schedules each invocation onto a node. The default policy is
round-robin; a locality-aware policy can be installed so invocations land
on nodes whose LogBook engine holds the index for the request's LogBook —
the optimization §4.4 describes ("scheduling functions on nodes where their
data is likely to be cached").

Failure handling: every invocation carries a deterministic invocation id.
With the resilience layer enabled (``BokiCluster.enable_resilience``) the
gateway reroutes an invocation to another live function node when the
scheduled node fails mid-call; because the id is stable across reroutes,
functions that log their effects (BokiFlow workflows keyed by workflow id)
deduplicate re-execution through the shared log — Boki's exactly-once path
— while plain functions get documented at-least-once semantics.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.admission.errors import INTERACTIVE, is_overload, retry_after_hint
from repro.obs.recorder import DISABLED
from repro.resil.policy import RetryPolicy, unwrap_failure
from repro.sim.kernel import Environment
from repro.sim.network import Network, RpcError, RpcTimeout
from repro.sim.node import Node
from repro.faas.worker import FunctionNode

#: Workflow invocations can be long chains; give them generous timeouts.
INVOKE_TIMEOUT = 120.0

#: Retry-after hint attached to :class:`NoLiveNodesError`: nodes come
#: back on failure-detection / restart timescales, so hammering sooner
#: than this is wasted load (matches the breaker reset default).
NO_NODES_RETRY_AFTER = 0.25


def _unwrap(exc: RpcError) -> BaseException:
    """Strip nested RpcError layers (client -> gateway -> node) down to the
    original application exception.

    The walk stops at the first non-``RpcError`` cause, so an
    ``RpcTimeout`` that occurred on an inner hop surfaces *as* an
    ``RpcTimeout`` — callers (and retry policies) can distinguish the
    ambiguous case (timeout: the function may have executed) from the
    definite one (the function raised). See ``repro.resil.classify``.
    """
    return unwrap_failure(exc)


class FunctionNotFoundError(Exception):
    """Invocation of a function name with no registered handler."""


class NoLiveNodesError(RuntimeError):
    """Every function node is down: the invocation cannot be scheduled.

    Subclasses ``RuntimeError`` for compatibility with callers that
    caught the previous untyped error. Retryable in principle — nodes
    may restart — so resilience policies do not treat it as permanent.
    Carries a machine-readable ``retry_after`` hint (seconds) so resil
    backoff and admission control agree on one pacing signal.
    """

    def __init__(self, message: str, retry_after: float = NO_NODES_RETRY_AFTER):
        super().__init__(message)
        self.retry_after = retry_after


class Gateway:
    """Routes invocations to function nodes."""

    def __init__(self, env: Environment, net: Network, name: str = "gateway"):
        self.env = env
        self.net = net
        self.node = net.register(Node(env, name, cpu_capacity=32))
        self.function_nodes: List[FunctionNode] = []
        self._functions: Dict[str, Callable] = {}
        self._rr = itertools.count()
        self._invocation_ids = itertools.count(1)
        #: Optional scheduler override: f(fn_name, book_id) -> FunctionNode.
        self.scheduler: Optional[Callable[[str, Optional[int]], FunctionNode]] = None
        #: Optional active-fleet filter (set by the autoscaler): only
        #: these node names receive new invocations. None = every node.
        self.active_nodes: Optional[frozenset] = None
        self.obs = DISABLED
        #: Resilience hub + invoke policy (set by enable_resilience); None
        #: keeps the fail-fast single-attempt behavior.
        self.resil = None
        self.invoke_policy: Optional[RetryPolicy] = None
        #: Online monitor hub (repro.monitor), set by enable_monitoring;
        #: feeds the availability/latency windows behind SLO burn rates.
        self.monitor = None
        #: Admission controller (repro.admission), set by
        #: enable_admission; None admits everything.
        self.admission = None
        #: Tenancy hub (repro.tenant), set by enable_tenancy; None keeps
        #: the single-tenant fast path (no per-tenant accounting at all).
        self.tenancy = None
        #: Gateway-inflight external invocations — maintained always
        #: (plain arithmetic) so the queue gauge exists with or without
        #: admission control.
        self.inflight = 0
        self.inflight_peak = 0
        self.node.handle("faas.invoke", self._h_invoke)

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def add_function_node(self, fnode: FunctionNode) -> None:
        self.function_nodes.append(fnode)
        fnode.bind_gateway(self.invoke_from)
        for fn_name, handler in self._functions.items():
            fnode.register_function(fn_name, handler)

    def register_function(self, fn_name: str, handler: Callable) -> None:
        """Deploy a function to every current and future function node."""
        self._functions[fn_name] = handler
        for fnode in self.function_nodes:
            fnode.register_function(fn_name, handler)

    def enable_resilience(self, resil, policy: Optional[RetryPolicy] = None) -> None:
        """Attach the resilience hub: gateway-side failover across live
        function nodes plus client-side invoke retries.

        The default policy retries timeouts (invocations are deduplicated
        through the log when they log their effects; otherwise
        at-least-once) with a per-attempt timeout short enough to ride
        through failure detection + reconfiguration windows.
        """
        self.resil = resil
        self.invoke_policy = policy or RetryPolicy(
            max_attempts=6, base_delay=5e-3, max_delay=0.2,
            attempt_timeout=1.0, retry_timeouts=True,
            permanent=(FunctionNotFoundError,),
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def pick_node(self, fn_name: str, book_id: Optional[int],
                  exclude=()) -> FunctionNode:
        """Schedule an invocation; ``exclude`` names nodes that already
        failed this invocation (failover re-picks avoid them while other
        nodes remain)."""
        if not self.function_nodes:
            raise NoLiveNodesError("no function nodes attached to gateway")
        if self.scheduler is not None:
            return self.scheduler(fn_name, book_id)
        alive = [f for f in self.function_nodes if f.node.alive]
        if not alive:
            raise NoLiveNodesError("no live function nodes")
        if self.active_nodes is not None:
            # Decommissioned/spare nodes take no new work; if the whole
            # active fleet is down, degrade to any live node rather than
            # fail the invocation.
            active = [f for f in alive if f.name in self.active_nodes]
            alive = active or alive
        preferred = [f for f in alive if f.name not in exclude]
        pool = preferred or alive
        return pool[next(self._rr) % len(pool)]

    def set_active_nodes(self, names) -> None:
        """Restrict scheduling to ``names`` (the autoscaler's active
        engine fleet); ``None`` restores scheduling over every node."""
        self.active_nodes = None if names is None else frozenset(names)

    # ------------------------------------------------------------------
    # Invocation paths
    # ------------------------------------------------------------------
    def _h_invoke(self, payload: dict) -> Generator:
        """Gateway-side handler for external invocations.

        With admission control enabled, every arrival passes the
        controller's check (concurrency limit, deadline-aware early
        rejection, priority classes) *before* a node is picked; shed
        requests bounce straight back to the client as
        :class:`~repro.admission.Overloaded` without consuming a worker
        slot. Completion latency feeds the adaptive limiter; downstream
        overloads (an engine or storage window shed an admitted request)
        feed back as multiplicative decrease.

        With tenancy enabled (``repro.tenant``), a labelled arrival first
        passes its tenant's token bucket, then the *weighted-fair*
        composition of the admission check (an over-share tenant sheds
        first; an under-share tenant is never starved), and — when the
        fair-dispatch gate is configured — drains through the per-tenant
        DRR queue before reaching a worker.
        """
        if payload["fn"] not in self._functions:
            raise FunctionNotFoundError(payload["fn"])
        priority = payload.get("priority", INTERACTIVE)
        tenant = payload.get("tenant")
        hub = self.tenancy if tenant is not None else None
        if hub is not None:
            hub.on_arrival(tenant, priority)
            if self.admission is not None:
                hub.admission_check(self.admission, self.inflight, tenant,
                                    priority=priority,
                                    deadline=payload.get("deadline"))
        elif self.admission is not None:
            self.admission.check(
                self.inflight,
                priority=priority,
                deadline=payload.get("deadline"),
            )
        t_accept = self.env.now
        self.inflight += 1
        if self.inflight > self.inflight_peak:
            self.inflight_peak = self.inflight
        self._record_queue_gauge()
        if hub is not None:
            hub.on_admit(tenant)
        try:
            if hub is not None:
                yield from hub.acquire_dispatch(tenant)
            reply = yield from self._dispatch(payload)
        except BaseException as exc:
            if self.admission is not None and is_overload(exc):
                self.admission.on_downstream_overload()
            raise
        else:
            if self.admission is not None:
                self.admission.on_success(self.env.now - t_accept)
            return reply
        finally:
            if hub is not None:
                hub.on_done(tenant)
            self.inflight -= 1
            self._record_queue_gauge()

    def _record_queue_gauge(self) -> None:
        """Sample the inflight gauge into the obs registry (trace counter
        events are derived from these samples; observation only)."""
        if self.obs.enabled:
            self.obs.metrics.gauge("queue.gateway.inflight").record(
                self.env.now, self.inflight
            )

    def _dispatch(self, payload: dict) -> Generator:
        """Route one admitted invocation to a function node."""
        if self.resil is not None:
            return (yield from self._invoke_with_failover(payload))
        fnode = self.pick_node(payload["fn"], payload.get("book_id"))
        if not self.obs.enabled:
            reply = yield self.net.rpc(
                self.node, fnode.node, "faas.exec", payload, timeout=INVOKE_TIMEOUT
            )
            return reply
        with self.obs.tracer.span(
            "gateway.invoke", node=self.node.name, kind="gateway",
            attrs={"fn": payload["fn"], "scheduled_to": fnode.name},
        ):
            reply = yield self.net.rpc(
                self.node, fnode.node, "faas.exec", payload, timeout=INVOKE_TIMEOUT
            )
            return reply

    def _invoke_with_failover(self, payload: dict) -> Generator:
        """Reroute a failed invocation to another live function node.

        The payload's ``invocation_id`` is stable across reroutes, so a
        rerouted invocation whose first execution actually ran (lost
        reply) deduplicates through the log when the function logs its
        effects. Failed nodes are excluded from re-picks; breakers skip
        nodes with a recent failure streak.

        Deadline propagation: the client stamps each attempt with an
        absolute virtual-time ``deadline``; the gateway never launches or
        retries an execution past it. Without this, a gateway handler
        whose client has already timed out and retried keeps re-driving
        the OLD invocation, and its zombie execution can apply a stale
        write *after* the client's newer operations — which would break
        linearizability, not just waste work.
        """
        resil, policy = self.resil, self.invoke_policy
        deadline = payload.get("deadline")
        attempt = 0
        failed: List[str] = []
        resil.budget.on_attempt()
        while True:
            fnode = self.pick_node(payload["fn"], payload.get("book_id"),
                                   exclude=failed)
            breaker = resil.breaker(fnode.name)
            if not breaker.allow() and len(failed) < len(self.function_nodes):
                resil.counters["breaker_fast_fails"] += 1
                failed.append(fnode.name)
                continue
            attempt_timeout = policy.attempt_timeout or INVOKE_TIMEOUT
            if deadline is not None:
                remaining = deadline - self.env.now
                if remaining <= 0:
                    raise RpcTimeout("faas.exec", fnode.name, 0.0)
                attempt_timeout = min(attempt_timeout, remaining)
            resil.counters["attempts"] += 1
            try:
                reply = yield self.net.rpc(
                    self.node, fnode.node, "faas.exec", payload,
                    timeout=attempt_timeout,
                )
            except (RpcError, RpcTimeout) as exc:
                # Overload sheds are not node failures: the breaker stays
                # untouched (the node is healthy, just saturated) and the
                # retry budget is not charged (no work was started, so
                # there is no amplification to bound).
                shed = is_overload(exc)
                if not shed:
                    breaker.record_failure()
                if not policy.should_retry(exc, attempt):
                    raise
                if not shed and not resil.budget.try_spend():
                    raise
                backoff = policy.backoff(attempt, resil.jitter_rng())
                hint = retry_after_hint(exc)
                if hint is not None:
                    backoff = max(backoff, hint)
                if deadline is not None and self.env.now + backoff >= deadline:
                    raise  # the client has (or will have) given up: no zombies
                resil.counters["retries"] += 1
                resil.counters["reroutes"] += 1
                if fnode.name not in failed:
                    failed.append(fnode.name)
                if len(failed) >= len(self.function_nodes):
                    failed = []  # full cycle: everyone gets another chance
                yield self.env.timeout(backoff)
                attempt += 1
                continue
            breaker.record_success()
            return reply

    def _new_invocation_id(self) -> str:
        return f"inv-{next(self._invocation_ids)}"

    def invoke_from(
        self,
        src_node: Node,
        fn_name: str,
        arg: Any = None,
        book_id: Optional[int] = None,
        baggage: Optional[dict] = None,
        parent_id: Optional[int] = None,
        tenant: Optional[str] = None,
    ) -> Generator:
        """Invoke a function from ``src_node`` (internal fast path).

        Nightcore routes internal (function-to-function) calls through the
        local engine rather than back to the gateway; we model that by
        scheduling here and sending directly src -> function node.
        Returns ``(result, child_baggage)``. A ``tenant`` label is
        inherited by the child (internal calls bypass gateway admission,
        so the label here is lineage, not a second QoS check).
        """
        if fn_name not in self._functions:
            raise FunctionNotFoundError(fn_name)
        payload = {
            "fn": fn_name,
            "arg": arg,
            "book_id": book_id,
            "baggage": baggage or {},
            "parent_id": parent_id,
            "invocation_id": self._new_invocation_id(),
            "deadline": self.env.now + INVOKE_TIMEOUT,
        }
        if tenant is not None:
            payload["tenant"] = tenant
        fnode = self.pick_node(fn_name, book_id)
        try:
            reply = yield self.net.rpc(
                src_node, fnode.node, "faas.exec", payload, timeout=INVOKE_TIMEOUT
            )
        except RpcError as exc:
            raise _unwrap(exc) from None
        return reply["result"], reply["baggage"]

    def external_invoke(
        self,
        client_node: Node,
        fn_name: str,
        arg: Any = None,
        book_id: Optional[int] = None,
        timeout: Optional[float] = None,
        policy: Optional[RetryPolicy] = None,
        priority: str = INTERACTIVE,
        tenant: Optional[str] = None,
    ) -> Generator:
        """Client entry point: client -> gateway -> function node.

        Returns only the result (clients do not see baggage). Application
        errors surface with their original types — including
        :class:`FunctionNotFoundError`, :class:`NoLiveNodesError`,
        :class:`~repro.admission.Overloaded`, and inner-hop
        :class:`RpcTimeout` (see :func:`_unwrap`).

        ``timeout`` bounds each attempt (default the per-policy attempt
        timeout, else :data:`INVOKE_TIMEOUT`); ``policy`` (or the
        gateway's resilience-enabled default) retries the call from the
        client side — the same invocation id is reused, so retried
        invocations that log their effects stay exactly-once.
        ``priority`` tags the request's admission class
        (``"interactive"`` default, ``"batch"`` sheds first under
        overload). ``tenant`` labels the request for per-tenant QoS —
        only meaningful (and only added to the payload) with tenancy
        enabled, so tenancy-off payloads stay byte-identical.
        """
        if policy is None and self.resil is not None:
            policy = self.invoke_policy
        t_start = self.env.now
        payload = {
            "fn": fn_name, "arg": arg, "book_id": book_id, "baggage": {},
            "invocation_id": self._new_invocation_id(),
            "priority": priority,
        }
        if tenant is not None:
            payload["tenant"] = tenant
        attempt = 0
        if policy is not None and self.resil is not None:
            self.resil.budget.on_attempt()
        while True:
            deadline = timeout
            if deadline is None:
                deadline = (policy.attempt_timeout if policy is not None
                            else None) or INVOKE_TIMEOUT
            # Stamp the attempt's absolute deadline so the gateway stops
            # driving this invocation once the client gives up on it.
            payload["deadline"] = self.env.now + deadline
            try:
                reply = yield self.net.rpc(
                    client_node, self.node, "faas.invoke", payload,
                    timeout=deadline,
                )
                if self.monitor is not None:
                    self.monitor.on_invoke(t_start, self.env.now, True)
                return reply["result"]
            except (RpcError, RpcTimeout) as exc:
                cause = _unwrap(exc)
                # Shed requests were never executed: retrying them is
                # safe and must not drain the retry budget — but the
                # shedding layer's retry-after hint floors the backoff,
                # so a storm of shed clients spreads out instead of
                # re-arriving in lockstep.
                shed = is_overload(exc)
                if policy is None or not policy.should_retry(exc, attempt):
                    if self.monitor is not None:
                        self.monitor.on_invoke(t_start, self.env.now, False)
                    if isinstance(exc, RpcTimeout):
                        raise  # ambiguous: surface the timeout itself
                    raise cause from None
                if (not shed and self.resil is not None
                        and not self.resil.budget.try_spend()):
                    if self.monitor is not None:
                        self.monitor.on_invoke(t_start, self.env.now, False)
                    if isinstance(exc, RpcTimeout):
                        raise
                    raise cause from None
                rng = (self.resil.jitter_rng() if self.resil is not None
                       else self.net.streams.stream("resil-jitter"))
                if self.resil is not None:
                    self.resil.counters["retries"] += 1
                delay = policy.backoff(attempt, rng)
                hint = retry_after_hint(exc)
                if hint is not None:
                    delay = max(delay, hint)
                yield self.env.timeout(delay)
                attempt += 1
