"""Cluster observability: a one-call snapshot of every component's state.

Production shared-log deployments live and die by their metrics; this
module aggregates what the simulated components already count — appends,
reads, cache hit rates, metalog entries, reconfigurations, message volume —
into a single report for debugging experiments and asserting invariants in
tests (e.g. "no remote reads happened", "storage reclaimed trimmed
records").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class EngineStats:
    appends_started: int
    reads_served: int
    remote_reads: int
    cache_hits: int
    cache_misses: int
    cache_used_bytes: int
    cache_evictions: int
    index_records: Dict[int, int]

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class StorageStats:
    records_by_seqnum: int
    aux_backups: int
    trimmed: int


@dataclass
class SequencerStats:
    entries_appended: int
    replicas: int
    sealed_replicas: int


@dataclass
class ClusterStats:
    virtual_time: float
    term_id: int
    reconfigurations: int
    messages_sent: int
    engines: Dict[str, EngineStats]
    storage: Dict[str, StorageStats]
    sequencers: Dict[str, SequencerStats]

    def total_appends(self) -> int:
        return sum(e.appends_started for e in self.engines.values())

    def total_reads(self) -> int:
        return sum(e.reads_served for e in self.engines.values())

    def total_remote_reads(self) -> int:
        return sum(e.remote_reads for e in self.engines.values())

    def total_trimmed(self) -> int:
        return sum(s.trimmed for s in self.storage.values())

    def summary_lines(self) -> List[str]:
        lines = [
            f"t={self.virtual_time:.3f}s term={self.term_id} "
            f"reconfigs={self.reconfigurations} messages={self.messages_sent}",
            f"appends={self.total_appends()} reads={self.total_reads()} "
            f"(remote {self.total_remote_reads()}) trimmed={self.total_trimmed()}",
        ]
        for name, engine in sorted(self.engines.items()):
            lines.append(
                f"  engine {name}: appends={engine.appends_started} "
                f"reads={engine.reads_served} hit-rate={engine.cache_hit_rate:.0%} "
                f"cache={engine.cache_used_bytes >> 10}KB"
            )
        for name, storage in sorted(self.storage.items()):
            lines.append(
                f"  storage {name}: records={storage.records_by_seqnum} "
                f"aux-backups={storage.aux_backups} trimmed={storage.trimmed}"
            )
        for name, seq in sorted(self.sequencers.items()):
            lines.append(
                f"  sequencer {name}: entries={seq.entries_appended} "
                f"replicas={seq.replicas} sealed={seq.sealed_replicas}"
            )
        return lines


def collect_stats(cluster) -> ClusterStats:
    """Snapshot a :class:`~repro.core.cluster.BokiCluster`."""
    engines = {}
    for name, engine in cluster.engines.items():
        engines[name] = EngineStats(
            appends_started=engine.appends_started,
            reads_served=engine.reads_served,
            remote_reads=engine.remote_reads,
            cache_hits=engine.cache.hits,
            cache_misses=engine.cache.misses,
            cache_used_bytes=engine.cache.used_bytes,
            cache_evictions=engine.cache.evictions,
            index_records={
                log_id: index.record_count for log_id, index in engine.indices.items()
            },
        )
    storage = {
        node.name: StorageStats(
            records_by_seqnum=len(node._by_seqnum),
            aux_backups=len(node._aux_backup),
            trimmed=node.trimmed_count,
        )
        for node in cluster.storage_nodes
    }
    sequencers = {
        node.name: SequencerStats(
            entries_appended=node.entries_appended,
            replicas=len(node.replicas),
            sealed_replicas=sum(1 for r in node.replicas.values() if r.sealed),
        )
        for node in cluster.sequencer_nodes
    }
    term = cluster.controller.current_term
    return ClusterStats(
        virtual_time=cluster.env.now,
        term_id=term.term_id if term else 0,
        reconfigurations=cluster.controller.reconfig_count,
        messages_sent=cluster.net.messages_sent,
        engines=engines,
        storage=storage,
        sequencers=sequencers,
    )
