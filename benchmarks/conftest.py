"""Benchmark-suite fixtures: per-test artifact telemetry lifecycle."""

import pytest

from benchmarks import _common


@pytest.fixture(autouse=True)
def _artifact_session():
    """Each benchmark gets a fresh telemetry session, so its artifact's
    counters and critical-path attribution cover exactly its own clusters."""
    _common.reset_artifact_session()
    yield
    _common.reset_artifact_session()
