"""repro.tenant — first-class multi-tenancy for the Boki reproduction.

Boki's platform serves many tenants from one shared metalog (§3): each
tenant gets an isolated log namespace, a QoS contract, and placement.
This package models that as three composable pieces:

- :mod:`repro.tenant.registry` — tenant -> *log space* assignment (the
  high-bits prefix that namespaces book ids and tags in the index) plus
  the :class:`~repro.tenant.registry.TenantQoS` contract.
- :mod:`repro.tenant.qos` — the deterministic per-tenant token bucket
  and the typed :class:`~repro.tenant.qos.TenantThrottled` shed.
- :mod:`repro.tenant.hub` — the :class:`~repro.tenant.hub.TenancyHub`
  runtime the gateway consults on every labelled arrival: rate limits,
  weighted-fair admission composed with ``repro.admission``, the
  optional DRR dispatch gate, and per-tenant metrics/fairness snapshots.

Enable with ``cluster.enable_tenancy()``; label work with
``cluster.invoke(..., tenant="acme")``. Unconfigured clusters are
byte-identical to historical single-tenant runs.
"""

from repro.tenant.hub import TenancyHub, resolve_tenant
from repro.tenant.qos import TenantThrottled, TokenBucket
from repro.tenant.registry import (
    DEFAULT_TENANT,
    TagScope,
    TenantQoS,
    TenantRegistry,
    UnknownTenantError,
)

__all__ = [
    "DEFAULT_TENANT",
    "TagScope",
    "TenancyHub",
    "TenantQoS",
    "TenantRegistry",
    "TenantThrottled",
    "TokenBucket",
    "UnknownTenantError",
    "resolve_tenant",
]
