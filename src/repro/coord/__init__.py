"""Coordination service: a ZooKeeper-like substrate for Boki's control plane.

Boki uses ZooKeeper for three things (§4.2): storing the cluster
configuration, detecting node failures via sessions, and electing the
controller leader (§4.5). This package implements all three against the
simulation substrate:

- :class:`~repro.coord.server.CoordServer` — the service: a znode tree with
  versions, ephemeral nodes, watches, and sessions with heartbeat expiry.
- :class:`~repro.coord.client.CoordClient` — the per-node client: session
  keepalive process, CRUD wrappers, watch subscription, and leader election.

Like the paper, we treat the coordination ensemble itself as reliable (the
paper runs a 3-node ZK cluster and never fails it); the server runs on one
simulated node and its own fault tolerance is out of scope.
"""

from repro.coord.client import CoordClient, LeaderElection
from repro.coord.server import (
    BadVersionError,
    CoordServer,
    NodeExistsError,
    NoNodeError,
    SessionExpiredError,
    WatchEvent,
)

__all__ = [
    "BadVersionError",
    "CoordClient",
    "CoordServer",
    "LeaderElection",
    "NoNodeError",
    "NodeExistsError",
    "SessionExpiredError",
    "WatchEvent",
]
