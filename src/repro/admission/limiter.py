"""Adaptive concurrency limiting (AIMD over observed latency).

The limiter answers one question: *how many requests may be in flight
through the gateway right now?* It adapts the answer from two signals:

- **Observed end-to-end latency** vs a target: an EWMA of accepted
  request latencies. While the smoothed latency sits at or below the
  target the limit grows additively (``+increase/limit`` per completion,
  i.e. roughly +1 per round trip of a full window — TCP-Reno style);
  when it sits above, the limit decays gently (``×latency_backoff``).
- **Explicit overload backpressure** from downstream (an engine or
  storage node shed the request): multiplicative decrease
  (``×overload_backoff``), the strong signal that the cluster is beyond
  saturation, not merely slow.

Everything is plain arithmetic on observed completions — no RNG, no
kernel events, no timers — so an enabled-but-idle limiter cannot perturb
a same-seed run (the transparency invariant every optional layer in this
repo keeps; see ``tests/admission/test_transparency.py``).
"""

from __future__ import annotations

from typing import Optional


class AdaptiveLimiter:
    """AIMD concurrency limit driven by latency and overload signals."""

    def __init__(
        self,
        initial: float = 64.0,
        min_limit: float = 4.0,
        max_limit: float = 4096.0,
        target_latency: float = 0.050,
        alpha: float = 0.3,
        increase: float = 1.0,
        latency_backoff: float = 0.98,
        overload_backoff: float = 0.7,
    ):
        if not min_limit <= initial <= max_limit:
            raise ValueError("initial limit must lie within [min, max]")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.min_limit = float(min_limit)
        self.max_limit = float(max_limit)
        self.target_latency = float(target_latency)
        self.alpha = float(alpha)
        self.increase = float(increase)
        self.latency_backoff = float(latency_backoff)
        self.overload_backoff = float(overload_backoff)
        self._limit = float(initial)
        self.ewma_latency: Optional[float] = None
        self.decreases = 0

    @property
    def limit(self) -> int:
        """Current integer concurrency limit (floor of the float state)."""
        return int(self._limit)

    def on_success(self, latency: float) -> None:
        """Account one accepted completion with end-to-end ``latency``."""
        if self.ewma_latency is None:
            self.ewma_latency = latency
        else:
            self.ewma_latency = (
                self.alpha * latency + (1.0 - self.alpha) * self.ewma_latency
            )
        if self.ewma_latency <= self.target_latency:
            self._limit = min(
                self.max_limit, self._limit + self.increase / self._limit
            )
        else:
            self._clamp_down(self._limit * self.latency_backoff)

    def on_overload(self) -> None:
        """Downstream shed one of our requests: multiplicative decrease."""
        self._clamp_down(self._limit * self.overload_backoff)

    def _clamp_down(self, value: float) -> None:
        value = max(self.min_limit, value)
        if value < self._limit:
            self.decreases += 1
        self._limit = value

    def service_estimate(self, default: float = 0.010) -> float:
        """Best current estimate of one request's service time — the
        EWMA when we have observations, else ``default``. Drives both
        deadline-aware early rejection and retry-after hints."""
        return self.ewma_latency if self.ewma_latency is not None else default

    def snapshot(self) -> dict:
        return {
            "limit": self.limit,
            "ewma_latency": self.ewma_latency,
            "decreases": self.decreases,
        }
