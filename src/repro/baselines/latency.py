"""Latency models for simulated external services.

All constants are medians of lognormal service-time distributions (sigma
controls the tail). They are calibrated so the *reproduced* comparisons
match the paper's measured gaps; provenance for each number is noted.

The key structural facts the models preserve:

- DynamoDB: every operation is a full HTTPS round trip to a managed
  store. Beldi's Figure-11c gap (19 ms invoke vs Boki's 3.8 ms, both doing
  5 log appends) implies roughly 1.8 ms per DynamoDB update and about two
  DynamoDB updates per Beldi log append (intention + step record of its
  linked DAAL).
- MongoDB: sub-ms primary reads (paper Fig. 12b: 0.86 ms UserLogin) and
  multi-document transactions costing several round trips (7.5 ms class).
- SQS: a managed HTTP API, ~6 ms per send/receive under light load with
  heavy tails under saturation (Table 4).
- Pulsar: broker on the function nodes, ~1-2 ms publish with batching.
- Redis: sub-ms remote cache ops (Table 5's aux-data variant).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServiceLatency:
    """A lognormal service-time model."""

    median: float
    sigma: float = 0.35

    def sample(self, rng) -> float:
        import math

        return rng.lognormvariate(math.log(self.median), self.sigma)


# -- DynamoDB (paper §7.2; calibrated to Beldi primitive-op latencies) --
DYNAMODB_GET = ServiceLatency(median=1.3e-3, sigma=0.35)
DYNAMODB_PUT = ServiceLatency(median=1.8e-3, sigma=0.35)
DYNAMODB_COND_UPDATE = ServiceLatency(median=1.9e-3, sigma=0.35)
#: Concurrent request capacity of the simulated regional endpoint. High —
#: DynamoDB scales; Beldi's cost is per-request latency, not saturation.
DYNAMODB_CONCURRENCY = 4096

# -- MongoDB (paper §7.3, Fig. 12b) --
MONGODB_READ = ServiceLatency(median=0.65e-3, sigma=0.45)
MONGODB_WRITE = ServiceLatency(median=1.1e-3, sigma=0.45)
#: Extra per-statement cost inside a multi-document transaction, plus the
#: commit round (majority write concern across the 3-replica set).
MONGODB_TXN_STMT = ServiceLatency(median=0.9e-3, sigma=0.4)
MONGODB_TXN_COMMIT = ServiceLatency(median=2.2e-3, sigma=0.4)
MONGODB_CONCURRENCY = 128

# -- Cloudburst (paper §7.3, Fig. 13): KVS cache on function nodes backed
#    by an Anna-style store; causal consistency. Service times and the
#    effective concurrency are calibrated to Figure 13's measured curves:
#    ~1 ms gets at moderate load, rising toward 2.3 ms as the KVS saturates
#    at high client counts (where BokiStore's get advantage reaches 2x). --
CLOUDBURST_CACHE_HIT = ServiceLatency(median=0.7e-3, sigma=0.4)
CLOUDBURST_CACHE_MISS = ServiceLatency(median=1.4e-3, sigma=0.4)
CLOUDBURST_PUT = ServiceLatency(median=1.1e-3, sigma=0.4)
CLOUDBURST_CONCURRENCY = 48

# -- Amazon SQS (paper §7.4, Table 4) --
SQS_SEND = ServiceLatency(median=4.5e-3, sigma=0.6)
SQS_RECEIVE = ServiceLatency(median=4.5e-3, sigma=0.6)
#: Per-queue request capacity; saturation produces SQS's large queueing
#: delays in the 4:1 producer-heavy configurations.
SQS_CONCURRENCY = 96

# -- Apache Pulsar (paper §7.4) --
PULSAR_PUBLISH = ServiceLatency(median=1.6e-3, sigma=0.45)
PULSAR_RECEIVE = ServiceLatency(median=1.4e-3, sigma=0.45)
PULSAR_CONCURRENCY = 256

# -- Redis (paper §7.5, Table 5's "AuxData w/ Redis") --
REDIS_GET = ServiceLatency(median=0.25e-3, sigma=0.3)
REDIS_PUT = ServiceLatency(median=0.25e-3, sigma=0.3)
REDIS_CONCURRENCY = 256
