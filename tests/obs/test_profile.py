"""Kernel profiler: event counts, queue depth, per-node busy time."""

import pytest

from repro.obs.profile import KernelProfiler
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.randvar import RandomStreams


def test_counts_events_and_rates():
    env = Environment()
    prof = KernelProfiler(env, bucket=0.5)

    def ticker():
        for _ in range(10):
            yield env.timeout(0.1)

    env.process(ticker())
    env.run(until=2.0)
    assert prof.events_processed >= 10
    assert prof.events_per_virtual_second() > 0
    assert prof.mean_queue_depth >= 0
    assert prof.max_queue_depth >= 0
    assert sum(prof.events_by_bucket.values()) == prof.events_processed
    summary = prof.summary()
    assert summary["events_processed"] == prof.events_processed


def test_node_busy_time_integral():
    env = Environment()
    net = Network(env, RandomStreams(seed=0))
    node = net.register(Node(env, "n", cpu_capacity=2))
    prof = KernelProfiler(env)
    profile = prof.attach_node(node)
    assert prof.attach_node(node) is profile  # idempotent

    def work():
        yield node.cpu.use(0.5)

    env.process(work())
    env.run(until=2.0)
    profile.settle()
    assert profile.busy_time == pytest.approx(0.5)
    # 0.5 cpu-seconds over 2s of 2 cpus -> 12.5% utilization.
    assert profile.utilization(0.0, 2.0) == pytest.approx(0.125)
    assert 0 < profile.utilization(0.0) <= 1.0


def test_concurrent_use_integrates_overlap():
    env = Environment()
    net = Network(env, RandomStreams(seed=0))
    node = net.register(Node(env, "n", cpu_capacity=4))
    prof = KernelProfiler(env)
    profile = prof.attach_node(node)

    def work():
        yield node.cpu.use(1.0)

    for _ in range(3):
        env.process(work())
    env.run(until=2.0)
    profile.settle()
    assert profile.busy_time == pytest.approx(3.0)


def test_detach_removes_kernel_hook():
    env = Environment()
    prof = KernelProfiler(env)
    assert env.profiler is prof

    def ticker():
        yield env.timeout(0.1)

    env.process(ticker())
    env.run(until=0.2)
    seen = prof.events_processed
    assert seen > 0
    prof.detach()
    assert env.profiler is None
    env.process(ticker())
    env.run(until=0.5)
    assert prof.events_processed == seen  # no longer counting


def test_report_lines_render():
    env = Environment()
    net = Network(env, RandomStreams(seed=0))
    node = net.register(Node(env, "busy", cpu_capacity=1))
    prof = KernelProfiler(env)
    prof.attach_node(node)

    def work():
        yield node.cpu.use(0.25)

    env.process(work())
    env.run(until=1.0)
    lines = prof.report_lines()
    assert any("kernel:" in line for line in lines)
    assert any("busy" in line for line in lines)


def test_bucket_width_validated():
    env = Environment()
    with pytest.raises(ValueError):
        KernelProfiler(env, bucket=0.0)
