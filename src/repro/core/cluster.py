"""Cluster assembly: wire a full Boki deployment in one call.

:class:`BokiCluster` builds the simulation environment, network, control
plane (coordination service + controller), gateway, function nodes with
their LogBook engines, storage nodes, and sequencer nodes — the topology of
Figure 2 — and installs the initial term. It also provides the client-side
helpers the benchmarks and examples use.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.coord import CoordClient, CoordServer
from repro.core.config import BokiConfig, TermConfig
from repro.core.controller import NODES_PREFIX, Controller
from repro.core.engine import LogBookEngine
from repro.core.logbook import LogBook
from repro.core.types import BAGGAGE_POSITIONS, merge_positions
from repro.faas import FunctionContext, FunctionNode, Gateway
from repro.sim import Environment, Network, Node
from repro.sim.randvar import RandomStreams


class BokiCluster:
    """A complete simulated Boki deployment."""

    def __init__(
        self,
        num_function_nodes: int = 4,
        num_storage_nodes: int = 3,
        num_sequencer_nodes: int = 3,
        num_logs: int = 1,
        index_engines_per_log: Optional[int] = None,
        config: Optional[BokiConfig] = None,
        seed: int = 0,
        workers_per_node: int = 64,
        use_coord_sessions: bool = False,
        num_spare_function_nodes: int = 0,
        num_spare_storage_nodes: int = 0,
    ):
        self.config = config or BokiConfig()
        self.config.num_logs = num_logs
        self.env = Environment()
        self.streams = RandomStreams(seed=seed)
        self.net = Network(self.env, self.streams)
        FunctionContext.register_merger(BAGGAGE_POSITIONS, merge_positions)

        # Control plane.
        coord_node = self.net.register(Node(self.env, "coord", cpu_capacity=16))
        self.coord_server = CoordServer(self.env, self.net, coord_node)
        self.controller = Controller(
            self.env,
            self.net,
            "controller",
            self.config,
            coord_client_factory=lambda node: CoordClient(self.env, self.net, node),
        )

        # FaaS plane.
        self.gateway = Gateway(self.env, self.net)
        self.function_nodes: List[FunctionNode] = []
        self.engines: Dict[str, LogBookEngine] = {}
        # Spares are fully wired (gateway, controller, sessions) but sit
        # outside the initial active fleet — the autoscaler's headroom.
        for i in range(num_function_nodes + num_spare_function_nodes):
            fnode = FunctionNode(
                self.env, self.net, f"func-{i}", workers=workers_per_node,
                dispatch_overhead=50e-6,
            )
            self.gateway.add_function_node(fnode)
            self.function_nodes.append(fnode)
            engine = LogBookEngine(self.env, self.net, fnode.node, self.config)
            self.engines[fnode.name] = engine
            self.controller.register_component(fnode.name, engine, "engine")

        # Storage plane.
        from repro.core.storage import StorageNode

        self.storage_nodes: List[StorageNode] = []
        for i in range(num_storage_nodes + num_spare_storage_nodes):
            snode = StorageNode(self.env, self.net, f"storage-{i}", self.config)
            self.storage_nodes.append(snode)
            self.controller.register_component(snode.name, snode, "storage")

        if num_spare_function_nodes:
            base_engines = [f"func-{i}" for i in range(num_function_nodes)]
            self.controller.active_engines = base_engines
            self.gateway.set_active_nodes(base_engines)
        if num_spare_storage_nodes:
            self.controller.active_storage = [
                f"storage-{i}" for i in range(num_storage_nodes)
            ]

        # Sequencer plane.
        from repro.core.sequencer import SequencerNode

        self.sequencer_nodes: List[SequencerNode] = []
        for i in range(num_sequencer_nodes):
            qnode = SequencerNode(self.env, self.net, f"seq-{i}", self.config)
            self.sequencer_nodes.append(qnode)
            self.controller.register_component(qnode.name, qnode, "sequencer")

        # Client node for external invocations / standalone logbooks.
        self.client_node = self.net.register(Node(self.env, "client", cpu_capacity=64))
        self._index_engines_per_log = index_engines_per_log
        self._use_coord_sessions = use_coord_sessions
        self.term: Optional[TermConfig] = None
        self._book_rr = itertools.count()
        self.obs = None
        self.resil = None
        self.elastic = None
        self.monitor = None
        self.admission = None
        self.tenancy = None

    # ------------------------------------------------------------------
    # Observability (repro.obs)
    # ------------------------------------------------------------------
    def enable_observability(self, profile: bool = False):
        """Switch on distributed tracing (and optionally kernel profiling)
        for every component; returns the :class:`~repro.obs.ObsRecorder`.

        Tracing is purely observational — it creates no simulation events,
        so enabling it does not change virtual-time results.
        """
        from repro.obs import ObsRecorder

        if self.obs is not None:
            return self.obs
        obs = self.obs = ObsRecorder(self.env, profile=profile)
        self.net.obs = obs
        self.gateway.obs = obs
        for fnode in self.function_nodes:
            fnode.obs = obs
        for engine in self.engines.values():
            engine.obs = obs
        for snode in self.storage_nodes:
            snode.obs = obs
        for qnode in self.sequencer_nodes:
            qnode.obs = obs
        if profile:
            for name, node in self.net.nodes.items():
                obs.profiler.attach_node(node)
        return obs

    # ------------------------------------------------------------------
    # Online monitoring (repro.monitor)
    # ------------------------------------------------------------------
    def enable_monitoring(
        self,
        rules=None,
        alerting: bool = True,
        interval: float = 0.05,
        ring: int = 512,
        context=None,
    ):
        """Switch on the online invariant monitors for every component
        and (by default) the SLO burn-rate alerting layer + flight
        recorder; returns the :class:`~repro.monitor.MonitorHub`.

        Monitors observe, never perturb: taps are synchronous attribute
        calls, the alert evaluator is a read-only kernel process, and no
        RNG is consumed — same-seed runs stay byte-identical with
        monitoring on or off. Scenario-local objects (a BokiQueue, the
        DynamoDB model, a FaultInjector) are attached by setting their
        ``.monitor`` attribute to the returned hub.
        """
        from repro.obs.alerts import AlertManager, FlightRecorder
        from repro.obs.monitor import MonitorHub

        if self.monitor is not None:
            return self.monitor
        hub = self.monitor = MonitorHub(self.env)
        self.gateway.monitor = hub
        for engine in self.engines.values():
            engine.monitor = hub
        for snode in self.storage_nodes:
            snode.monitor = hub
        for qnode in self.sequencer_nodes:
            qnode.monitor = hub
        if alerting:
            hub.recorder = FlightRecorder(capacity=ring, context=context)
            hub.recorder.hub = hub
            hub.alerts = AlertManager(hub, rules=rules, interval=interval)
            self.env.process(hub.alerts.run(self.env), name="monitor-alerts")
        return hub

    # ------------------------------------------------------------------
    # Resilience (repro.resil)
    # ------------------------------------------------------------------
    def enable_resilience(self, policy=None, invoke_policy=None):
        """Switch on end-to-end failure recovery for every component:
        gateway failover + client invoke retries, storage-replica and
        index-engine read failover, and trim retries through
        reconfiguration. Returns the :class:`~repro.resil.Resilience` hub.

        Determinism: on a fault-free run the layer consumes no
        randomness and adds no virtual-time events, so same-seed results
        are byte-identical with the layer on or off.
        """
        from repro.resil import Resilience

        if self.resil is not None:
            return self.resil
        resil = self.resil = Resilience(
            self.env, self.net, self.streams, policy=policy
        )
        self.gateway.enable_resilience(resil, policy=invoke_policy)
        for engine in self.engines.values():
            engine.resil = resil
        return resil

    # ------------------------------------------------------------------
    # Admission control (repro.admission)
    # ------------------------------------------------------------------
    def enable_admission(
        self,
        limiter=None,
        batch_share: float = 0.7,
        engine_window: Optional[int] = None,
        storage_window: Optional[int] = None,
        codel_target: float = 0.010,
        codel_interval: float = 0.100,
    ):
        """Switch on end-to-end overload control: the gateway's adaptive
        concurrency limiter + deadline-aware early rejection, and bounded
        inflight windows with CoDel-style shedding at every engine and
        storage node. Returns the
        :class:`~repro.admission.AdmissionController`.

        Integrates with the other layers automatically: with
        ``enable_elasticity`` attached, shedding stays disarmed while the
        fleet can still scale out; with ``enable_monitoring``, admission
        decisions feed the shed-rate window and burn-rate alerting; with
        ``enable_resilience``, shed requests are retried after the
        shedder's retry-after hint without charging the retry budget.

        Determinism: every admission decision is plain arithmetic over
        observed state — no RNG, no extra kernel events — so fault-free,
        under-capacity runs stay byte-identical with the layer on or off.
        """
        from repro.admission import (
            ENGINE_WINDOW,
            STORAGE_WINDOW,
            AdmissionController,
            NodeAdmission,
        )

        if self.admission is not None:
            return self.admission
        controller = self.admission = AdmissionController(
            self.env, limiter=limiter, batch_share=batch_share
        )
        controller.cluster = self
        self.gateway.admission = controller
        for name, engine in self.engines.items():
            engine.admission = NodeAdmission(
                self.env, f"engine.{name}",
                capacity=engine_window or ENGINE_WINDOW,
                service_time=self.config.engine_service,
                codel_target=codel_target, codel_interval=codel_interval,
                controller=controller,
            )
        for snode in self.storage_nodes:
            snode.admission = NodeAdmission(
                self.env, f"storage.{snode.name}",
                capacity=storage_window or STORAGE_WINDOW,
                service_time=self.config.storage_service,
                codel_target=codel_target, codel_interval=codel_interval,
                controller=controller,
            )
        return controller

    # ------------------------------------------------------------------
    # Elasticity (repro.elastic)
    # ------------------------------------------------------------------
    def enable_elasticity(self, start: bool = True, **kwargs):
        """Attach (and by default start) the load-driven autoscaler; see
        :class:`~repro.elastic.Autoscaler` for the knobs. Build the
        cluster with ``num_spare_function_nodes``/``num_spare_storage_nodes``
        so scale-out has headroom. Returns the autoscaler.
        """
        from repro.elastic import Autoscaler

        if self.elastic is not None:
            return self.elastic
        self.elastic = Autoscaler(self, **kwargs)
        if start:
            self.elastic.start()
        return self.elastic

    # ------------------------------------------------------------------
    # Multi-tenancy (repro.tenant)
    # ------------------------------------------------------------------
    def enable_tenancy(self, registry=None):
        """Switch on first-class multi-tenancy: per-tenant log spaces,
        QoS (token-bucket rate limits + weighted-fair admission), and
        per-tenant accounting. Returns the
        :class:`~repro.tenant.TenancyHub`.

        Register tenants with :meth:`register_tenant`, then label work
        with ``invoke(..., tenant="acme")`` / ``logbook(...,
        tenant="acme")``. Unlabelled work belongs to the reserved
        ``default`` tenant, whose log space maps identically — so a
        cluster that enables tenancy but registers no tenants runs
        byte-identical to one that never did.
        """
        from repro.tenant import TenancyHub

        if self.tenancy is not None:
            return self.tenancy
        hub = self.tenancy = TenancyHub(self.env, registry, cluster=self)
        self.gateway.tenancy = hub
        return hub

    def register_tenant(self, tenant: str, **qos):
        """Register a tenant on the tenancy hub (enable_tenancy first);
        QoS keywords as in :class:`~repro.tenant.TenantQoS`."""
        if self.tenancy is None:
            raise RuntimeError("call enable_tenancy() before registering tenants")
        return self.tenancy.registry.register(tenant, **qos)

    def metrics_snapshot(self):
        """Current cluster metrics as a :class:`~repro.obs.MetricsRegistry`
        (component counters plus any live obs metrics)."""
        from repro.obs import registry_from_cluster

        registry = self.obs.metrics if self.obs is not None else None
        return registry_from_cluster(self, registry)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Generator:
        """Install the initial term (and optionally node sessions +
        failure detection); yield from this inside a process, or call
        :meth:`boot` to run it synchronously."""
        if self._use_coord_sessions:
            yield from self._register_sessions()
            self.controller.start_failure_detector()
        self.term = yield from self.controller.install_initial_term(
            num_logs=self.config.num_logs,
            index_engines_per_log=self._index_engines_per_log,
        )
        return self.term

    def boot(self) -> TermConfig:
        """Run the simulation until the cluster is ready."""
        proc = self.env.process(self.start(), name="cluster-boot")
        return self.env.run_until(proc, limit=60.0)

    def _register_sessions(self) -> Generator:
        """Each data-plane node registers an ephemeral znode so the
        controller can detect its failure."""
        for name, component in self.controller.components.items():
            client = CoordClient(self.env, self.net, component.node)
            component.coord_client = client
            yield from client.start_session()
            yield from client.create(f"{NODES_PREFIX}/{name}", name, ephemeral=True)

    # ------------------------------------------------------------------
    # Client helpers
    # ------------------------------------------------------------------
    def engine_of(self, node_name: str) -> LogBookEngine:
        return self.engines[node_name]

    def any_engine(self) -> LogBookEngine:
        return next(iter(self.engines.values()))

    def logbook(self, book_id: int, engine: Optional[LogBookEngine] = None,
                tenant: Optional[str] = None) -> LogBook:
        """A standalone LogBook handle (microbenchmarks, tests); bound to
        ``engine`` or round-robin over the function nodes. With a
        ``tenant`` label (tenancy enabled), the book id and every
        explicit tag are namespaced into the tenant's log space."""
        if engine is None:
            names = list(self.engines)
            engine = self.engines[names[next(self._book_rr) % len(names)]]
        from repro.tenant.hub import resolve_tenant

        tenant = resolve_tenant(tenant, self.tenancy)
        if tenant is None:
            return LogBook.standalone(engine, book_id)
        registry = self.tenancy.registry
        return LogBook.standalone(
            engine,
            registry.scope_book(tenant, book_id),
            tag_scope=registry.tag_scope(tenant),
        )

    def register_function(self, fn_name: str, handler: Callable) -> None:
        self.gateway.register_function(fn_name, handler)

    def invoke(self, fn_name: str, arg: Any = None, book_id: Optional[int] = None,
               timeout: Optional[float] = None, policy=None,
               priority: str = "interactive",
               tenant: Optional[str] = None) -> Generator:
        """External invocation from the cluster's client node.

        ``priority`` is the admission class (``"interactive"`` or
        ``"batch"``, see :mod:`repro.admission`) — ignored unless
        ``enable_admission`` is on, where batch traffic sheds first.
        ``tenant`` labels the invocation for per-tenant QoS and log-space
        isolation (``repro.tenant``); with tenancy enabled, unlabelled
        invocations belong to the reserved ``default`` tenant.
        """
        from repro.tenant.hub import resolve_tenant

        tenant = resolve_tenant(tenant, self.tenancy)
        if tenant is not None and book_id is not None:
            book_id = self.tenancy.registry.scope_book(tenant, book_id)
        return (
            yield from self.gateway.external_invoke(
                self.client_node, fn_name, arg, book_id=book_id,
                timeout=timeout, policy=policy, priority=priority,
                tenant=tenant,
            )
        )

    def logbook_for(self, ctx: FunctionContext) -> LogBook:
        """The LogBook bound to a function context — looks up the engine
        co-located on the context's node (what Boki's runtime does when a
        function makes LogBook API calls). The context's book id arrives
        already scoped; a tenant label adds the tag-scoping hook."""
        engine = self.engines[ctx.node.name]
        tag_scope = None
        if self.tenancy is not None and ctx.tenant is not None:
            tag_scope = self.tenancy.registry.tag_scope(ctx.tenant)
        return LogBook.for_context(engine, ctx, tag_scope=tag_scope)

    def run(self, until: float) -> None:
        self.env.run(until=until)

    def drive(self, gen: Generator, limit: float = 600.0) -> Any:
        """Run one client process to completion."""
        proc = self.env.process(gen)
        return self.env.run_until(proc, limit=limit)
