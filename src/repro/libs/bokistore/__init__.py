"""BokiStore: durable object storage for stateful functions (§5.2).

JSON objects over a LogBook, with cross-object transactions (Tango's
protocol) and auxiliary-data accelerated log replay (§5.4). Motivated by
Cloudflare's Durable Objects, but more powerful: transactions span objects.

Example::

    store = BokiStore(book)
    yield from store.update("x", [{"op": "set", "path": "a.c", "value": "bar"}])
    view = yield from store.get_object("x")
    view.get("a.c")  # "bar"

    txn = yield from Transaction(store).begin()
    alice = yield from txn.get_object("alice")
    if alice.get("balance") > 10:
        alice.inc("balance", -10)
    ok = yield from txn.commit()
"""

from repro.libs.bokistore.jsonpath import PathError, apply_op, apply_ops, get_path, set_path
from repro.libs.bokistore.store import BokiStore, ObjectView, WRITE_STREAM_TAG, object_tag
from repro.libs.bokistore.structures import (
    DurableCounter,
    DurableList,
    DurableMap,
    DurableRegister,
)
from repro.libs.bokistore.txn import Transaction, TxnConflictError, TxnObject

__all__ = [
    "BokiStore",
    "DurableCounter",
    "DurableList",
    "DurableMap",
    "DurableRegister",
    "ObjectView",
    "PathError",
    "Transaction",
    "TxnConflictError",
    "TxnObject",
    "WRITE_STREAM_TAG",
    "apply_op",
    "apply_ops",
    "get_path",
    "object_tag",
    "set_path",
]
