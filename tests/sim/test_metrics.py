"""Unit tests for metrics helpers."""

import pytest

from repro.sim import Counter, LatencyRecorder, TimeSeries, percentile


class TestPercentile:
    def test_single_sample(self):
        assert percentile([5.0], 50) == 5.0
        assert percentile([5.0], 99) == 5.0

    def test_median_even(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        data = [float(i) for i in range(1, 101)]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 100.0

    def test_p99_interpolates(self):
        data = [float(i) for i in range(1, 101)]
        assert percentile(data, 99) == pytest.approx(99.01)

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencyRecorder:
    def test_summary(self):
        rec = LatencyRecorder("x")
        for v in [1.0, 2.0, 3.0]:
            rec.record(v)
        s = rec.summary()
        assert s["count"] == 3
        assert s["median"] == 2.0
        assert s["mean"] == 2.0
        assert s["max"] == 3.0

    def test_negative_rejected(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.record(-0.1)

    def test_empty_stats_raise(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.median()

    def test_sorted_cache_invalidated_on_record(self):
        rec = LatencyRecorder()
        for v in [3.0, 1.0, 2.0]:
            rec.record(v)
        assert rec.median() == 2.0  # populates the cache
        rec.record(0.5)
        assert rec.sorted_samples() == [0.5, 1.0, 2.0, 3.0]
        assert rec.percentile(0) == 0.5
        assert rec.max() == 3.0

    def test_summary_matches_percentile_function(self):
        rec = LatencyRecorder()
        data = [float(i) for i in range(1, 101)]
        for v in data:
            rec.record(v)
        assert rec.p99() == percentile(data, 99)
        assert rec.summary()["p99"] == percentile(data, 99)


class TestCounter:
    def test_throughput(self):
        c = Counter("ops")
        c.start(10.0)
        for _ in range(50):
            c.incr()
        c.stop(20.0)
        assert c.throughput() == 5.0

    def test_unclosed_window_raises(self):
        c = Counter()
        c.incr()
        with pytest.raises(ValueError):
            c.throughput()

    def test_empty_window_raises(self):
        c = Counter()
        c.start(5.0)
        c.stop(5.0)
        with pytest.raises(ValueError):
            c.throughput()


class TestTimeSeries:
    def test_window(self):
        ts = TimeSeries()
        for t in range(10):
            ts.add(float(t), t * 10.0)
        assert ts.window(2.0, 5.0) == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]

    def test_window_edges(self):
        ts = TimeSeries()
        for t in range(5):
            ts.add(float(t), float(t))
        assert ts.window(0.0, 5.0) == ts.points  # start-inclusive, end-exclusive
        assert ts.window(4.0, 4.0) == []
        assert ts.window(-1.0, 0.5) == [(0.0, 0.0)]
        assert ts.window(10.0, 20.0) == []

    def test_bucket_percentile(self):
        ts = TimeSeries()
        for t in range(10):
            ts.add(t / 10.0, float(t))
        buckets = ts.bucket_percentile(0.0, 1.0, 0.5, 50)
        assert len(buckets) == 2
        assert buckets[0][1] == 2.0  # median of 0..4
        assert buckets[1][1] == 7.0  # median of 5..9

    def test_empty_bucket_is_none(self):
        ts = TimeSeries()
        ts.add(0.9, 1.0)
        buckets = ts.bucket_percentile(0.0, 1.0, 0.5, 50)
        assert buckets[0][1] is None
        assert buckets[1][1] == 1.0

    def test_invalid_width(self):
        ts = TimeSeries()
        with pytest.raises(ValueError):
            ts.bucket_percentile(0, 1, 0, 50)
