"""Unit tests for seqnums, records, and metalog positions."""

import pytest
from hypothesis import given, strategies as st

from repro.core.types import (
    MAX_LOG,
    MAX_POS,
    MAX_SEQNUM,
    MAX_TERM,
    LogRecord,
    MetalogPosition,
    merge_positions,
    pack_seqnum,
    seqnum_log_id,
    seqnum_pos,
    seqnum_term,
    unpack_seqnum,
)


class TestSeqnum:
    def test_pack_unpack_roundtrip(self):
        assert unpack_seqnum(pack_seqnum(3, 7, 1234)) == (3, 7, 1234)

    def test_accessors(self):
        s = pack_seqnum(5, 2, 99)
        assert seqnum_term(s) == 5
        assert seqnum_log_id(s) == 2
        assert seqnum_pos(s) == 99

    def test_zero(self):
        assert pack_seqnum(0, 0, 0) == 0

    def test_max_values(self):
        s = pack_seqnum(MAX_TERM, MAX_LOG, MAX_POS)
        assert s == MAX_SEQNUM

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_seqnum(MAX_TERM + 1, 0, 0)
        with pytest.raises(ValueError):
            pack_seqnum(0, MAX_LOG + 1, 0)
        with pytest.raises(ValueError):
            pack_seqnum(0, 0, MAX_POS + 1)
        with pytest.raises(ValueError):
            pack_seqnum(-1, 0, 0)

    def test_term_dominates_order(self):
        """Seqnum order matches chronological term order (§4.2)."""
        old_term = pack_seqnum(1, 5, MAX_POS)
        new_term = pack_seqnum(2, 0, 0)
        assert old_term < new_term

    def test_pos_orders_within_log(self):
        assert pack_seqnum(1, 3, 10) < pack_seqnum(1, 3, 11)

    @given(
        st.integers(0, MAX_TERM),
        st.integers(0, MAX_LOG),
        st.integers(0, MAX_POS),
    )
    def test_roundtrip_property(self, term, log, pos):
        assert unpack_seqnum(pack_seqnum(term, log, pos)) == (term, log, pos)

    @given(
        st.tuples(st.integers(0, MAX_TERM), st.integers(0, 3), st.integers(0, MAX_POS)),
        st.tuples(st.integers(0, MAX_TERM), st.integers(0, 3), st.integers(0, MAX_POS)),
    )
    def test_same_log_order_matches_tuple_order(self, a, b):
        """For records of the same physical log, integer seqnum order
        equals (term, pos) lexicographic order."""
        a = (a[0], 1, a[2])
        b = (b[0], 1, b[2])
        sa, sb = pack_seqnum(*a), pack_seqnum(*b)
        assert (sa < sb) == ((a[0], a[2]) < (b[0], b[2]))


class TestLogRecord:
    def test_tags_become_tuple(self):
        r = LogRecord(seqnum=1, tags=[3, 4], data="x")
        assert r.tags == (3, 4)

    def test_size_accounts_for_data(self):
        small = LogRecord(seqnum=1, tags=(), data="x")
        big = LogRecord(seqnum=2, tags=(), data="x" * 1024)
        assert big.size_bytes() - small.size_bytes() == 1023

    def test_size_of_dict_data(self):
        r = LogRecord(seqnum=1, tags=(), data={"key": "value"})
        assert r.size_bytes() > 0


class TestMetalogPosition:
    def test_ordering_term_major(self):
        assert MetalogPosition(1, 100) < MetalogPosition(2, 0)
        assert MetalogPosition(1, 5) < MetalogPosition(1, 6)

    def test_zero(self):
        assert MetalogPosition.zero() == MetalogPosition(0, 0)

    def test_advance_to(self):
        a = MetalogPosition(1, 5)
        b = MetalogPosition(1, 9)
        assert a.advance_to(b) == b
        assert b.advance_to(a) == b

    def test_merge_positions(self):
        a = {0: MetalogPosition(1, 5), 1: MetalogPosition(1, 2)}
        b = {0: MetalogPosition(1, 3), 2: MetalogPosition(1, 7)}
        merged = merge_positions(a, b)
        assert merged == {
            0: MetalogPosition(1, 5),
            1: MetalogPosition(1, 2),
            2: MetalogPosition(1, 7),
        }

    def test_merge_is_commutative(self):
        a = {0: MetalogPosition(2, 1)}
        b = {0: MetalogPosition(1, 9)}
        assert merge_positions(a, b) == merge_positions(b, a)
