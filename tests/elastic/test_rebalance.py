"""Property-style coverage for minimal-movement rebalancing.

Across randomized fleet-size transitions the greedy assignment must
(1) move at most ``optimal + 1`` replicas, (2) keep load within the
ceiling quota (+1 for the distinctness edge case), (3) always hand every
slot ``ndata`` distinct live nodes, and (4) be deterministic per seed.
"""

import random

import pytest

from repro.elastic.rebalance import (
    count_moves,
    optimal_moves,
    rebalance_replicas,
    replica_quota,
)

pytestmark = pytest.mark.elastic

NDATA = 3


def _fleet(size):
    return [f"storage-{i}" for i in range(size)]


def _slots(num_logs, num_shards):
    return [(log, f"func-{s}") for log in range(num_logs) for s in range(num_shards)]


def _random_transition(rng):
    """One random fleet transition: old placement on the old fleet, then
    a resized (grown/shrunk/churned) new fleet."""
    num_logs = rng.randint(1, 3)
    num_shards = rng.randint(1, 6)
    old_size = rng.randint(NDATA, 10)
    slots = _slots(num_logs, num_shards)
    old_fleet = _fleet(old_size)
    old = rebalance_replicas(slots, {}, old_fleet, NDATA)
    new_size = rng.randint(NDATA, 10)
    # Churn: drop up to 2 of the surviving low indices, backfill above.
    new_fleet = _fleet(new_size)
    for _ in range(rng.randint(0, 2)):
        if len(new_fleet) > NDATA:
            new_fleet.remove(rng.choice(new_fleet))
    return slots, old, new_fleet


@pytest.mark.parametrize("seed", range(20))
def test_moves_within_optimal_plus_one(seed):
    rng = random.Random(seed)
    for _ in range(25):
        slots, old, fleet = _random_transition(rng)
        new = rebalance_replicas(slots, old, fleet, NDATA)
        moved = count_moves(old, new)
        bound = optimal_moves(slots, old, fleet, NDATA)
        assert moved <= bound + 1, (
            f"moved {moved} > optimal {bound} + 1 "
            f"(slots={len(slots)}, fleet={len(fleet)})"
        )


@pytest.mark.parametrize("seed", range(10))
def test_assignment_valid_and_balanced(seed):
    rng = random.Random(1000 + seed)
    for _ in range(25):
        slots, old, fleet = _random_transition(rng)
        new = rebalance_replicas(slots, old, fleet, NDATA)
        want = min(NDATA, len(fleet))
        quota = replica_quota(len(slots), len(fleet), NDATA)
        load = {}
        old_load = {}
        fleet_set = set(fleet)
        for slot in slots:
            replicas = new[slot]
            assert len(replicas) == want
            assert len(set(replicas)) == want, "replicas must be distinct"
            assert set(replicas) <= fleet_set, "replicas must be in the fleet"
            for name in replicas:
                load[name] = load.get(name, 0) + 1
            for name in old.get(slot, ()):
                if name in fleet_set:
                    old_load[name] = old_load.get(name, 0) + 1
        # Balance is bounded by the quota — or by the old placement's
        # imbalance when shedding it would cost movement (the rebalancer
        # is movement-minimal first) — plus a distinctness slack: a slot
        # needs `want` distinct nodes, so when every under-quota node
        # already holds the slot, an over-quota node takes the replica.
        bound = max(quota, max(old_load.values(), default=0)) + want - 1
        assert max(load.values()) <= bound


@pytest.mark.parametrize("seed", range(10))
def test_deterministic_per_seed(seed):
    def run(s):
        rng = random.Random(s)
        out = []
        for _ in range(10):
            slots, old, fleet = _random_transition(rng)
            out.append(rebalance_replicas(slots, old, fleet, NDATA))
        return out

    assert run(seed) == run(seed)


def test_pure_shrink_moves_only_dead_replicas():
    slots = _slots(2, 4)
    fleet = _fleet(6)
    old = rebalance_replicas(slots, {}, fleet, NDATA)
    survivors = _fleet(5)  # storage-5 decommissioned
    new = rebalance_replicas(slots, old, survivors, NDATA)
    dead = sum(
        1 for slot in slots for name in old[slot] if name == "storage-5"
    )
    # Shrinking only re-replicates what lived on the removed node, plus
    # whatever the tighter quota forces off overloaded survivors.
    assert dead <= count_moves(old, new) <= optimal_moves(slots, old, survivors, NDATA) + 1


def test_pure_growth_moves_at_most_quota_excess():
    slots = _slots(2, 4)
    fleet = _fleet(4)
    old = rebalance_replicas(slots, {}, fleet, NDATA)
    grown = _fleet(6)
    new = rebalance_replicas(slots, old, grown, NDATA)
    moved = count_moves(old, new)
    assert moved <= optimal_moves(slots, old, grown, NDATA) + 1
    # Far fewer moves than rehash-everything (24 assignments total).
    assert moved < len(slots) * NDATA / 2


def test_new_slots_place_without_counting_as_moves():
    slots = _slots(1, 2)
    fleet = _fleet(3)
    old = rebalance_replicas(slots, {}, fleet, NDATA)
    wider = _slots(1, 4)  # two new shards (engine scale-out)
    new = rebalance_replicas(wider, old, fleet, NDATA)
    assert count_moves(old, new) == 0
    for slot in wider:
        assert len(new[slot]) == NDATA
