"""Additional library behaviors: blind puts, queue cold starts, flow
control, multi-term library operation."""

import pytest

from repro.libs.bokiqueue import BokiQueue
from repro.libs.bokistore import BokiStore, Transaction
from tests.libs.conftest import drive


class TestBokiStorePut:
    def test_blind_put_roundtrip(self, cluster):
        store = BokiStore(cluster.logbook(14))

        def flow():
            yield from store.put("kv-key", {"v": 7})
            view = yield from store.get_object("kv-key")
            return view.as_dict()

        assert drive(cluster, flow()) == {"v": 7}

    def test_put_replaces_whole_object(self, cluster):
        store = BokiStore(cluster.logbook(14))

        def flow():
            yield from store.update("x", [{"op": "set", "path": "a", "value": 1}])
            yield from store.put("x", {"b": 2})
            view = yield from store.get_object("x")
            return view.as_dict()

        assert drive(cluster, flow()) == {"b": 2}

    def test_put_participates_in_conflict_detection(self, cluster):
        store = BokiStore(cluster.logbook(14))

        def flow():
            txn = yield from Transaction(store).begin()
            obj = yield from txn.get_object("x")
            obj.set("v", "txn")
            yield from store.put("x", {"v": "blind"})  # conflicting write
            return (yield from txn.commit())

        assert drive(cluster, flow()) is False


class TestQueueColdStart:
    def test_fresh_consumer_resumes_from_aux(self, cluster):
        """A new consumer instance (ephemeral function restart) must agree
        with the old one's pops via the aux-cached shard states."""
        q = BokiQueue(cluster.logbook(15), "cold", num_shards=1)

        def flow():
            producer = q.producer()
            for i in range(6):
                yield from producer.push(i)
            first_consumer = q.consumer(0)
            a = yield from first_consumer.pop()
            b = yield from first_consumer.pop()
            # Simulate a function restart: brand-new consumer object with
            # no in-memory local view.
            second_consumer = q.consumer(0)
            c = yield from second_consumer.pop()
            d = yield from second_consumer.pop()
            return [a, b, c, d]

        assert drive(cluster, flow()) == [0, 1, 2, 3]

    def test_producer_flow_control_blocks_at_backlog(self, cluster):
        q = BokiQueue(cluster.logbook(16), "fc", num_shards=1)
        env = cluster.env
        progress = []

        def producer_flow():
            producer = q.producer(max_backlog=4)
            for i in range(12):
                yield from producer.push(i)
                progress.append((i, env.now))

        def consumer_flow():
            consumer = q.consumer(0)
            yield env.timeout(0.3)  # consumers arrive late
            drained = 0
            while drained < 12:
                value = yield from consumer.pop_wait(poll_interval=0.002)
                if value is None:
                    break
                drained += 1
            return drained

        p = env.process(producer_flow())
        c = env.process(consumer_flow())
        drained = env.run_until(c, limit=300.0)
        env.run_until(p, limit=300.0)
        assert drained == 12
        # The producer was stalled until consumers started (~0.3s).
        produced_early = [i for i, t in progress if t < 0.25]
        assert len(produced_early) <= 8  # backlog quota (4) + check period


class TestLibrariesAcrossTerms:
    def test_store_survives_reconfiguration(self, cluster):
        store = BokiStore(cluster.logbook(17))

        def flow():
            yield from store.update("obj", [{"op": "set", "path": "v", "value": 1}])
            yield from cluster.controller.reconfigure()
            yield from store.update("obj", [{"op": "inc", "path": "v", "value": 1}])
            view = yield from store.get_object("obj")
            return view.get("v")

        assert drive(cluster, flow()) == 2

    def test_queue_survives_reconfiguration(self, cluster):
        q = BokiQueue(cluster.logbook(18), "terms", num_shards=1)

        def flow():
            producer, consumer = q.producer(), q.consumer(0)
            yield from producer.push("old-term")
            yield from cluster.controller.reconfigure()
            yield from producer.push("new-term")
            a = yield from consumer.pop()
            b = yield from consumer.pop()
            return a, b

        assert drive(cluster, flow()) == ("old-term", "new-term")

    def test_store_records_found_after_log_count_change(self, cluster):
        """Records written before a num_logs change remain readable via
        the term-history read routing."""
        store = BokiStore(cluster.logbook(19))

        def flow():
            yield from store.update("obj", [{"op": "set", "path": "v", "value": "pre"}])
            yield from cluster.controller.reconfigure(num_logs=2)
            view = yield from store.get_object("obj")
            yield from store.update("obj", [{"op": "set", "path": "w", "value": "post"}])
            final = yield from store.get_object("obj")
            return view.get("v"), final.as_dict()

        pre, final = drive(cluster, flow())
        assert pre == "pre"
        assert final == {"v": "pre", "w": "post"}
