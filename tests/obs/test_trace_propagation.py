"""Trace-context propagation across processes, nodes, and failure paths.

The span tree must follow a request through RPC fan-out and stay correct
when the destination is crashed, the link is partitioned, or the handler
raises — the cases where latency debugging matters most.
"""

from repro.obs.recorder import ObsRecorder
from repro.obs.trace import (
    STATUS_DROPPED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
)
from repro.sim.kernel import Environment
from repro.sim.network import Network, RpcError, RpcTimeout
from repro.sim.node import Node
from repro.sim.randvar import RandomStreams


def make_net(num_nodes=2, seed=1):
    env = Environment()
    net = Network(env, RandomStreams(seed=seed))
    obs = ObsRecorder(env)
    net.obs = obs
    nodes = [net.register(Node(env, f"n{i}", cpu_capacity=4)) for i in range(num_nodes)]
    return env, net, obs, nodes


def spans_by_name(obs):
    return {s.name: s for s in obs.tracer.spans}


def test_rpc_success_builds_one_trace():
    env, net, obs, (a, b) = make_net()
    b.handle("ping", lambda payload: payload + 1)

    def driver():
        span = obs.tracer.start_trace("request", node="client")
        obs.tracer.set_process_context(span.context)
        value = yield net.rpc(a, b, "ping", 41)
        span.finish()
        return value

    proc = env.process(driver())
    assert env.run_until(proc, limit=5.0) == 42
    by_name = spans_by_name(obs)
    root, rpc, handle = by_name["request"], by_name["rpc:ping"], by_name["handle:ping"]
    assert rpc.parent_id == root.span_id
    assert handle.parent_id == rpc.span_id
    assert {s.trace_id for s in obs.tracer.spans} == {root.trace_id}
    assert root.status == rpc.status == handle.status == STATUS_OK
    assert root.start <= rpc.start <= handle.start
    assert handle.end <= rpc.end <= root.end
    assert rpc.node == "n0" and handle.node == "n1"


def test_nested_rpc_keeps_trace_id():
    env, net, obs, (a, b, c) = make_net(num_nodes=3)
    c.handle("inner", lambda payload: payload * 2)

    def outer(payload):
        value = yield net.rpc(b, c, "inner", payload)
        return value + 1

    b.handle("outer", outer)

    def driver():
        span = obs.tracer.start_trace("request", node="client")
        obs.tracer.set_process_context(span.context)
        value = yield net.rpc(a, b, "outer", 10)
        span.finish()
        return value

    proc = env.process(driver())
    assert env.run_until(proc, limit=5.0) == 21
    by_name = spans_by_name(obs)
    assert {s.trace_id for s in obs.tracer.spans} == {by_name["request"].trace_id}
    # The inner rpc is issued from within the outer handler's process, so
    # it parents under the outer handle span.
    assert by_name["rpc:inner"].parent_id == by_name["handle:outer"].span_id
    assert by_name["handle:inner"].parent_id == by_name["rpc:inner"].span_id


def test_rpc_to_crashed_node_times_out_with_drop_span():
    env, net, obs, (a, b) = make_net()
    b.handle("ping", lambda payload: payload)
    b.crash()

    def driver():
        span = obs.tracer.start_trace("request", node="client")
        obs.tracer.set_process_context(span.context)
        try:
            yield net.rpc(a, b, "ping", 1, timeout=0.01)
        except RpcTimeout:
            span.finish(STATUS_TIMEOUT)
            return "timed out"
        span.finish()
        return "ok"

    proc = env.process(driver())
    assert env.run_until(proc, limit=5.0) == "timed out"
    by_name = spans_by_name(obs)
    root, rpc, drop = by_name["request"], by_name["rpc:ping"], by_name["drop:ping"]
    assert root.status == STATUS_TIMEOUT
    assert rpc.status == STATUS_TIMEOUT
    assert rpc.attrs["timeout"] == 0.01
    assert drop.status == STATUS_DROPPED
    assert drop.attrs["reason"] == "down"
    assert drop.trace_id == root.trace_id
    assert drop.parent_id == rpc.span_id
    assert obs.metrics.value("net.rpc.timeouts") == 1
    assert obs.metrics.value("net.drops") == 1


def test_rpc_across_partition_drop_reason():
    env, net, obs, (a, b) = make_net()
    b.handle("ping", lambda payload: payload)
    net.partition("n0", "n1")

    def driver():
        span = obs.tracer.start_trace("request", node="client")
        obs.tracer.set_process_context(span.context)
        try:
            yield net.rpc(a, b, "ping", 1, timeout=0.01)
        except RpcTimeout:
            span.finish(STATUS_TIMEOUT)
        return None

    env.run_until(env.process(driver()), limit=5.0)
    drop = spans_by_name(obs)["drop:ping"]
    assert drop.status == STATUS_DROPPED
    assert drop.attrs["reason"] == "partition"


def test_handler_exception_closes_spans_with_error():
    env, net, obs, (a, b) = make_net()

    def bad(payload):
        raise ValueError("boom")

    b.handle("ping", bad)

    def driver():
        span = obs.tracer.start_trace("request", node="client")
        obs.tracer.set_process_context(span.context)
        try:
            yield net.rpc(a, b, "ping", 1)
        except RpcError:
            span.finish(STATUS_ERROR)
            return "failed"
        span.finish()
        return "ok"

    proc = env.process(driver())
    assert env.run_until(proc, limit=5.0) == "failed"
    by_name = spans_by_name(obs)
    assert by_name["handle:ping"].status == STATUS_ERROR
    assert "boom" in by_name["handle:ping"].attrs["error"]
    assert by_name["rpc:ping"].status == STATUS_ERROR


def test_oneway_send_propagates_and_drops():
    env, net, obs, (a, b) = make_net()
    seen = []
    b.handle("notify", seen.append)

    def driver():
        span = obs.tracer.start_trace("request", node="client")
        obs.tracer.set_process_context(span.context)
        net.send(a, b, "notify", "hello")
        yield env.timeout(0.01)
        span.finish()
        root_trace = span.context.trace_id
        # Second send lands on a crashed node -> drop span, same trace.
        span2 = obs.tracer.start_trace("request2", node="client")
        obs.tracer.set_process_context(span2.context)
        b.crash()
        net.send(a, b, "notify", "lost")
        yield env.timeout(0.01)
        span2.finish()
        return root_trace

    root_trace = env.run_until(env.process(driver()), limit=5.0)
    assert seen == ["hello"]
    by_name = spans_by_name(obs)
    assert by_name["handle:notify"].trace_id == root_trace
    assert by_name["handle:notify"].status == STATUS_OK
    drop = by_name["drop:notify"]
    assert drop.status == STATUS_DROPPED
    assert drop.trace_id == spans_by_name(obs)["request2"].trace_id


def test_oneway_generator_handler_span_closes_on_error():
    env, net, obs, (a, b) = make_net()

    def gen_handler(payload):
        yield env.timeout(0.001)
        raise RuntimeError("late failure")

    b.handle("work", gen_handler)

    def driver():
        span = obs.tracer.start_trace("request", node="client")
        obs.tracer.set_process_context(span.context)
        net.send(a, b, "work", None)
        yield env.timeout(0.05)
        span.finish()

    env.run_until(env.process(driver()), limit=5.0)
    handle = spans_by_name(obs)["handle:work"]
    assert handle.status == STATUS_ERROR
    assert "late failure" in handle.attrs["error"]


def test_span_scope_restores_context_and_maps_timeout():
    env, net, obs, (a, b) = make_net()
    b.handle("ping", lambda payload: payload)
    b.crash()

    def driver():
        root = obs.tracer.start_trace("request", node="client")
        obs.tracer.set_process_context(root.context)
        try:
            with obs.tracer.span("step", node="client") as step:
                assert obs.tracer.current_context() == step.context
                yield net.rpc(a, b, "ping", 1, timeout=0.01)
        except RpcTimeout:
            pass
        # Scope restored the ambient context even though the block raised.
        assert obs.tracer.current_context() == root.context
        root.finish()
        return True

    assert env.run_until(env.process(driver()), limit=5.0)
    step = spans_by_name(obs)["step"]
    assert step.status == STATUS_TIMEOUT


def test_child_processes_inherit_trace_context():
    env, net, obs, (a, b) = make_net()

    results = []

    def child():
        results.append(obs.tracer.current_context())
        yield env.timeout(0.001)

    def driver():
        span = obs.tracer.start_trace("request", node="client")
        obs.tracer.set_process_context(span.context)
        yield env.process(child())
        span.finish()
        return span.context

    ctx = env.run_until(env.process(driver()), limit=5.0)
    assert results == [ctx]


def test_finish_open_closes_stragglers():
    env, net, obs, (a, b) = make_net()
    span = obs.tracer.start_trace("orphan", node="client")
    assert obs.tracer.open_spans() == [span]
    closed = obs.tracer.finish_open()
    assert closed == 1
    assert span.status == STATUS_ERROR
    assert obs.tracer.open_spans() == []
