"""Shard leasing: CSMR shard ownership for dynamic consumer fleets.

§5.3's CSMR design requires each queue shard to be consumed by exactly one
consumer. That 1:1 mapping is easy for a static fleet; ephemeral serverless
consumers need to *claim* shards dynamically. This module composes
BokiQueue with BokiFlow's log-backed locks: a consumer leases a free shard
via ``try_lock`` (linearized by the shared log — two racers can never own
the same shard), processes it, and releases on exit. Expired/abandoned
leases are reclaimed by appending a release chained on the stale acquire.
"""

from __future__ import annotations

from typing import Generator

from repro.libs.bokiflow.locks import LockState, check_lock_state, try_lock, unlock
from repro.libs.bokiqueue.queue import BokiQueue, QueueConsumer


class ShardLease:
    """A held lease on one queue shard."""

    def __init__(self, queue: BokiQueue, shard: int, lock_state: LockState, env):
        self.queue = queue
        self.shard = shard
        self._lock_state = lock_state
        self._env = env
        self.consumer: QueueConsumer = queue.consumer(shard)

    def release(self) -> Generator:
        yield from unlock(self._env, _lease_key(self.queue, self.shard), self._lock_state)


def _lease_key(queue: BokiQueue, shard: int):
    return ("qlease", queue.name, shard)


def acquire_shard(
    queue: BokiQueue, env, consumer_id: str, start_shard: int = 0
) -> Generator:
    """Claim any free shard of ``queue``; returns a :class:`ShardLease` or
    None if all shards are held. ``env`` is a BokiFlow WorkflowEnv (the
    lock substrate); ``consumer_id`` must be unique per consumer instance.
    ``start_shard`` rotates the scan order so consumers re-acquiring after
    a release spread over shards instead of piling onto shard 0.
    """
    for offset in range(queue.num_shards):
        shard = (start_shard + offset) % queue.num_shards
        state = yield from try_lock(env, _lease_key(queue, shard), consumer_id)
        if state is not None:
            return ShardLease(queue, shard, state, env)
    return None


def reclaim_shard(
    queue: BokiQueue, env, shard: int, dead_holder: str, consumer_id: str
) -> Generator:
    """Recover a shard whose consumer crashed while holding its lease.

    The caller is responsible for determining that ``dead_holder`` is
    actually gone (e.g. via the coordination service's session expiry);
    this function performs the log-side handoff: it force-releases the
    stale lease by appending an EMPTY update chained on the dead
    consumer's acquire record, then claims the shard for
    ``consumer_id``. Both appends go through the lock chain rule, so a
    racing reclaim (two successors spotting the same dead consumer) is
    linearized by the log — exactly one successor wins, the other gets
    None back and moves on.
    """
    state = yield from check_lock_state(env, _lease_key(queue, shard))
    if state is not None and state.holder == dead_holder:
        yield from unlock(env, _lease_key(queue, shard), state)
    elif state is not None and state.holder not in ("", consumer_id):
        return None  # someone else already reclaimed it
    new_state = yield from try_lock(env, _lease_key(queue, shard), consumer_id)
    if new_state is None:
        return None
    return ShardLease(queue, shard, new_state, env)


def acquire_shard_wait(
    queue: BokiQueue,
    env,
    consumer_id: str,
    poll_interval: float = 0.005,
    max_polls: int = 200,
    start_shard: int = 0,
) -> Generator:
    """Blocking variant: poll until a shard frees up (or give up)."""
    sim_env = queue.book.env
    for attempt in range(max_polls):
        lease = yield from acquire_shard(
            queue, env, consumer_id, start_shard=start_shard + attempt
        )
        if lease is not None:
            return lease
        yield sim_env.timeout(poll_interval)
    return None
