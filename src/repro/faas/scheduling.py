"""Locality-aware function scheduling.

§4.4: "cloud providers can build simple caches which increase data locality
when scheduling functions on nodes where their data is likely to be
cached" — and §7.5's Table 6 quantifies the cost of ignoring it. This
module implements that scheduler: an invocation bound to a LogBook is
placed on a function node whose engine maintains the index for the book's
physical log (and, secondarily, balances load within that set).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.faas.worker import FunctionNode


class LocalityScheduler:
    """Schedules invocations onto index-holding nodes for their LogBook."""

    def __init__(self, cluster):
        self.cluster = cluster
        self._rr = itertools.count()
        self.local_placements = 0
        self.remote_placements = 0

    def __call__(self, fn_name: str, book_id: Optional[int]) -> FunctionNode:
        nodes = [f for f in self.cluster.gateway.function_nodes if f.node.alive]
        if not nodes:
            raise RuntimeError("no live function nodes")
        term = self.cluster.controller.current_term
        if book_id is None or term is None:
            self.remote_placements += 1
            return nodes[next(self._rr) % len(nodes)]
        log_id = term.log_for_book(book_id)
        index_names = set(term.assignment(log_id).index_engines)
        preferred = [f for f in nodes if f.name in index_names]
        if not preferred:
            self.remote_placements += 1
            return nodes[next(self._rr) % len(nodes)]
        # Within the preferred set, pick the least-loaded node (shortest
        # worker queue), breaking ties round-robin.
        self.local_placements += 1
        start = next(self._rr)
        best = min(
            range(len(preferred)),
            key=lambda i: (
                preferred[(start + i) % len(preferred)].queue_depth,
                i,
            ),
        )
        return preferred[(start + best) % len(preferred)]

    @property
    def locality_rate(self) -> float:
        total = self.local_placements + self.remote_placements
        return self.local_placements / total if total else 0.0


def enable_locality_scheduling(cluster) -> LocalityScheduler:
    """Install the locality scheduler on a cluster's gateway."""
    scheduler = LocalityScheduler(cluster)
    cluster.gateway.scheduler = scheduler
    return scheduler
