"""Elasticity benchmark: autoscaled vs statically over-provisioned.

The same flash-crowd trace (base 350 req/s surging to 1400 req/s) is
driven through two same-seed clusters:

- **auto** — 2 base engines + 2 spares behind the ``repro.elastic``
  autoscaler, which must detect the surge and grow the fleet mid-ramp;
- **static** — all 4 engines provisioned from boot, sized for the peak,
  paying for that headroom across the whole run.

Reported: provisioned-capacity vs demand tracking error, scale-up
reaction time, p99 overall and during the surge transition window, and
node-seconds. The headline claims (ISSUE 7 acceptance): the autoscaled
run's p99 stays within 2x of the over-provisioned baseline while using
measurably fewer node-seconds.
"""

import pytest

from benchmarks._common import (
    adopt_cluster,
    emit_artifact,
    info,
    lat_ms,
    metric,
    ms,
    print_table,
    run_once,
    run_result_metrics,
)
from repro.core import BokiCluster
from repro.elastic import HysteresisPolicy, PolicyConfig, SignalSampler
from repro.obs.registry import MetricsRegistry
from repro.sim.metrics import percentile
from repro.workloads.harness import FlashCrowdShape, run_shaped_open_loop

SEED = 0
BASE_ENGINES, PEAK_ENGINES, STORAGE = 2, 4, 3
WORKERS = 4
SURGE_AT, RAMP, HOLD, DECAY = 0.8, 0.2, 0.8, 0.3
DURATION = 2.6
SAMPLE_INTERVAL = 0.05
#: The surge transition: ramp plus hold — where an autoscaler that reacts
#: too slowly pays in queueing latency.
TRANSITION = (SURGE_AT, SURGE_AT + RAMP + HOLD)


def _shape() -> FlashCrowdShape:
    # Base fleet (2 engines x 4 workers x 10 ms) saturates at ~800 req/s:
    # 350 req/s sits in the dead band, the 1400 req/s peak needs 4 nodes.
    return FlashCrowdShape(base_rate=350, peak_rate=1400, surge_at=SURGE_AT,
                           ramp=RAMP, hold=HOLD, decay=DECAY)


def _build(autoscaled: bool):
    """Boot one benchmark cluster; returns (cluster, autoscaler, registry).

    Both variants own the same 4-engine/3-storage hardware pool; only
    provisioning differs. The static variant gets a passive
    ``SignalSampler`` probe so both report the same tracking-error metric.
    """
    if autoscaled:
        cluster = BokiCluster(
            num_function_nodes=BASE_ENGINES,
            num_spare_function_nodes=PEAK_ENGINES - BASE_ENGINES,
            num_storage_nodes=STORAGE, workers_per_node=WORKERS, seed=SEED,
        )
        auto = cluster.enable_elasticity(
            interval=SAMPLE_INTERVAL,
            engine_policy=HysteresisPolicy(PolicyConfig(
                min_nodes=BASE_ENGINES, max_nodes=PEAK_ENGINES,
                breach_up=2, breach_down=4, cooldown_down=1.0,
            )),
        )
        registry = auto.registry
    else:
        cluster = BokiCluster(
            num_function_nodes=PEAK_ENGINES, num_storage_nodes=STORAGE,
            workers_per_node=WORKERS, seed=SEED,
        )
        auto = None
        registry = MetricsRegistry()
    cluster.boot()
    adopt_cluster(cluster)
    env = cluster.env

    if auto is None:
        sampler = SignalSampler(cluster, registry)
        engines = [f.name for f in cluster.function_nodes]
        storage = [s.name for s in cluster.storage_nodes]

        def probe():
            while True:
                yield env.timeout(SAMPLE_INTERVAL)
                sampler.sample(engines, storage)

        env.process(probe(), name="static-probe")

    def bulk(ctx, arg):
        yield env.timeout(0.01)
        return arg

    cluster.register_function("bulk-op", bulk)
    return cluster, auto, registry


def _tracking_error(registry: MetricsRegistry) -> float:
    """Mean |provisioned - demanded| worker slots, normalized by the peak
    pool's capacity — 0 is a fleet sized exactly to its load."""
    cap = registry.gauge("elastic.engine.capacity_slots").samples
    dem = registry.gauge("elastic.engine.demand_slots").samples
    peak = PEAK_ENGINES * WORKERS
    errors = [abs(c - d) for (_, c), (_, d) in zip(cap, dem)]
    return sum(errors) / len(errors) / peak


def _transition_p99(result) -> float:
    series = result.extra["latency_series"]
    values = [v for _, v in series.window(*TRANSITION)]
    return percentile(values, 0.99)


def _run(autoscaled: bool):
    cluster, auto, registry = _build(autoscaled)
    env = cluster.env
    result = run_shaped_open_loop(
        env, lambda i: cluster.invoke("bulk-op", i), _shape(),
        duration=DURATION, rng=cluster.streams.stream("elastic-bench"),
        obs=cluster.obs,
    )
    now = env.now
    if auto is not None:
        auto.stop()
        node_seconds = auto.node_seconds(now)
        reaction = auto.reaction_time(SURGE_AT)
        peak_fleet = max(
            (len(e["engines"]) for e in auto.scale_events("scale-out")),
            default=BASE_ENGINES,
        )
    else:
        node_seconds = now * (PEAK_ENGINES + STORAGE)
        reaction = None
        peak_fleet = PEAK_ENGINES
    return {
        "result": result,
        "tracking_error": _tracking_error(registry),
        "transition_p99": _transition_p99(result),
        "node_seconds": node_seconds,
        "reaction": reaction,
        "peak_fleet": peak_fleet,
        "scale_outs": len(auto.scale_events("scale-out")) if auto else 0,
        "scale_ins": len(auto.scale_events("scale-in")) if auto else 0,
        "reconfig_failures": auto.reconfig_failures if auto else 0,
    }


def experiment():
    return {"auto": _run(autoscaled=True), "static": _run(autoscaled=False)}


@pytest.mark.elastic
@pytest.mark.benchmark(group="elasticity")
def test_elasticity_autoscale_vs_overprovisioned(benchmark):
    runs = run_once(benchmark, experiment)
    auto, static = runs["auto"], runs["static"]

    rows = []
    for name, run in runs.items():
        res = run["result"]
        rows.append([
            name,
            f"{res.completed}/{res.extra['launched']}",
            f"{ms(res.p99_latency())} ({ms(run['transition_p99'])})",
            f"{run['node_seconds']:.2f}",
            f"{run['tracking_error']:.3f}",
            ms(run["reaction"]) if run["reaction"] is not None else "-",
            run["peak_fleet"],
        ])
    print_table(
        "Elasticity: flash crowd, autoscaled vs over-provisioned",
        ["", "done/launched", "p99 (transition p99)", "node-s",
         "tracking err", "reaction", "peak engines"],
        rows,
    )

    metrics = {}
    for name, run in runs.items():
        metrics.update(run_result_metrics(name, run["result"]))
        metrics[f"{name}.transition_p99_ms"] = lat_ms(run["transition_p99"])
        metrics[f"{name}.tracking_error"] = metric(
            run["tracking_error"], unit="frac", better="lower")
        metrics[f"{name}.node_seconds"] = metric(
            run["node_seconds"], unit="node*s", better="lower")
    metrics["auto.reaction_time_ms"] = lat_ms(auto["reaction"])
    metrics["auto.peak_engines"] = info(auto["peak_fleet"])
    metrics["savings.node_seconds_ratio"] = metric(
        static["node_seconds"] / auto["node_seconds"],
        unit="x", better="higher")
    emit_artifact(
        "elasticity_autoscale",
        metrics,
        title="Elasticity: autoscaled flash crowd vs static over-provisioning",
        config={
            "base_engines": BASE_ENGINES, "peak_engines": PEAK_ENGINES,
            "storage_nodes": STORAGE, "workers_per_node": WORKERS,
            "base_rate": 350, "peak_rate": 1400, "surge_at": SURGE_AT,
            "duration_s": DURATION,
        },
        seed=SEED,
    )

    # Claim 1 (acceptance): the autoscaled flash crowd keeps p99 within
    # 2x of a fleet statically sized for the peak — overall and through
    # the surge transition itself.
    assert auto["result"].p99_latency() <= 2 * static["result"].p99_latency()
    assert auto["transition_p99"] <= 2 * static["transition_p99"]
    # Claim 2 (acceptance): ...while provisioning measurably fewer
    # node-seconds than the always-peak fleet.
    assert auto["node_seconds"] < 0.95 * static["node_seconds"]
    # Claim 3: the surge is detected fast (well inside the ramp+hold).
    assert auto["reaction"] is not None and auto["reaction"] < 0.5
    assert auto["peak_fleet"] == PEAK_ENGINES
    assert auto["scale_outs"] >= 1 and auto["reconfig_failures"] == 0
    # Claim 4: right-sizing shows up in the tracking error — the static
    # fleet idles far from its load at base rate.
    assert auto["tracking_error"] < static["tracking_error"]
    # Both variants completed the offered load without errors.
    for run in runs.values():
        assert run["result"].errors == 0
        assert run["result"].completed > 0.9 * run["result"].extra["launched"]
