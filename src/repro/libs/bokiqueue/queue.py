"""BokiQueue implementation: log-backed FIFO shards.

Each shard is a replicated state machine whose commands are ``push`` and
``pop`` records in the shard's tag stream. Replaying the stream in seqnum
order yields the deterministic matching: every pop takes the oldest pending
push at its log position (or nothing, if the shard is empty there). Every
replayed record's aux slot caches the shard state *after* that record, so a
pop normally replays only the records since the previous cached state.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, List, Optional, Tuple

from repro.core.hashing import stable_hash
from repro.core.logbook import LogBook

_TAG_MOD = (1 << 61) - 1


def shard_tag(queue_name: str, shard: int) -> int:
    return stable_hash(("queue", queue_name, shard), salt="bokiqueue") % _TAG_MOD + 1


class _ShardState:
    """Queue-shard state at a log position."""

    def __init__(self, pending: Optional[List[Tuple[int, Any]]] = None):
        #: (push seqnum, value) of pushes not yet taken, oldest first.
        self.pending: List[Tuple[int, Any]] = list(pending or [])

    def apply(self, record) -> Optional[Any]:
        """Apply one record; for pops, returns the taken value (or None)."""
        data = record.data
        if data["kind"] == "push":
            self.pending.append((record.seqnum, data["value"]))
            return None
        if data["kind"] == "pop":
            if self.pending:
                _, value = self.pending.pop(0)
                return value
            return None
        raise ValueError(f"unknown queue record kind {data['kind']!r}")

    def to_aux(self, pop_result: Any = None, is_pop: bool = False) -> dict:
        aux = {"pending": [[s, v] for s, v in self.pending]}
        if is_pop:
            aux["result"] = pop_result
        return aux

    @classmethod
    def from_aux(cls, aux: dict) -> "_ShardState":
        return cls([(s, v) for s, v in aux["pending"]])


class BokiQueue:
    """A named queue on one LogBook, divided into CSMR shards."""

    def __init__(self, book: LogBook, name: str, num_shards: int = 1):
        if num_shards <= 0:
            raise ValueError("need at least one shard")
        self.book = book
        self.name = name
        self.num_shards = num_shards
        #: Optional repro.chaos operation-history recorder (duck-typed);
        #: producers/consumers record push/pop calls through it for
        #: offline no-loss / no-duplicate delivery checking.
        self.history = None
        #: Optional repro.monitor hub; push/pop completions feed the
        #: online no-loss / no-duplicate delivery monitor.
        self.monitor = None

    def producer(self, max_backlog: Optional[int] = None) -> "QueueProducer":
        return QueueProducer(self, max_backlog=max_backlog)

    def consumer(self, shard: int) -> "QueueConsumer":
        """Each shard is consumed by a single consumer (CSMR); callers are
        responsible for the 1:1 shard-consumer mapping."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range")
        return QueueConsumer(self, shard)

    # ------------------------------------------------------------------
    # Shard replay (shared by consumers and the GC function)
    # ------------------------------------------------------------------
    def replay_shard(
        self,
        shard: int,
        upto_seqnum: int,
        hint: Optional[Tuple[int, "_ShardState"]] = None,
    ) -> Generator:
        """Re-construct shard state as of ``upto_seqnum`` (inclusive);
        returns ``(state, result_of_record_at_upto)``.

        ``hint`` is an in-memory local view ``(replayed_upto, state)`` kept
        by a live consumer (Tango-style); without one — the ephemeral
        cold-start case — the whole tag range is fetched in one batched
        read and replay resumes from the latest record with a cached state
        in its aux data (§5.4). Pop records' aux is filled with the shard
        state so future cold starts resume from them."""
        tag = shard_tag(self.name, shard)
        target_result = None
        if hint is not None and hint[0] <= upto_seqnum:
            state = _ShardState(list(hint[1].pending))
            records = yield from self.book.read_range(
                tag=tag, min_seqnum=hint[0] + 1, max_seqnum=upto_seqnum
            )
        else:
            records = yield from self.book.read_range(
                tag=tag, min_seqnum=0, max_seqnum=upto_seqnum
            )
            # Resume from the latest aux-cached state, if any.
            state = _ShardState()
            resume_at = -1
            for i in range(len(records) - 1, -1, -1):
                aux = records[i].auxdata
                if isinstance(aux, dict) and "pending" in aux:
                    state = _ShardState.from_aux(aux)
                    resume_at = i
                    break
            if resume_at >= 0:
                if records[resume_at].seqnum == upto_seqnum:
                    return state, records[resume_at].auxdata.get("result")
                records = records[resume_at + 1:]
        for record in records:
            result = state.apply(record)
            is_pop = record.data["kind"] == "pop"
            # Cache shard state on pop records (bounded aux traffic: one
            # per pop, enough for cold-start resume).
            if is_pop and record.auxdata is None:
                yield from self.book.set_auxdata(
                    record.seqnum, state.to_aux(result, is_pop)
                )
            if record.seqnum == upto_seqnum:
                target_result = result
        return state, target_result


class QueueProducer:
    """Pushes messages, spreading over shards round-robin (§5.3).

    With ``max_backlog`` set, the producer applies flow control: it
    periodically replays shard state (cheap — local view + aux caches) and
    stalls while consumers are too far behind. This coordination through
    the shared log is exactly what an opaque service API like SQS cannot
    offer (§7.4's producer-heavy results)."""

    BACKLOG_CHECK_EVERY = 4
    BACKLOG_POLL = 2e-3

    def __init__(self, queue: BokiQueue, max_backlog: Optional[int] = None):
        self.queue = queue
        self.max_backlog = max_backlog
        self._rr = itertools.count()
        self._views: dict = {}  # shard -> (seqnum, state) local view

    def push(self, value: Any) -> Generator:
        count = next(self._rr)
        shard = count % self.queue.num_shards
        if self.max_backlog is not None and count % self.BACKLOG_CHECK_EVERY == 0:
            yield from self._wait_for_room(shard)
        history = self.queue.history
        monitor = self.queue.monitor
        op = None
        if history is not None:
            op = history.invoke("producer", "queue.push", self.queue.name, value=value)
        if monitor is not None:
            monitor.on_queue_push_attempt(self.queue.name, shard, value)
        try:
            seqnum = yield from self.queue.book.append(
                {"kind": "push", "value": value},
                tags=[shard_tag(self.queue.name, shard)],
            )
        except BaseException as exc:
            if op is not None:
                history.fail(op, error=repr(exc))
            if monitor is not None:
                monitor.on_queue_push_fail(self.queue.name, shard, value)
            raise
        if op is not None:
            history.ok(op, result=seqnum)
        if monitor is not None:
            monitor.on_queue_push_ack(self.queue.name, shard, value, seqnum)
        return seqnum

    def _wait_for_room(self, shard: int) -> Generator:
        while True:
            tail = yield from self.queue.book.check_tail(
                tag=shard_tag(self.queue.name, shard)
            )
            if tail is None:
                return
            state, _ = yield from self.queue.replay_shard(
                shard, tail.seqnum, hint=self._views.get(shard)
            )
            self._views[shard] = (tail.seqnum, state)
            if len(state.pending) < self.max_backlog:
                return
            yield self.queue.book.env.timeout(self.BACKLOG_POLL)


class QueueConsumer:
    """Pops messages from one shard.

    A live consumer keeps an in-memory local view of its shard's state
    (Tango-style); the view is merely an accelerator — a fresh consumer
    (new function invocation) rebuilds it from the log and the aux-cached
    states, so correctness never depends on it."""

    def __init__(self, queue: BokiQueue, shard: int):
        self.queue = queue
        self.shard = shard
        self._local_view: Optional[Tuple[int, _ShardState]] = None

    def pop(self) -> Generator:
        """Append a pop record and replay to learn its outcome. Returns the
        value, or None if the shard was empty at the pop's position."""
        history = self.queue.history
        op = None
        if history is not None:
            op = history.invoke(f"consumer-{self.shard}", "queue.pop", self.queue.name)
        try:
            seqnum = yield from self.queue.book.append(
                {"kind": "pop", "consumer": self.shard},
                tags=[shard_tag(self.queue.name, self.shard)],
            )
            state, result = yield from self.queue.replay_shard(
                self.shard, seqnum, hint=self._local_view
            )
        except BaseException as exc:
            if op is not None:
                history.fail(op, error=repr(exc))
            raise
        self._local_view = (seqnum, state)
        if op is not None:
            history.ok(op, result=result)
        if self.queue.monitor is not None:
            self.queue.monitor.on_queue_pop(self.queue.name, self.shard, result)
        return result

    def pop_wait(self, poll_interval: float = 0.002, max_polls: int = 500) -> Generator:
        """Blocking pop: peek cheaply (no pop record) until a message looks
        available, then pop. Returns None after ``max_polls`` empty polls."""
        env = self.queue.book.env
        for _ in range(max_polls):
            value = yield from self.pop_nonempty_hint()
            if value is not None:
                return value
            yield env.timeout(poll_interval)
        return None

    def pop_nonempty_hint(self) -> Generator:
        """Pop only if replaying the current tail shows pending messages —
        avoids burning log records on obviously empty polls."""
        tail = yield from self.queue.book.check_tail(
            tag=shard_tag(self.queue.name, self.shard)
        )
        if tail is None:
            return None
        state, _ = yield from self.queue.replay_shard(
            self.shard, tail.seqnum, hint=self._local_view
        )
        self._local_view = (tail.seqnum, state)
        if not state.pending:
            return None
        return (yield from self.pop())
