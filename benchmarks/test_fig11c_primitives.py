"""Figure 11c: Beldi primitive-operation microbenchmark (§7.2).

Paper: Read is similar everywhere (~2 ms, one DynamoDB get). Write and
CondWrite cost more under logging. Invoke shows the largest gap: well
below 1 ms unsafe, 3.8 ms BokiFlow (5 LogBook appends), 19 ms Beldi (the
same 5 log appends, but each costing multiple DynamoDB updates).
"""

import pytest

from benchmarks._common import emit_artifact, make_cluster, ms, print_table, recorder_metrics, run_once
from benchmarks._workflow_common import SYSTEMS
from repro.workloads.primitives import measure_primitives, register_primitive_workflows

PRIMITIVES = ["read", "write", "condwrite", "invoke"]


def experiment():
    out = {}
    for system_name, runtime_class in SYSTEMS.items():
        cluster = make_cluster(
            num_function_nodes=8,
            num_storage_nodes=3,
            index_engines_per_log=8,
            with_dynamodb=True,
        )
        runtime = runtime_class(cluster)
        register_primitive_workflows(runtime)
        out[system_name] = measure_primitives(runtime, ops_per_workflow=25, workflows=4)
    return out


@pytest.mark.benchmark(group="fig11c")
def test_fig11c_primitive_operations(benchmark):
    results = run_once(benchmark, experiment)

    rows = []
    for system_name, recorders in results.items():
        rows.append(
            [system_name]
            + [f"{ms(recorders[p].median())} ({ms(recorders[p].p99())})" for p in PRIMITIVES]
        )
    print_table(
        "Figure 11c: Beldi primitive ops — median (p99)",
        ["", *PRIMITIVES],
        rows,
    )

    metrics = {}
    for system_name, recorders in results.items():
        slug = system_name.lower().replace(" ", "_")
        for primitive in PRIMITIVES:
            metrics.update(recorder_metrics(f"{slug}.{primitive}", recorders[primitive]))
    emit_artifact(
        "fig11c_primitives",
        metrics,
        title="Figure 11c: Beldi primitive operations",
        config={
            "function_nodes": 8, "storage_nodes": 3, "index_engines_per_log": 8,
            "ops_per_workflow": 25, "workflows": 4,
        },
    )

    unsafe, beldi, boki = (
        results["Unsafe baseline"],
        results["Beldi"],
        results["BokiFlow"],
    )

    # Claim 1: Read is within ~2x across all three systems (unlogged).
    reads = [r["read"].median() for r in results.values()]
    assert max(reads) < 2.5 * min(reads)
    # Claim 2: Invoke shows the largest gap; Beldi >> BokiFlow >> unsafe.
    assert beldi["invoke"].median() > 3 * boki["invoke"].median()
    assert boki["invoke"].median() > 2 * unsafe["invoke"].median()
    # Claim 3: unsafe Invoke is sub-millisecond (Nightcore-fast).
    assert unsafe["invoke"].median() < 1e-3
    # Claim 4: BokiFlow Invoke lands in the low-millisecond class
    # (paper: 3.8 ms).
    assert 1e-3 < boki["invoke"].median() < 10e-3
    # Claim 5: Beldi's Write also pays more than BokiFlow's.
    assert beldi["write"].median() > boki["write"].median()
