"""End-to-end observability on a full cluster.

Covers the acceptance bar of the obs subsystem: traced runs export valid
Chrome JSON whose per-hop self times are consistent with the recorded
end-to-end latencies, and enabling tracing changes no virtual-time
result (same-seed runs are byte-identically exported).
"""

import json

import pytest

from repro.core.cluster import BokiCluster
from repro.obs.export import attribution_report, self_times, to_chrome_trace, trace_spans
from repro.workloads.harness import dump_slowest_trace, run_closed_loop

RECORD = "x" * 256


def make_cluster(seed=11):
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3, seed=seed
    )
    return cluster


def traced_append_run(seed=11, enable_obs=True, profile=False):
    cluster = make_cluster(seed)
    obs = cluster.enable_observability(profile=profile) if enable_obs else None
    cluster.boot()
    engines = list(cluster.engines.values())

    def make_op(client):
        book = cluster.logbook(1, engine=engines[client % len(engines)])

        def one_append():
            yield from book.append(RECORD)

        return one_append

    result = run_closed_loop(
        cluster.env, make_op, num_clients=2, duration=0.05, warmup=0.02, obs=obs
    )
    return cluster, obs, result


def test_traced_run_produces_request_traces():
    cluster, obs, result = traced_append_run()
    assert result.completed > 0
    traces = result.extra["request_traces"]
    assert len(traces) == result.completed
    for latency, trace_id in traces:
        roots = [s for s in trace_spans(obs.tracer.spans, trace_id) if s.parent_id is None]
        assert len(roots) == 1
        # The root span brackets exactly the measured request.
        assert roots[0].duration == pytest.approx(latency, abs=0.0)
        assert roots[0].status == "ok"


def test_untraced_run_has_no_request_traces():
    cluster, obs, result = traced_append_run(enable_obs=False)
    assert "request_traces" not in result.extra


def test_spans_cover_all_layers():
    cluster, obs, result = traced_append_run()
    _, trace_id = result.extra["request_traces"][0]
    names = {s.name for s in trace_spans(obs.tracer.spans, trace_id)}
    assert "request" in names
    assert "engine.append" in names
    assert "engine.replicate" in names
    assert any(n.startswith("rpc:") for n in names)
    assert any(n.startswith("handle:") for n in names)
    # Background metalog ordering shows up as separate sequencer traces.
    assert any(s.name == "seq.quorum" for s in obs.tracer.spans)


def test_attribution_consistent_with_e2e_latency():
    cluster, obs, result = traced_append_run()
    for latency, trace_id in result.extra["request_traces"]:
        tspans = trace_spans(obs.tracer.spans, trace_id)
        root = next(s for s in tspans if s.parent_id is None)
        selfs = self_times(tspans)
        # Self times partition the root's interval (children clipped to
        # their parents), so their sum can never under-cover the request.
        assert sum(selfs.values()) >= latency - 1e-12
        report = attribution_report(obs.tracer.spans, trace_id=trace_id)
        assert f"end-to-end {latency * 1e3:.3f} ms" in report


def test_chrome_export_valid_and_nested():
    cluster, obs, result = traced_append_run()
    _, trace_id = result.extra["request_traces"][0]
    doc = json.loads(to_chrome_trace(obs.tracer.spans, trace_id=trace_id))
    events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert events
    by_id = {e["args"]["span_id"]: e for e in events}
    for event in events:
        assert event["dur"] >= 0
        parent_id = event["args"].get("parent_id")
        if parent_id is not None and parent_id in by_id:
            parent = by_id[parent_id]
            assert event["ts"] >= parent["ts"]


def test_same_seed_exports_are_byte_identical():
    _, obs_a, result_a = traced_append_run(seed=23)
    _, obs_b, result_b = traced_append_run(seed=23)
    assert result_a.completed == result_b.completed
    assert to_chrome_trace(obs_a.tracer.spans) == to_chrome_trace(obs_b.tracer.spans)
    assert attribution_report(obs_a.tracer.spans) == attribution_report(
        obs_b.tracer.spans
    )


def test_tracing_does_not_change_virtual_time_results():
    _, _, traced = traced_append_run(seed=29, enable_obs=True, profile=True)
    _, _, plain = traced_append_run(seed=29, enable_obs=False)
    assert traced.completed == plain.completed
    assert traced.errors == plain.errors
    assert traced.latencies.samples == plain.latencies.samples


def test_dump_slowest_trace(tmp_path):
    cluster, obs, result = traced_append_run()
    chrome_json, report = dump_slowest_trace(
        result, obs, path=str(tmp_path / "slowest")
    )
    doc = json.loads(chrome_json)
    slowest_latency = max(lat for lat, _ in result.extra["request_traces"])
    assert f"end-to-end {slowest_latency * 1e3:.3f} ms" in report
    assert (tmp_path / "slowest.json").read_text() == chrome_json
    assert (tmp_path / "slowest.txt").read_text() == report
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_profiler_attached_via_cluster():
    cluster, obs, result = traced_append_run(profile=True)
    prof = obs.profiler
    assert prof.events_processed > 0
    busiest = prof.busiest_nodes(top=3)
    assert busiest and busiest[0].busy_time > 0
    for profile in prof.nodes.values():
        assert 0 <= profile.utilization(0.0) <= 1.0 + 1e-9
    assert cluster.enable_observability() is obs  # idempotent
