"""Function nodes: bounded worker pools running registered functions.

A function node models Nightcore's engine + container fleet on one machine:
it accepts ``faas.exec`` requests, holds a worker slot for the duration of
the invocation (one in-flight request per container), applies a small
dispatch overhead, and runs the function handler as a simulation process.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from repro.obs.recorder import DISABLED
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.sync import Resource
from repro.faas.context import FunctionContext

DEFAULT_WORKERS = 64
#: Nightcore's internal dispatch cost (engine -> container message channel);
#: the Nightcore paper reports sub-100us invocation overheads.
DEFAULT_DISPATCH_OVERHEAD = 50e-6


class FunctionNode:
    """A simulated function node (Nightcore engine + containers)."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        name: str,
        workers: int = DEFAULT_WORKERS,
        dispatch_overhead: float = DEFAULT_DISPATCH_OVERHEAD,
    ):
        self.env = env
        self.net = net
        self.node = net.register(Node(env, name, cpu_capacity=workers))
        self.workers = Resource(env, capacity=workers)
        self.dispatch_overhead = dispatch_overhead
        self._functions: Dict[str, Callable] = {}
        self._gateway_invoke: Optional[Callable] = None
        self.invocations = 0
        self.obs = DISABLED
        self.node.handle("faas.exec", self._h_exec)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def queue_depth(self) -> int:
        """Invocations holding or waiting for a worker slot — the node's
        load signal for scheduling, autoscaling, and the queue gauges."""
        return self.workers.in_use + self.workers.queued

    def register_function(self, fn_name: str, handler: Callable) -> None:
        """``handler(ctx, arg)`` must be a generator function."""
        self._functions[fn_name] = handler

    def bind_gateway(self, gateway_invoke: Callable) -> None:
        """Install the callable used for child invocations from this node."""
        self._gateway_invoke = gateway_invoke

    def _h_exec(self, payload: dict) -> Generator:
        fn_name = payload["fn"]
        handler = self._functions.get(fn_name)
        if handler is None:
            raise KeyError(f"function {fn_name!r} not registered on {self.name}")
        if not self.obs.enabled:
            return (yield from self._exec(fn_name, handler, payload))
        queued_at = self.env.now
        with self.obs.tracer.span(
            f"fn:{fn_name}", node=self.name, kind="function", attrs={"fn": fn_name}
        ) as span:
            reply = yield from self._exec(fn_name, handler, payload, span, queued_at)
            return reply

    def _exec(self, fn_name: str, handler: Callable, payload: dict,
              span=None, queued_at: float = 0.0) -> Generator:
        req = self.workers.request()
        yield req
        if span is not None:
            # Time spent waiting for a free container slot.
            span.set_attr("queue_wait", self.env.now - queued_at)
        try:
            yield self.env.timeout(self.dispatch_overhead)
            ctx = FunctionContext(
                node=self.node,
                gateway_invoke=self._child_invoke,
                book_id=payload.get("book_id"),
                baggage=payload.get("baggage"),
                parent_id=payload.get("parent_id"),
                tenant=payload.get("tenant"),
            )
            self.invocations += 1
            result = yield self.env.process(
                handler(ctx, payload.get("arg")), name=f"fn:{fn_name}"
            )
        finally:
            self.workers.release(req)
        return {"result": result, "baggage": ctx.baggage}

    def _child_invoke(self, src_node, fn_name, arg, book_id, baggage,
                      parent_id, tenant=None) -> Generator:
        if self._gateway_invoke is None:
            raise RuntimeError(f"function node {self.name} has no gateway bound")
        return (
            yield from self._gateway_invoke(
                src_node=src_node,
                fn_name=fn_name,
                arg=arg,
                book_id=book_id,
                baggage=baggage,
                parent_id=parent_id,
                tenant=tenant,
            )
        )
