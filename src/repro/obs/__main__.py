"""``python -m repro.obs`` — the benchmark telemetry CLI."""

import sys

from repro.obs.bench import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
