"""Unit tests: failure classification, retry policies, budgets, breakers."""

import pytest

from repro.resil import (
    FAILURE,
    TIMEOUT,
    CircuitBreaker,
    RetryBudget,
    RetryPolicy,
    classify,
    unwrap_failure,
)
from repro.sim import Environment
from repro.sim.network import RpcError, RpcTimeout
from repro.sim.randvar import RandomStreams


class TestClassification:
    def test_timeout_is_ambiguous(self):
        exc = RpcTimeout("m", "dst", 1.0)
        assert classify(exc) == TIMEOUT
        assert unwrap_failure(exc) is exc

    def test_handler_error_is_definite(self):
        cause = ValueError("boom")
        exc = RpcError("m", cause)
        assert classify(exc) == FAILURE
        assert unwrap_failure(exc) is cause

    def test_nested_relay_layers_unwrap(self):
        cause = KeyError("x")
        exc = RpcError("outer", RpcError("inner", cause))
        assert unwrap_failure(exc) is cause
        assert classify(exc) == FAILURE

    def test_inner_hop_timeout_stays_a_timeout(self):
        """An RpcTimeout buried under relay RpcErrors must classify as
        TIMEOUT — the whole point of stopping the unwrap at the first
        non-RpcError cause."""
        inner = RpcTimeout("faas.exec", "func-1", 1.0)
        exc = RpcError("faas.invoke", RpcError("relay", inner))
        assert unwrap_failure(exc) is inner
        assert classify(exc) == TIMEOUT


class TestRetryPolicy:
    def test_max_attempts_bounds_retries(self):
        policy = RetryPolicy(max_attempts=3)
        exc = RpcError("m", ValueError())
        assert policy.should_retry(exc, 0)
        assert policy.should_retry(exc, 1)
        assert not policy.should_retry(exc, 2)

    def test_timeouts_not_retried_unless_opted_in(self):
        exc = RpcTimeout("m", "dst", 1.0)
        assert not RetryPolicy(retry_timeouts=False).should_retry(exc, 0)
        assert RetryPolicy(retry_timeouts=True).should_retry(exc, 0)

    def test_permanent_errors_never_retried(self):
        policy = RetryPolicy(max_attempts=10, permanent=(KeyError,))
        assert not policy.should_retry(RpcError("m", KeyError("gone")), 0)
        assert policy.should_retry(RpcError("m", ValueError()), 0)

    def test_permanent_matches_unwrapped_cause(self):
        policy = RetryPolicy(max_attempts=10, permanent=(KeyError,))
        nested = RpcError("outer", RpcError("inner", KeyError("gone")))
        assert not policy.should_retry(nested, 0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=1e-3, multiplier=2.0, max_delay=4e-3,
                             jitter=0.0)
        rng = RandomStreams(seed=0).stream("t")
        delays = [policy.backoff(k, rng) for k in range(5)]
        assert delays == [1e-3, 2e-3, 4e-3, 4e-3, 4e-3]

    def test_backoff_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay=10e-3, jitter=0.5)
        a = [policy.backoff(0, RandomStreams(seed=7).stream("j"))
             for _ in range(1)]
        b = [policy.backoff(0, RandomStreams(seed=7).stream("j"))
             for _ in range(1)]
        assert a == b  # same seed, same delay
        rng = RandomStreams(seed=3).stream("j")
        for _ in range(50):
            d = policy.backoff(0, rng)
            assert 5e-3 <= d <= 15e-3  # within [1-j, 1+j] * base


class TestRetryBudget:
    def test_deposits_scale_with_fresh_attempts(self):
        budget = RetryBudget(ratio=0.5, max_tokens=10.0, initial=0.0)
        for _ in range(4):
            budget.on_attempt()
        assert budget.tokens == pytest.approx(2.0)
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()
        assert budget.spent == 2
        assert budget.denied == 1

    def test_tokens_cap_at_max(self):
        budget = RetryBudget(ratio=1.0, max_tokens=3.0, initial=0.0)
        for _ in range(10):
            budget.on_attempt()
        assert budget.tokens == pytest.approx(3.0)


class TestCircuitBreaker:
    def make(self, threshold=3, reset=0.5):
        env = Environment()
        return env, CircuitBreaker(env, "dst", failure_threshold=threshold,
                                   reset_timeout=reset)

    def test_opens_after_consecutive_failures(self):
        env, breaker = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_failure_streak(self):
        env, breaker = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_single_probe_then_close(self):
        env, breaker = self.make(threshold=1, reset=0.5)
        breaker.record_failure()
        assert breaker.state == "open"
        env.run(until=0.6)  # reset timeout elapses in virtual time
        assert breaker.state == "half-open"
        assert breaker.allow()       # the single probe slot
        assert not breaker.allow()   # concurrent calls stay blocked
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        env, breaker = self.make(threshold=1, reset=0.5)
        breaker.record_failure()
        env.run(until=0.6)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 2
