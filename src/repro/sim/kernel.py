"""Discrete-event simulation kernel.

A small, deterministic event-loop in the style of SimPy: simulated
activities are Python generators ("processes") that yield :class:`Event`
objects; the kernel resumes a process when the event it waits on fires.
Virtual time only advances between events, so a simulation that models
minutes of cluster activity runs in milliseconds of wall time and is exactly
reproducible.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(1.5)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
1.5
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that was interrupted by another process.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the heap, callbacks not yet run
_PROCESSED = 2  # callbacks have run


class Event:
    """A condition that processes can wait for.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks to run at the current simulation
    time. Each event may trigger only once.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._state = _PENDING
        self._value: Any = None
        self._ok = True

    @property
    def triggered(self) -> bool:
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's result value, or the exception if it failed."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay of virtual time."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Process(Event):
    """Wraps a generator and drives it through the events it yields.

    A process is itself an event that triggers when the generator returns
    (value = return value) or raises (the process fails with the exception,
    which propagates to anything waiting on it).
    """

    def __init__(self, env: "Environment", generator: Generator, name: Optional[str] = None):
        super().__init__(env)
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Ambient trace context (repro.obs): inherited from the process
        # that created this one, so a spawned sub-process stays in the
        # creator's trace. None whenever tracing is off.
        active = env._active
        self.trace_ctx = active.trace_ctx if active is not None else None
        # Bootstrap: resume once at the current time.
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        if self._waiting_on is self:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)

        def do_interrupt(_event: Event) -> None:
            if not self.is_alive:
                return
            # Detach from whatever we were waiting on so the stale resume
            # callback does nothing when that event fires later.
            target = self._waiting_on
            if target is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            self._waiting_on = None
            self._step(None, to_throw=Interrupt(cause))

        event.callbacks.append(do_interrupt)
        event.succeed()

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self._step(event)

    def _step(self, event: Optional[Event], to_throw: Optional[BaseException] = None) -> None:
        env = self.env
        prev_active = env._active
        env._active = self
        try:
            self._step_inner(event, to_throw)
        finally:
            env._active = prev_active

    def _step_inner(self, event: Optional[Event], to_throw: Optional[BaseException]) -> None:
        try:
            if to_throw is not None:
                target = self._generator.throw(to_throw)
            elif event is not None and not event.ok:
                target = self._generator.throw(event.value)
            else:
                target = self._generator.send(event.value if event is not None else None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = SimulationError(f"process {self.name!r} yielded non-event {target!r}")
            self._generator.close()
            self.fail(error)
            return
        if target.processed:
            # Already happened: resume immediately (at the current time).
            bounce = Event(self.env)
            bounce._ok = target.ok
            bounce._value = target.value
            bounce.callbacks.append(self._resume)
            bounce.env._schedule(bounce)
            self._waiting_on = bounce
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class _Condition(Event):
    """Base for AnyOf/AllOf combinators."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._on_event(event)
            else:
                event.callbacks.append(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {e: e.value for e in self.events if e.triggered and e.ok}


class AnyOf(_Condition):
    """Triggers when any of the given events has triggered."""

    def _satisfied(self) -> bool:
        return self._done >= 1


class AllOf(_Condition):
    """Triggers when all of the given events have triggered."""

    def _satisfied(self) -> bool:
        return self._done >= len(self.events)


class Environment:
    """The simulation environment: virtual clock plus the event heap."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: List[tuple] = []
        self._eid = 0
        #: The process currently being stepped (trace-context inheritance).
        self._active: Optional[Process] = None
        #: Optional repro.obs.profile.KernelProfiler; one None-check per event.
        self.profiler = None

    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        event._state = _TRIGGERED
        self._eid += 1
        heapq.heappush(self._heap, (self._now + delay, self._eid, event))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given the clock is advanced exactly to ``until``
        even if the heap drains earlier, matching SimPy semantics.
        """
        processed = 0
        while self._heap:
            at, _, event = self._heap[0]
            if until is not None and at > until:
                break
            heapq.heappop(self._heap)
            self._now = at
            if self.profiler is not None:
                self.profiler.on_event(at, len(self._heap))
            event._run_callbacks()
            processed += 1
            if max_events is not None and processed >= max_events:
                return
        if until is not None and self._now < until:
            self._now = until

    def run_until(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers (or ``limit`` virtual time passes).

        Unlike :meth:`run`, this terminates even when perpetual background
        processes (heartbeats, sweepers) keep the heap non-empty. Returns the
        event's value; re-raises its exception if it failed.
        """
        # Wait for *processed* (callbacks ran), not *triggered*: a Timeout
        # is triggered (scheduled) at creation, long before it fires.
        while not event.processed:
            if limit is not None and self._now >= limit:
                raise SimulationError(f"run_until hit time limit {limit}")
            if not self.step():
                raise SimulationError("event heap drained before event triggered")
        if not event.ok:
            raise event.value
        return event.value

    def step(self) -> bool:
        """Process a single event; returns False if the heap is empty."""
        if not self._heap:
            return False
        at, _, event = heapq.heappop(self._heap)
        self._now = at
        if self.profiler is not None:
            self.profiler.on_event(at, len(self._heap))
        event._run_callbacks()
        return True

    def peek(self) -> Optional[float]:
        """Time of the next scheduled event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None
