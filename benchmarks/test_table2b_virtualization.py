"""Table 2b: virtualizing LogBooks over physical logs (§7.1).

Paper: aggregate append throughput with 1/2/4 physical logs virtualizing
100 or 100K LogBooks; throughput scales with physical logs and is
insensitive to LogBook density (122.3 -> 446.9 KOp/s at 100K books).

Scaled: 1/2/4 logs x {100, 10000} books, resources added linearly with
logs (4 storage + 32 clients per log, as the paper adds nodes linearly).
"""

import pytest

from benchmarks._common import emit_artifact, kops, make_cluster, print_table, run_once, throughput
from repro.workloads.microbench import append_only

LOG_COUNTS = [1, 2, 4]
BOOK_COUNTS = [100, 10_000]
DURATION = 0.15


def run_cell(num_logs: int, num_books: int):
    cluster = make_cluster(
        num_function_nodes=4,
        num_storage_nodes=4 * num_logs,
        num_logs=num_logs,
        workers_per_node=16 * num_logs,
    )
    return append_only(
        cluster,
        num_clients=32 * num_logs,
        duration=DURATION,
        book_ids=list(range(num_books)),
    )


def experiment():
    return {
        (num_logs, num_books): run_cell(num_logs, num_books)
        for num_logs in LOG_COUNTS
        for num_books in BOOK_COUNTS
    }


@pytest.mark.benchmark(group="table2b")
def test_table2b_logbook_virtualization(benchmark):
    table = run_once(benchmark, experiment)

    rows = [
        [f"{books} LogBooks", *(kops(table[(logs, books)].throughput) for logs in LOG_COUNTS)]
        for books in BOOK_COUNTS
    ]
    print_table(
        "Table 2b: aggregate throughput over physical logs",
        ["", *(f"{n}PhyLog" for n in LOG_COUNTS)],
        rows,
    )

    emit_artifact(
        "table2b_virtualization",
        {
            f"logs{logs}.books{books}.throughput": throughput(
                table[(logs, books)].throughput
            )
            for logs in LOG_COUNTS
            for books in BOOK_COUNTS
        },
        title="Table 2b: LogBook virtualization over physical logs",
        config={"log_counts": LOG_COUNTS, "book_counts": BOOK_COUNTS, "duration_s": DURATION},
    )

    # Claim 1: throughput scales with physical logs (>=2.5x from 1 to 4).
    for books in BOOK_COUNTS:
        assert table[(4, books)].throughput > 2.5 * table[(1, books)].throughput

    # Claim 2: density-insensitive — 10K books within 15% of 100 books.
    for logs in LOG_COUNTS:
        t_low = table[(logs, 100)].throughput
        t_high = table[(logs, 10_000)].throughput
        assert abs(t_high - t_low) / t_low < 0.15
