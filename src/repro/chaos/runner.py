"""Scenario runner + verdict artifacts.

Verdicts follow the ``repro.obs.bench`` artifact conventions: pure-JSON
documents serialized with sorted keys, fixed separators, and a trailing
newline, containing no wall-clock state — so the same scenario + seed
produces a byte-identical file (the determinism guarantee CI relies on).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.chaos import scenarios as _scenarios
from repro.chaos.scenarios import SCENARIOS, Scenario, ScenarioResult
from repro.obs.alerts import flight_record_to_json, validate_flight_record

SCHEMA = "repro.chaos/2"
DEFAULT_VERDICT_DIR = "bench/chaos"
VERDICT_DIR_ENV = "REPRO_CHAOS_DIR"
DEFAULT_FLIGHT_DIR = "bench/monitor"
FLIGHT_DIR_ENV = "REPRO_MONITOR_DIR"


def run_scenario(name: str, seed: int = 0, monitors: bool = True) -> Dict[str, Any]:
    """Execute one scenario and return its verdict document.

    ``monitors`` toggles the online invariant monitors (repro.monitor).
    They observe, never perturb — checks, stats, and timelines are
    byte-identical either way; only the ``online`` block differs.
    """
    try:
        scenario: Scenario = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None
    previous = _scenarios.MONITORING
    _scenarios.MONITORING = monitors
    try:
        result: ScenarioResult = scenario.fn(seed)
    finally:
        _scenarios.MONITORING = previous
    checks = [c.to_dict() for c in result.checks]
    # Sanity violations ("the faults never overlapped the load") always
    # fail the verdict; they never satisfy an expect_violations scenario —
    # only guarantee checkers can provide the expected violations.
    sanity = sum(len(c["violations"]) for c in checks
                 if c["name"] == "scenario-sanity")
    violations = sum(len(c["violations"]) for c in checks
                     if c["name"] != "scenario-sanity")
    if scenario.expect_violations:
        passed = sanity == 0 and violations > 0
    else:
        passed = sanity == 0 and violations == 0
    return {
        "schema": SCHEMA,
        "scenario": name,
        "description": scenario.description,
        "seed": seed,
        "expect_violations": scenario.expect_violations,
        "violations": violations,
        "passed": passed,
        "checks": checks,
        "timeline": result.timeline,
        "stats": result.stats,
        # schema 2: liveness metrics (availability + RTO) for recovery
        # scenarios; None for pure-safety scenarios.
        "recovery": result.recovery,
        # Goodput/degradation metrics (repro.admission) for overload
        # scenarios; None for everything else.
        "overload": result.overload,
        # Online monitor verdict (repro.monitor): the in-sim incremental
        # monitors' view of the same guarantees, plus freshness and
        # record-reconciliation summaries and any fired alerts.
        "online": result.online if result.online is not None
        else {"enabled": False},
    }


def verdict_to_json(doc: Dict[str, Any]) -> str:
    """Deterministic serialization (mirrors BenchmarkArtifact.to_json)."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def validate_verdict(doc: Dict[str, Any]) -> None:
    problems: List[str] = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(doc.get("scenario"), str) or not doc.get("scenario"):
        problems.append("scenario missing")
    if not isinstance(doc.get("seed"), int):
        problems.append("seed missing or not an int")
    if not isinstance(doc.get("passed"), bool):
        problems.append("passed missing or not a bool")
    if not isinstance(doc.get("checks"), list) or not doc.get("checks"):
        problems.append("checks missing or empty")
    else:
        for check in doc["checks"]:
            if not isinstance(check, dict) or "name" not in check or "violations" not in check:
                problems.append("malformed check entry")
    if not isinstance(doc.get("timeline"), list):
        problems.append("timeline missing or not a list")
    if not isinstance(doc.get("stats"), dict):
        problems.append("stats missing or not an object")
    if "recovery" not in doc:
        problems.append("recovery missing (schema 2)")
    elif doc["recovery"] is not None and not isinstance(doc["recovery"], dict):
        problems.append("recovery must be null or an object")
    if "overload" not in doc:
        problems.append("overload missing (schema 2)")
    elif doc["overload"] is not None and not isinstance(doc["overload"], dict):
        problems.append("overload must be null or an object")
    online = doc.get("online")
    if not isinstance(online, dict):
        problems.append("online missing or not an object")
    elif not isinstance(online.get("enabled"), bool):
        problems.append("online.enabled missing or not a bool")
    elif online["enabled"]:
        for key in ("checks", "passed", "events_seen"):
            if key not in online:
                problems.append(f"online.{key} missing")
    if problems:
        raise ValueError("invalid verdict: " + "; ".join(problems))


def write_verdict(doc: Dict[str, Any], directory: Optional[str] = None) -> str:
    """Write ``chaos_<scenario>_seed<seed>.json``; returns the path."""
    validate_verdict(doc)
    directory = directory or os.environ.get(VERDICT_DIR_ENV, DEFAULT_VERDICT_DIR)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"chaos_{doc['scenario']}_seed{doc['seed']}.json")
    with open(path, "w") as handle:
        handle.write(verdict_to_json(doc))
    return path


def flight_records() -> List[Dict[str, Any]]:
    """Flight-recorder snapshots (``repro.monitor/1`` docs) captured
    during the most recent :func:`run_scenario` call — one per fired
    alert, empty when monitors were off or nothing fired."""
    hub = _scenarios.LAST_HUB
    if hub is None or hub.recorder is None:
        return []
    return list(hub.recorder.snapshots)


def write_flight_records(
    scenario: str, seed: int, directory: Optional[str] = None
) -> List[str]:
    """Write the last run's flight-recorder snapshots as
    ``monitor_<scenario>_seed<seed>_alert<i>.json``; returns the paths
    (empty when no alert fired)."""
    docs = flight_records()
    if not docs:
        return []
    directory = directory or os.environ.get(FLIGHT_DIR_ENV, DEFAULT_FLIGHT_DIR)
    os.makedirs(directory, exist_ok=True)
    paths = []
    for i, doc in enumerate(docs):
        problems = validate_flight_record(doc)
        if problems:
            raise ValueError("invalid flight record: " + "; ".join(problems))
        path = os.path.join(
            directory, f"monitor_{scenario}_seed{seed}_alert{i}.json"
        )
        with open(path, "w") as handle:
            handle.write(flight_record_to_json(doc))
        paths.append(path)
    return paths


def load_verdict(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        doc = json.load(handle)
    validate_verdict(doc)
    return doc
