"""Recovery scenarios: availability/RTO SLOs, degraded baselines, and the
determinism guarantees of the resilience layer."""

import json

import pytest

from repro.chaos.history import History
from repro.chaos.liveness import check_recovery_slo, recovery_metrics
from repro.chaos.runner import SCHEMA, run_scenario, write_verdict
from repro.chaos.scenarios import (
    SCENARIOS,
    _drive_all,
    _gateway_store_clients,
    _register_store_fn,
    recovery_scenarios,
)
from repro.core.cluster import BokiCluster

pytestmark = [pytest.mark.chaos, pytest.mark.recovery]


class TestLivenessChecker:
    def _history(self, env_times):
        history = History(env=None)

        class FakeEnv:
            now = 0.0

        history.env = FakeEnv()
        for kind, t_invoke, t_return, ok in env_times:
            history.env.now = t_invoke
            op = history.invoke("c", kind, "k", 1)
            history.env.now = t_return
            (history.ok if ok else history.fail)(op, "x")
        return history

    def test_metrics_window_availability_and_rto(self):
        history = self._history([
            ("op", 0.1, 0.2, True),   # before the fault: excluded
            ("op", 1.0, 1.1, False),
            ("op", 1.2, 1.6, True),   # first post-fault success
            ("op", 1.7, 1.8, True),
        ])
        metrics = recovery_metrics(history, fault_at=0.5)
        assert metrics["window_ops"] == 3
        assert metrics["window_ok"] == 2
        assert metrics["availability"] == pytest.approx(2 / 3)
        assert metrics["rto_s"] == pytest.approx(1.6 - 0.5)

    def test_never_recovering_yields_unbounded_rto(self):
        history = self._history([("op", 1.0, 1.1, False)])
        metrics = recovery_metrics(history, fault_at=0.5)
        assert metrics["rto_s"] is None
        result = check_recovery_slo(metrics, min_availability=0.9)
        assert result.violations

    def test_slo_pass_and_fail(self):
        good = {"availability": 0.95, "rto_s": 1.0, "window_ops": 10}
        assert not check_recovery_slo(good, min_availability=0.9).violations
        bad = {"availability": 0.5, "rto_s": 1.0, "window_ops": 10}
        assert check_recovery_slo(bad, min_availability=0.9).violations
        slow = {"availability": 0.95, "rto_s": 5.0, "window_ops": 10}
        assert check_recovery_slo(slow, min_availability=0.9,
                                  max_rto=2.0).violations


class TestRecoveryScenarios:
    def test_catalog_pairs_recovery_with_baselines(self):
        names = recovery_scenarios()
        assert "crash-primary-under-load" in names
        assert "crash-primary-under-load-norecovery" in names
        assert "coordinator-crash-midcommit" in names
        assert "coordinator-crash-midcommit-norecovery" in names
        assert "flaky-links-retry-storm" in names

    @pytest.mark.parametrize("name", ["coordinator-crash-midcommit",
                                      "flaky-links-retry-storm"])
    def test_resilient_scenario_meets_slo(self, name):
        doc = run_scenario(name, seed=1)
        assert doc["schema"] == SCHEMA == "repro.chaos/2"
        assert doc["passed"], doc["checks"]
        recovery = doc["recovery"]
        assert recovery["enabled"] is True
        assert recovery["availability"] >= 0.9
        assert recovery["rto_s"] is not None  # recovery happened in finite time

    def test_crash_primary_meets_slo(self):
        doc = run_scenario("crash-primary-under-load", seed=1)
        assert doc["passed"], doc["checks"]
        assert doc["recovery"]["availability"] >= 0.9
        assert doc["recovery"]["rto_s"] is not None
        assert doc["stats"]["resil_retries"] > 0

    @pytest.mark.parametrize("name", ["coordinator-crash-midcommit-norecovery",
                                      "crash-primary-under-load-norecovery"])
    def test_baseline_degrades_but_stays_safe(self, name):
        """Without the resilience layer the same faults degrade
        availability below the SLO — yet safety checkers still pass, so
        the baseline isolates liveness loss from safety loss."""
        doc = run_scenario(name, seed=1)
        assert doc["passed"], doc["checks"]
        recovery = doc["recovery"]
        assert recovery["enabled"] is False
        assert recovery["availability"] < 0.9

    def test_verdicts_byte_identical_across_reruns(self, tmp_path):
        paths = []
        for run in ("a", "b"):
            doc = run_scenario("coordinator-crash-midcommit", seed=2)
            paths.append(write_verdict(doc, directory=str(tmp_path / run)))
        with open(paths[0], "rb") as fa, open(paths[1], "rb") as fb:
            assert fa.read() == fb.read()

    def test_recovery_scenarios_are_marked_in_catalog(self):
        for name in recovery_scenarios():
            assert SCENARIOS[name].recovery


class TestFaultFreeTransparency:
    def _fingerprint(self, resilient, seed=5):
        """Run an identical fault-free gateway store workload and reduce
        the run to a comparable trace."""
        cluster = BokiCluster(
            num_function_nodes=2, num_storage_nodes=3,
            num_sequencer_nodes=3, seed=seed,
        )
        if resilient:
            cluster.enable_resilience()
        cluster.boot()
        history = History(cluster.env)
        _register_store_fn(cluster)
        procs = _gateway_store_clients(cluster, history, num_clients=2,
                                       ops_per_client=10)
        _drive_all(cluster, procs, limit=300.0)
        return json.dumps({
            "now": round(cluster.env.now, 9),
            "messages_sent": cluster.net.messages_sent,
            "history": history.to_dicts(),
        }, sort_keys=True)

    def test_resilience_layer_invisible_without_faults(self):
        """Same seed, no faults: enabling the resilience layer must not
        perturb the simulation — no extra messages, no RNG draws, and a
        byte-identical operation history."""
        assert self._fingerprint(resilient=False) == \
            self._fingerprint(resilient=True)

    def test_no_jitter_rng_consumed_without_faults(self):
        cluster = BokiCluster(num_function_nodes=2, seed=3)
        cluster.enable_resilience()
        cluster.boot()
        history = History(cluster.env)
        _register_store_fn(cluster)
        procs = _gateway_store_clients(cluster, history, num_clients=1,
                                       ops_per_client=5)
        _drive_all(cluster, procs, limit=300.0)
        assert cluster.resil._rng is None
        assert cluster.resil.counters["retries"] == 0
