"""The resilience hub: retrying RPC wrappers over ``sim.network``.

One :class:`Resilience` instance serves a whole cluster (see
``BokiCluster.enable_resilience``). It owns the shared retry budget, the
per-destination circuit breakers, the deterministic jitter RNG stream,
and counters that scenarios embed in verdict artifacts.

The wrappers are generator functions consumed with ``yield from`` inside
a simulation process::

    reply = yield from resil.rpc(src, "storage-1", "storage.read", payload)
    reply = yield from resil.call_with_failover(
        src, lambda: current_backers(), "storage.read", payload)

Passing a *callable* destination list re-resolves the candidates on
every attempt, which is how engine calls ride through reconfiguration:
after a term change the callable returns the new term's nodes and the
retry loop converges on them instead of deadlocking on a dead primary.

Determinism guarantee: the first attempt of every wrapper is exactly one
``Network.rpc`` call — no RNG draw, no extra timeout event, no added
virtual time — so a fault-free run behaves byte-identically with the
resilience layer on or off.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Union

from repro.admission.errors import is_overload, retry_after_hint
from repro.resil.breaker import CircuitBreaker, CircuitOpenError
from repro.resil.policy import RetryBudget, RetryPolicy
from repro.sim.kernel import Environment
from repro.sim.network import Network, RpcError, RpcTimeout
from repro.sim.node import Node

#: Default policy for idempotent intra-cluster calls (reads, trims):
#: timeouts are ambiguous but the operations tolerate re-execution.
DEFAULT_POLICY = RetryPolicy(max_attempts=4, base_delay=2e-3, max_delay=0.2,
                             retry_timeouts=True)


class Resilience:
    """Shared resilience state + retrying call wrappers for one cluster."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        streams,
        policy: Optional[RetryPolicy] = None,
        budget: Optional[RetryBudget] = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 0.25,
    ):
        self.env = env
        self.net = net
        self.streams = streams
        self.policy = policy or DEFAULT_POLICY
        self.budget = budget or RetryBudget()
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        self.breakers: Dict[str, CircuitBreaker] = {}
        #: Jitter RNG, created lazily on the first retry so fault-free
        #: runs consume no randomness (the ``chaos-net`` pattern).
        self._rng = None
        self.counters: Dict[str, int] = {
            "attempts": 0,
            "retries": 0,
            "failovers": 0,
            "reroutes": 0,
            "breaker_fast_fails": 0,
        }

    # ------------------------------------------------------------------
    # Shared state
    # ------------------------------------------------------------------
    def jitter_rng(self):
        if self._rng is None:
            self._rng = self.streams.stream("resil-jitter")
        return self._rng

    def _retry_delay(self, policy: RetryPolicy, attempt: int,
                     exc: BaseException) -> float:
        """Jittered backoff floored at the failure's machine-readable
        retry-after hint (admission sheds, fail-fast rejections) — resil
        and admission pace retries from the same signal."""
        delay = policy.backoff(attempt, self.jitter_rng())
        hint = retry_after_hint(exc)
        return delay if hint is None else max(delay, hint)

    def breaker(self, destination: str) -> CircuitBreaker:
        breaker = self.breakers.get(destination)
        if breaker is None:
            breaker = self.breakers[destination] = CircuitBreaker(
                self.env, destination,
                failure_threshold=self.breaker_threshold,
                reset_timeout=self.breaker_reset,
            )
        return breaker

    def snapshot(self) -> Dict[str, int]:
        """Deterministic counter snapshot for verdict artifacts."""
        snap = dict(self.counters)
        snap["breaker_trips"] = sum(b.trips for b in self.breakers.values())
        snap["budget_spent"] = self.budget.spent
        snap["budget_denied"] = self.budget.denied
        return snap

    # ------------------------------------------------------------------
    # Call wrappers
    # ------------------------------------------------------------------
    def rpc(
        self,
        src: Union[str, Node],
        dst: Union[str, Node],
        method: str,
        payload=None,
        policy: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
    ) -> Generator:
        """Retrying request/response call to a single destination.

        Raises :class:`CircuitOpenError` without touching the network
        when the destination's breaker is open; otherwise re-raises the
        last transport error once the policy or budget is exhausted.
        """
        policy = policy or self.policy
        dst_name = dst if isinstance(dst, str) else dst.name
        attempt = 0
        self.budget.on_attempt()
        while True:
            breaker = self.breaker(dst_name)
            if not breaker.allow():
                self.counters["breaker_fast_fails"] += 1
                raise CircuitOpenError(dst_name)
            self.counters["attempts"] += 1
            try:
                result = yield self.net.rpc(
                    src, dst, method, payload,
                    timeout=timeout if timeout is not None else policy.attempt_timeout,
                )
            except (RpcError, RpcTimeout) as exc:
                # Overload sheds: no breaker failure (the node is up,
                # just saturated), no budget charge (nothing executed),
                # and the shedder's retry-after hint floors the backoff.
                shed = is_overload(exc)
                if not shed:
                    breaker.record_failure()
                if not policy.should_retry(exc, attempt):
                    raise
                if not shed and not self.budget.try_spend():
                    raise
                self.counters["retries"] += 1
                yield self.env.timeout(
                    self._retry_delay(policy, attempt, exc)
                )
                attempt += 1
                continue
            breaker.record_success()
            return result

    def call_with_failover(
        self,
        src: Union[str, Node],
        dsts: Union[List, Callable[[], List]],
        method: str,
        payload=None,
        policy: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
        start: int = 0,
    ) -> Generator:
        """Retrying call that rotates across candidate destinations.

        ``dsts`` is a list of node names/Nodes, or a callable returning
        the *current* list (re-resolved every attempt — the hook that
        lets calls follow a reconfiguration to the new term's nodes).
        ``start`` offsets the rotation so callers can preserve their own
        round-robin state (identical destination choice with the layer
        on or off in fault-free runs).
        """
        policy = policy or self.policy
        attempt = 0
        offset = start
        self.budget.on_attempt()
        while True:
            candidates = list(dsts() if callable(dsts) else dsts)
            if not candidates:
                raise LookupError(f"no destinations available for {method!r}")
            names = [c if isinstance(c, str) else c.name for c in candidates]
            # Next candidate in rotation whose breaker admits the call;
            # if every breaker is open, probe the rotation choice anyway
            # (total lockout would otherwise outlive the fault).
            chosen = None
            for i in range(len(names)):
                idx = (offset + i) % len(names)
                if self.breaker(names[idx]).allow():
                    chosen = idx
                    break
                self.counters["breaker_fast_fails"] += 1
            if chosen is None:
                chosen = offset % len(names)
            self.counters["attempts"] += 1
            try:
                result = yield self.net.rpc(
                    src, candidates[chosen], method, payload,
                    timeout=timeout if timeout is not None else policy.attempt_timeout,
                )
            except (RpcError, RpcTimeout) as exc:
                shed = is_overload(exc)
                if not shed:
                    self.breaker(names[chosen]).record_failure()
                if not policy.should_retry(exc, attempt):
                    raise
                if not shed and not self.budget.try_spend():
                    raise
                self.counters["retries"] += 1
                if len(names) > 1:
                    self.counters["failovers"] += 1
                offset = chosen + 1
                yield self.env.timeout(
                    self._retry_delay(policy, attempt, exc)
                )
                attempt += 1
                continue
            self.breaker(names[chosen]).record_success()
            return result

    def call(
        self,
        attempt_fn: Callable[[], Generator],
        policy: Optional[RetryPolicy] = None,
        retry_on: tuple = (RpcError, RpcTimeout),
    ) -> Generator:
        """Retry an arbitrary generator-producing thunk.

        ``attempt_fn`` is invoked fresh on every attempt, so call sites
        that must rebuild request state per attempt (re-reading the
        current term's primary, re-deriving a payload) express that
        naturally. ``retry_on`` widens the retryable set beyond
        transport errors — e.g. workflow re-drivers retry
        ``WorkflowCrash``.
        """
        policy = policy or self.policy
        attempt = 0
        self.budget.on_attempt()
        while True:
            self.counters["attempts"] += 1
            try:
                result = yield from attempt_fn()
            except retry_on as exc:
                if not policy.should_retry(exc, attempt):
                    raise
                if not is_overload(exc) and not self.budget.try_spend():
                    raise
                self.counters["retries"] += 1
                yield self.env.timeout(
                    self._retry_delay(policy, attempt, exc)
                )
                attempt += 1
                continue
            return result
