"""Shared machinery for the Figure 11 workflow benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, List

from benchmarks._common import make_cluster
from repro.baselines.beldi import BeldiRuntime
from repro.baselines.unsafe import UnsafeRuntime
from repro.libs.bokiflow import BokiFlowRuntime
from repro.workloads.harness import RunResult, run_open_loop

SYSTEMS = {
    "Unsafe baseline": UnsafeRuntime,
    "Beldi": BeldiRuntime,
    "BokiFlow": BokiFlowRuntime,
}


def latency_vs_throughput(
    register: Callable,
    make_request: Callable,
    rates: List[float],
    duration: float = 0.4,
    num_function_nodes: int = 8,
    seed: int = 0,
) -> Dict[str, List[RunResult]]:
    """Open-loop sweep: for each system and offered rate, run the workflow
    workload on a fresh cluster and record end-to-end request latency."""
    out: Dict[str, List[RunResult]] = {}
    for system_name, runtime_class in SYSTEMS.items():
        results = []
        for rate in rates:
            cluster = make_cluster(
                num_function_nodes=num_function_nodes,
                num_storage_nodes=3,
                index_engines_per_log=num_function_nodes,
                with_dynamodb=True,
                workers_per_node=32,
                seed=seed,
            )
            runtime = runtime_class(cluster)
            frontend = register(runtime)
            rng = cluster.streams.stream(f"wl-{system_name}-{rate}")

            def make_op(i, _rng=rng, _runtime=runtime, _frontend=frontend):
                request = make_request(_rng, i)
                return _runtime.start_workflow(_frontend, request, book_id=i % 16)

            results.append(
                run_open_loop(
                    cluster.env, make_op, rate=rate, duration=duration,
                    rng=cluster.streams.stream("arrivals"),
                )
            )
        out[system_name] = results
    return out


def print_sweep(title: str, rates: List[float], results: Dict[str, List[RunResult]]) -> None:
    from benchmarks._common import ms, print_table

    rows = []
    for system_name, system_results in results.items():
        for metric, fn in [("median", RunResult.median_latency), ("p99", RunResult.p99_latency)]:
            row = [f"{system_name} ({metric})"]
            for result in system_results:
                row.append(ms(fn(result)) if result.latencies.count else "-")
            rows.append(row)
    print_table(title, ["", *(f"{r:.0f} rps" for r in rates)], rows)
