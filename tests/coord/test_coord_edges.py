"""Edge cases for the coordination service."""

import pytest

from repro.coord import BadVersionError, CoordClient, CoordServer, NoNodeError
from repro.sim import Environment, Network, Node
from repro.sim.randvar import RandomStreams


@pytest.fixture
def setup():
    env = Environment()
    net = Network(env, RandomStreams(seed=23), jitter=0.0)
    server = CoordServer(env, net, net.register(Node(env, "coord")))
    client = CoordClient(env, net, net.register(Node(env, "n1")))
    return env, server, client


def drive(env, gen):
    return env.run_until(env.process(gen), limit=300.0)


def test_conditional_delete_rejects_stale_version(setup):
    env, server, client = setup

    def flow():
        yield from client.create("/v", "a")
        yield from client.set("/v", "b")  # version -> 1
        yield from client.delete("/v", version=0)

    with pytest.raises(BadVersionError):
        drive(env, flow())

def test_conditional_delete_with_current_version(setup):
    env, server, client = setup

    def flow():
        yield from client.create("/v", "a")
        yield from client.set("/v", "b")
        yield from client.delete("/v", version=1)
        return (yield from client.exists("/v"))

    assert drive(env, flow()) is False


def test_delete_missing_raises(setup):
    env, server, client = setup

    def flow():
        yield from client.delete("/ghost")

    with pytest.raises(NoNodeError):
        drive(env, flow())


def test_watch_fires_on_delete(setup):
    env, server, client = setup
    events = []
    client.on_watch(events.append)

    def flow():
        yield from client.create("/w", 1)
        yield from client.watch("/w")
        yield from client.delete("/w")
        yield env.timeout(0.01)

    drive(env, flow())
    assert [e.kind for e in events] == ["deleted"]


def test_children_watch_fires_on_child_delete(setup):
    env, server, client = setup
    events = []
    client.on_watch(events.append)

    def flow():
        yield from client.create("/m/a", 1)
        yield from client.watch_children("/m")
        yield from client.delete("/m/a")
        yield env.timeout(0.01)

    drive(env, flow())
    assert [e.kind for e in events] == ["children"]


def test_heartbeat_for_expired_session_fails(setup):
    env, server, client = setup

    def flow():
        yield from client.start_session()
        session_id = client.session_id
        yield from client.close_session()
        # Direct heartbeat on the dead session must be rejected.
        from repro.sim.network import RpcError

        try:
            yield client.net.rpc(
                client.node, "coord", "coord.heartbeat", {"session_id": session_id}
            )
        except RpcError as exc:
            return type(exc.cause).__name__
        return None

    assert drive(env, flow()) == "SessionExpiredError"


def test_version_survives_multiple_sets(setup):
    env, server, client = setup

    def flow():
        yield from client.create("/v", 0)
        for i in range(5):
            yield from client.set("/v", i, version=i)
        info = yield from client.get("/v")
        return info

    assert drive(env, flow()) == {"data": 4, "version": 5}
