"""Deterministic observability for the simulated Boki cluster.

The DES substrate makes distributed tracing uniquely cheap and exact:
virtual timestamps are deterministic, so two runs with the same seed
produce byte-identical traces, and instrumentation never perturbs the
simulated clock (spans are plain Python objects; no events are created).

Modules
-------
``trace``
    Spans with parent/child causality and a :class:`SpanContext` that
    piggybacks on network messages, following a request across nodes.
``registry``
    A central :class:`MetricsRegistry` of named counters, gauges, and
    histograms.
``profile``
    DES-kernel instrumentation: event-queue depth, events per virtual
    second, and per-node CPU busy time.
``export``
    Chrome ``trace_event`` JSON and plain-text latency attribution.
``critical_path``
    Exact critical-path extraction over a request's span tree, with
    per-component (network / sequencer / storage / engine / compute)
    attribution that sums to the end-to-end latency.
``bench``
    Benchmark run artifacts, committed baselines, and the
    improved/unchanged/regressed comparator behind
    ``python -m repro.obs bench run|compare|report``.
``recorder``
    The enabled/disabled switch; disabled tracing costs one attribute
    check on the hot path.
``monitor`` / ``alerts``
    Online invariant monitors (incremental shadows of the offline chaos
    checkers), SLO burn-rate alerting, and the flight recorder —
    re-exported as the :mod:`repro.monitor` package surface.
"""

# Initialize the sim substrate before any obs submodule: obs modules pull
# from repro.sim.kernel/metrics while repro.sim.network pulls the DISABLED
# recorder from here, and the cycle only resolves in this order (e.g. when
# ``python -m repro.obs`` makes this package the first import).
import repro.sim  # noqa: F401  (import-order dependency, see above)

from repro.obs.alerts import (
    MONITOR_SCHEMA,
    Alert,
    AlertManager,
    BurnRateRule,
    FlightRecorder,
    SLO,
    default_rules,
    flight_record_to_json,
    render_flight_record,
    validate_flight_record,
)
from repro.obs.bench import (
    ArtifactWriter,
    BenchmarkArtifact,
    MetricDelta,
    compare_artifacts,
    load_artifact,
    validate_artifact,
    wall_block,
)
from repro.obs.critical_path import (
    AttributionAggregate,
    attribute_trace,
    categorize,
    critical_path,
    critical_path_report,
)
from repro.obs.export import (
    attribution_report,
    monitor_instants,
    queue_counters,
    tenant_counters,
    self_times,
    slowest_trace,
    to_chrome_trace,
    trace_spans,
    write_chrome_trace,
)
from repro.obs.monitor import (
    MonitorHub,
    MonitorResult,
    SampleWindow,
    SuccessWindow,
)
from repro.obs.profile import KernelProfiler, NodeProfile
from repro.obs.recorder import DISABLED, ObsRecorder
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry, registry_from_cluster
from repro.obs.trace import Span, SpanContext, Tracer

__all__ = [
    "Alert",
    "AlertManager",
    "ArtifactWriter",
    "AttributionAggregate",
    "BenchmarkArtifact",
    "BurnRateRule",
    "Counter",
    "DISABLED",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MONITOR_SCHEMA",
    "MetricDelta",
    "MetricsRegistry",
    "MonitorHub",
    "MonitorResult",
    "NodeProfile",
    "ObsRecorder",
    "SLO",
    "SampleWindow",
    "Span",
    "SpanContext",
    "SuccessWindow",
    "Tracer",
    "attribute_trace",
    "attribution_report",
    "categorize",
    "compare_artifacts",
    "critical_path",
    "critical_path_report",
    "default_rules",
    "flight_record_to_json",
    "load_artifact",
    "monitor_instants",
    "queue_counters",
    "tenant_counters",
    "registry_from_cluster",
    "render_flight_record",
    "self_times",
    "slowest_trace",
    "to_chrome_trace",
    "trace_spans",
    "validate_artifact",
    "validate_flight_record",
    "wall_block",
    "write_chrome_trace",
]
