"""Network-partition behavior of the metalog quorum and read paths."""

import pytest

from repro.core import BokiCluster
from repro.sim.kernel import SimulationError


def booted(**kwargs):
    c = BokiCluster(**kwargs)
    c.boot()
    return c


class TestMetalogQuorumUnderPartition:
    def test_one_secondary_partitioned_appends_continue(self):
        """Quorum 2/3: losing one secondary must not stall ordering."""
        c = booted()
        asg = c.term.assignment(0)
        secondary = next(s for s in asg.sequencers if s != asg.primary)
        c.net.partition(asg.primary, secondary)

        def flow():
            book = c.logbook(1)
            out = []
            for i in range(5):
                out.append((yield from book.append({"i": i})))
            return out

        seqnums = c.drive(flow(), limit=120.0)
        assert len(seqnums) == 5
        assert seqnums == sorted(seqnums)

    def test_primary_isolated_from_all_secondaries_stalls_appends(self):
        """Without a quorum, no new metalog entries: appends block (no
        unsafe progress) until the partition heals."""
        c = booted()
        asg = c.term.assignment(0)
        for secondary in asg.sequencers:
            if secondary != asg.primary:
                c.net.partition(asg.primary, secondary)

        done = []

        def appender():
            book = c.logbook(1)
            seqnum = yield from book.append("blocked?")
            done.append(seqnum)

        proc = c.env.process(appender())
        c.env.run(until=c.env.now + 0.5)
        assert done == []  # stalled, not lost, not misordered

        # Heal: the append completes.
        c.net.heal_all()
        c.env.run_until(proc, limit=c.env.now + 120.0)
        assert len(done) == 1

    def test_storage_partitioned_from_appender_retries_until_heal(self):
        c = booted(num_function_nodes=1, num_storage_nodes=3)
        engine_name = c.function_nodes[0].name
        backers = c.term.assignment(0).shard_storage[engine_name]
        c.net.partition(engine_name, backers[0])
        done = []

        def appender():
            book = c.logbook(1)
            done.append((yield from book.append("delayed")))

        proc = c.env.process(appender())
        c.env.run(until=c.env.now + 0.2)
        assert done == []  # cannot fully replicate yet

        def healer():
            c.net.heal_all()
            if False:
                yield

        c.env.process(healer())
        c.env.run_until(proc, limit=c.env.now + 120.0)
        assert len(done) == 1

    def test_partitioned_record_not_readable_before_fully_replicated(self):
        """The global progress vector is the min over backers: a record
        not yet on all its shard's storage nodes is never ordered, so
        readers can never observe it (no phantom reads)."""
        c = booted(num_function_nodes=2, num_storage_nodes=3, index_engines_per_log=2)
        engine_name = c.function_nodes[0].name
        backers = c.term.assignment(0).shard_storage[engine_name]
        c.net.partition(engine_name, backers[0])

        def stuck_appender():
            book = c.logbook(1, engine=c.engine_of(engine_name))
            yield from book.append("half-replicated")

        c.env.process(stuck_appender())
        c.env.run(until=c.env.now + 0.3)

        def reader():
            book = c.logbook(1, engine=c.engine_of(c.function_nodes[1].name))
            return (yield from book.check_tail())

        assert c.drive(reader(), limit=120.0) is None


class TestCoordinationPartition:
    def test_partitioned_node_session_expires(self):
        """A node partitioned from the coordination service looks dead:
        its session expires and the controller reconfigures around it."""
        c = BokiCluster(num_sequencer_nodes=6, use_coord_sessions=True)
        c.boot()
        primary = c.term.assignment(0).primary
        c.net.partition(primary, "coord")

        def flow():
            yield c.env.timeout(8.0)

        c.drive(flow(), limit=120.0)
        assert c.controller.reconfig_count >= 1
        assert c.controller.current_term.assignment(0).primary != primary
