"""Tenant registry and log-space scoping units."""

import pytest

from repro.core.index import (
    ALL_TAG,
    logspace_of,
    scope_book,
    scope_tag,
    unscope_tag,
)
from repro.core.metalog import DEFAULT_LOGSPACE, LOGSPACE_SHIFT, MAX_RAW_ID
from repro.core.placement import assign_tenant_engines
from repro.tenant import (
    DEFAULT_TENANT,
    TenantQoS,
    TenantRegistry,
    UnknownTenantError,
)

pytestmark = pytest.mark.tenant


# ----------------------------------------------------------------------
# Scoping arithmetic
# ----------------------------------------------------------------------
def test_default_logspace_is_identity():
    assert scope_book(DEFAULT_LOGSPACE, 42) == 42
    assert scope_tag(DEFAULT_LOGSPACE, 7) == 7
    assert unscope_tag(DEFAULT_LOGSPACE, 7) == 7
    assert logspace_of(42) == DEFAULT_LOGSPACE


def test_scoping_round_trips():
    scoped = scope_book(3, 42)
    assert scoped == (3 << LOGSPACE_SHIFT) | 42
    assert logspace_of(scoped) == 3
    tag = scope_tag(3, 7)
    assert unscope_tag(3, tag) == 7
    assert logspace_of(tag) == 3


def test_all_tag_never_prefixed():
    # Tag 0 is the implicit row: scoped book ids already make it private.
    assert scope_tag(5, ALL_TAG) == ALL_TAG
    assert unscope_tag(5, ALL_TAG) == ALL_TAG


def test_disjoint_rows_across_logspaces():
    assert scope_book(1, 9) != scope_book(2, 9)
    assert scope_tag(1, 9) != scope_tag(2, 9)
    assert scope_book(1, 9) != 9


def test_raw_id_range_enforced():
    with pytest.raises(ValueError):
        scope_book(1, MAX_RAW_ID + 1)
    with pytest.raises(ValueError):
        scope_tag(1, MAX_RAW_ID + 1)
    # Default logspace passes anything through (no tenancy = no limits).
    assert scope_book(DEFAULT_LOGSPACE, MAX_RAW_ID + 1) == MAX_RAW_ID + 1


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_default_tenant_is_implicit_logspace_zero():
    reg = TenantRegistry()
    assert reg.known(DEFAULT_TENANT)
    assert reg.logspace(DEFAULT_TENANT) == DEFAULT_LOGSPACE
    assert reg.tag_scope(DEFAULT_TENANT) is None  # identity fast path
    assert reg.tag_scope(None) is None
    assert reg.scope_book(DEFAULT_TENANT, 5) == 5


def test_registration_assigns_sequential_logspaces():
    reg = TenantRegistry()
    reg.register("acme")
    reg.register("bigco")
    assert reg.logspace("acme") == 1
    assert reg.logspace("bigco") == 2
    assert reg.tenants() == [DEFAULT_TENANT, "acme", "bigco"]
    assert reg.tenant_of_logspace(2) == "bigco"
    assert reg.tenant_of_book(reg.scope_book("acme", 5)) == "acme"


def test_reregistration_updates_qos_never_logspace():
    reg = TenantRegistry()
    reg.register("acme", weight=1.0)
    before = reg.logspace("acme")
    reg.register("acme", weight=4.0)
    assert reg.logspace("acme") == before
    assert reg.weight("acme") == 4.0


def test_unknown_tenant_raises():
    reg = TenantRegistry()
    with pytest.raises(UnknownTenantError):
        reg.logspace("ghost")
    with pytest.raises(UnknownTenantError):
        reg.qos("ghost")


def test_qos_validation():
    with pytest.raises(ValueError):
        TenantQoS(weight=0)
    with pytest.raises(ValueError):
        TenantQoS(rate=-1)
    with pytest.raises(ValueError):
        TenantQoS(burst=0.5)
    reg = TenantRegistry()
    with pytest.raises(ValueError):
        reg.register(DEFAULT_TENANT, pinned=True)


def test_tag_scope_scopes_and_unscopes():
    reg = TenantRegistry()
    reg.register("acme")
    scope = reg.tag_scope("acme")
    assert scope.scope(7) == scope_tag(1, 7)
    assert scope.unscope(scope.scope(7)) == 7
    assert scope.scope(ALL_TAG) == ALL_TAG


# ----------------------------------------------------------------------
# Tenant-aware placement
# ----------------------------------------------------------------------
def test_pinned_tenants_get_dedicated_engines():
    qos = {
        "whale": TenantQoS(weight=2.0, pinned=True),
        "small-1": TenantQoS(),
        "small-2": TenantQoS(),
    }
    engines = [f"func-{i}" for i in range(6)]
    placement = assign_tenant_engines(qos, engines)
    whale = set(placement["whale"])
    assert whale  # the whale got dedicated engines
    # Spread tenants never land on pinned engines.
    for name in ("small-1", "small-2"):
        assert not (set(placement[name]) & whale)
        assert placement[name]


def test_placement_is_deterministic_and_total():
    qos = {f"t{i}": TenantQoS(pinned=(i == 0)) for i in range(4)}
    engines = [f"func-{i}" for i in range(5)]
    a = assign_tenant_engines(qos, engines, term_id=1)
    b = assign_tenant_engines(qos, engines, term_id=1)
    assert a == b
    assert set(a) == set(qos)
    for names in a.values():
        assert names and set(names) <= set(engines)


def test_placement_spread_width():
    qos = {f"t{i}": TenantQoS() for i in range(6)}
    engines = [f"func-{i}" for i in range(8)]
    placement = assign_tenant_engines(qos, engines, spread=2)
    assert all(len(v) == 2 for v in placement.values())
    # Rotation offsets scatter: not everyone on the same two engines.
    assert len({tuple(v) for v in placement.values()}) > 1
