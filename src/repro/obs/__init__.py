"""Deterministic observability for the simulated Boki cluster.

The DES substrate makes distributed tracing uniquely cheap and exact:
virtual timestamps are deterministic, so two runs with the same seed
produce byte-identical traces, and instrumentation never perturbs the
simulated clock (spans are plain Python objects; no events are created).

Modules
-------
``trace``
    Spans with parent/child causality and a :class:`SpanContext` that
    piggybacks on network messages, following a request across nodes.
``registry``
    A central :class:`MetricsRegistry` of named counters, gauges, and
    histograms.
``profile``
    DES-kernel instrumentation: event-queue depth, events per virtual
    second, and per-node CPU busy time.
``export``
    Chrome ``trace_event`` JSON and plain-text latency attribution.
``recorder``
    The enabled/disabled switch; disabled tracing costs one attribute
    check on the hot path.
"""

from repro.obs.export import (
    attribution_report,
    self_times,
    slowest_trace,
    to_chrome_trace,
    trace_spans,
    write_chrome_trace,
)
from repro.obs.profile import KernelProfiler, NodeProfile
from repro.obs.recorder import DISABLED, ObsRecorder
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry, registry_from_cluster
from repro.obs.trace import Span, SpanContext, Tracer

__all__ = [
    "Counter",
    "DISABLED",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "NodeProfile",
    "ObsRecorder",
    "Span",
    "SpanContext",
    "Tracer",
    "attribution_report",
    "registry_from_cluster",
    "self_times",
    "slowest_trace",
    "to_chrome_trace",
    "trace_spans",
    "write_chrome_trace",
]
