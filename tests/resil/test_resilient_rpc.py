"""Integration tests for the Resilience hub's retrying call wrappers."""

import pytest

from repro.resil import CircuitOpenError, Resilience, RetryBudget, RetryPolicy
from repro.sim import Environment, Network, Node
from repro.sim.network import RpcError, RpcTimeout
from repro.sim.randvar import RandomStreams


class Harness:
    """A client node plus two servers whose handlers fail on demand."""

    def __init__(self, seed=1, **resil_kwargs):
        self.env = Environment()
        self.streams = RandomStreams(seed=seed)
        self.net = Network(self.env, self.streams, jitter=0.0)
        self.client = self.net.register(Node(self.env, "client"))
        self.servers = {}
        self.calls = {}
        for name in ("srv-a", "srv-b"):
            node = self.net.register(Node(self.env, name))
            self.servers[name] = node
            self.calls[name] = 0
            node.handle("echo", self._make_handler(name))
        self.resil = Resilience(self.env, self.net, self.streams,
                                **resil_kwargs)
        self.fail_first = {}  # name -> how many leading calls raise

    def _make_handler(self, name):
        def handler(payload):
            self.calls[name] += 1
            if self.fail_first.get(name, 0) >= self.calls[name]:
                raise RuntimeError(f"{name} transient failure")
            yield self.env.timeout(1e-4)
            return {"from": name, "payload": payload}
        return handler

    def drive(self, gen, limit=60.0):
        proc = self.env.process(gen)
        return self.env.run_until(proc, limit=limit)


class TestRetryingRpc:
    def test_retries_transient_failures_to_success(self):
        h = Harness()
        h.fail_first["srv-a"] = 2
        policy = RetryPolicy(max_attempts=4, base_delay=1e-3)

        def flow():
            return (yield from h.resil.rpc(h.client, "srv-a", "echo", {"x": 1},
                                           policy=policy))

        reply = h.drive(flow())
        assert reply["from"] == "srv-a"
        assert h.calls["srv-a"] == 3
        assert h.resil.counters["retries"] == 2
        assert h.resil.budget.spent == 2

    def test_exhausted_policy_reraises_last_error(self):
        h = Harness()
        h.fail_first["srv-a"] = 100
        policy = RetryPolicy(max_attempts=3, base_delay=1e-3)

        def flow():
            yield from h.resil.rpc(h.client, "srv-a", "echo", None,
                                   policy=policy)

        with pytest.raises(RpcError):
            h.drive(flow())
        assert h.calls["srv-a"] == 3

    def test_timeouts_not_retried_without_opt_in(self):
        h = Harness()
        h.servers["srv-a"].crash()
        policy = RetryPolicy(max_attempts=4, retry_timeouts=False,
                             attempt_timeout=0.05)

        def flow():
            yield from h.resil.rpc(h.client, "srv-a", "echo", None,
                                   policy=policy)

        with pytest.raises(RpcTimeout):
            h.drive(flow())
        assert h.resil.counters["attempts"] == 1

    def test_fault_free_calls_consume_no_randomness(self):
        """The determinism guarantee: a successful call draws no jitter
        RNG and leaves the lazy stream uncreated."""
        h = Harness()

        def flow():
            for _ in range(5):
                yield from h.resil.rpc(h.client, "srv-a", "echo", None)

        h.drive(flow())
        assert h.resil._rng is None
        assert h.resil.counters["retries"] == 0

    def test_budget_denial_surfaces_original_error(self):
        h = Harness(budget=RetryBudget(ratio=0.0, max_tokens=5.0, initial=1.0))
        h.fail_first["srv-a"] = 100
        policy = RetryPolicy(max_attempts=10, base_delay=1e-3)

        def flow():
            yield from h.resil.rpc(h.client, "srv-a", "echo", None,
                                   policy=policy)

        with pytest.raises(RpcError):
            h.drive(flow())
        # One initial token: one retry spent, the second denied.
        assert h.resil.budget.spent == 1
        assert h.resil.budget.denied == 1
        assert h.calls["srv-a"] == 2


class TestCircuitBreaking:
    def test_breaker_opens_and_fails_fast(self):
        h = Harness(breaker_threshold=2, breaker_reset=10.0)
        h.fail_first["srv-a"] = 100
        policy = RetryPolicy(max_attempts=1)

        def call_once():
            yield from h.resil.rpc(h.client, "srv-a", "echo", None,
                                   policy=policy)

        for _ in range(2):
            with pytest.raises(RpcError):
                h.drive(call_once())
        calls_before = h.calls["srv-a"]
        with pytest.raises(CircuitOpenError):
            h.drive(call_once())
        assert h.calls["srv-a"] == calls_before  # no network traffic
        assert h.resil.counters["breaker_fast_fails"] == 1

    def test_half_open_probe_recovers_after_reset(self):
        h = Harness(breaker_threshold=2, breaker_reset=0.2)
        h.fail_first["srv-a"] = 2
        policy = RetryPolicy(max_attempts=1)

        def call_once():
            return (yield from h.resil.rpc(h.client, "srv-a", "echo", None,
                                           policy=policy))

        for _ in range(2):
            with pytest.raises(RpcError):
                h.drive(call_once())
        assert h.resil.breaker("srv-a").state == "open"

        def wait_then_call():
            yield h.env.timeout(0.25)
            return (yield from h.resil.rpc(h.client, "srv-a", "echo", None,
                                           policy=policy))

        reply = h.drive(wait_then_call())
        assert reply["from"] == "srv-a"
        assert h.resil.breaker("srv-a").state == "closed"


class TestFailover:
    def test_fails_over_to_next_candidate(self):
        h = Harness()
        h.servers["srv-a"].crash()
        policy = RetryPolicy(max_attempts=4, retry_timeouts=True,
                             attempt_timeout=0.05, base_delay=1e-3)

        def flow():
            return (yield from h.resil.call_with_failover(
                h.client, ["srv-a", "srv-b"], "echo", None, policy=policy))

        reply = h.drive(flow())
        assert reply["from"] == "srv-b"
        assert h.resil.counters["failovers"] == 1

    def test_start_offset_preserves_caller_round_robin(self):
        h = Harness()

        def flow(start):
            return (yield from h.resil.call_with_failover(
                h.client, ["srv-a", "srv-b"], "echo", None, start=start))

        assert h.drive(flow(0))["from"] == "srv-a"
        assert h.drive(flow(1))["from"] == "srv-b"
        assert h.drive(flow(2))["from"] == "srv-a"

    def test_callable_destinations_reresolved_each_attempt(self):
        """The reconfiguration hook: after a failure the candidate list is
        re-read, so a retry converges on the new term's nodes."""
        h = Harness()
        h.servers["srv-a"].crash()
        current = {"nodes": ["srv-a"]}
        policy = RetryPolicy(max_attempts=4, retry_timeouts=True,
                             attempt_timeout=0.05, base_delay=1e-3)

        def flow():
            def backers():
                return current["nodes"]
            return (yield from h.resil.call_with_failover(
                h.client, backers, "echo", None, policy=policy))

        def reconfigure():
            yield h.env.timeout(0.02)
            current["nodes"] = ["srv-b"]

        h.env.process(reconfigure())
        reply = h.drive(flow())
        assert reply["from"] == "srv-b"

    def test_open_breakers_skipped_in_rotation(self):
        h = Harness(breaker_threshold=1, breaker_reset=10.0)
        h.resil.breaker("srv-a").record_failure()  # trip srv-a open

        def flow():
            return (yield from h.resil.call_with_failover(
                h.client, ["srv-a", "srv-b"], "echo", None, start=0))

        reply = h.drive(flow())
        assert reply["from"] == "srv-b"
        assert h.resil.counters["breaker_fast_fails"] == 1


class TestCallThunk:
    def test_thunk_rebuilt_each_attempt_and_custom_retry_on(self):
        h = Harness()
        attempts = []

        class AppError(Exception):
            pass

        def flow():
            def attempt():
                attempts.append(h.env.now)
                if len(attempts) < 3:
                    raise AppError("try again")
                yield h.env.timeout(1e-4)
                return "done"
            policy = RetryPolicy(max_attempts=5, base_delay=1e-3)
            return (yield from h.resil.call(attempt, policy=policy,
                                            retry_on=(AppError,)))

        assert h.drive(flow()) == "done"
        assert len(attempts) == 3
