"""Tests for the full DeathStarBench-style movie service graph."""

import pytest

from repro.baselines.beldi import BeldiRuntime
from repro.baselines.dynamodb import DynamoDBClient, DynamoDBService
from repro.core import BokiCluster
from repro.libs.bokiflow import BokiFlowRuntime
from repro.libs.bokiflow.env import WorkflowCrash
from repro.workloads.movie import (
    TABLE_MOVIE_INFO,
    TABLE_MOVIE_REVIEWS,
    TABLE_REVIEWS,
    register_full_movie_workflows,
)


@pytest.fixture
def cluster():
    c = BokiCluster(num_function_nodes=4, index_engines_per_log=4)
    DynamoDBService(c.env, c.net, c.streams)
    c.boot()
    return c


def db(cluster):
    return DynamoDBClient(cluster.net, cluster.client_node)


class TestFullMovieGraph:
    def test_end_to_end(self, cluster):
        runtime = BokiFlowRuntime(cluster)
        frontend = register_full_movie_workflows(runtime, prefix="fm1")

        def flow():
            request = {"user": "ada", "movie": "Arrival", "text": " great ", "rating": 9}
            result = yield from runtime.start_workflow(frontend, request, book_id=1)
            client = db(cluster)
            review = yield from client.get(TABLE_REVIEWS, result["review_id"])
            movie_reviews = yield from client.get(TABLE_MOVIE_REVIEWS, "Arrival")
            return result, review["Value"], movie_reviews["Value"]

        result, review, movie_reviews = cluster.drive(flow(), limit=600.0)
        assert result["avg_rating"] == 9.0
        assert review["text"] == "great"  # text service trimmed it
        assert review["movie"] == "m-Arrival"
        assert movie_reviews == [result["review_id"]]

    def test_rating_accumulates(self, cluster):
        runtime = BokiFlowRuntime(cluster)
        frontend = register_full_movie_workflows(runtime, prefix="fm2")

        def flow():
            base = {"user": "u", "movie": "Dune", "text": "t"}
            r1 = yield from runtime.start_workflow(
                frontend, dict(base, rating=10), book_id=1
            )
            r2 = yield from runtime.start_workflow(
                frontend, dict(base, rating=4), book_id=1
            )
            return r1["avg_rating"], r2["avg_rating"]

        first, second = cluster.drive(flow(), limit=600.0)
        assert first == 10.0
        assert second == 7.0  # (10 + 4) / 2

    def test_crash_mid_graph_exactly_once(self, cluster):
        """Crash the frontend between service invocations; re-execution
        must not double-count the rating or duplicate list entries."""
        runtime = BokiFlowRuntime(cluster)
        frontend = register_full_movie_workflows(runtime, prefix="fm3")
        crash = {"armed": True}

        original_hook = runtime.fault_hook

        def hook(step):
            # Crash the frontend right after the rating step completed
            # (frontend steps: 0..6; rating is step 3).
            if crash["armed"] and step == 4:
                crash["armed"] = False
                raise WorkflowCrash("frontend died")

        def flow():
            runtime.fault_hook = hook
            request = {"user": "u", "movie": "Tenet", "text": "t", "rating": 8}
            wf_id = runtime.new_workflow_id()
            try:
                yield from runtime.start_workflow(
                    frontend, request, book_id=1, workflow_id=wf_id
                )
            except WorkflowCrash:
                pass
            runtime.fault_hook = original_hook
            result = yield from runtime.start_workflow(
                frontend, request, book_id=1, workflow_id=wf_id
            )
            client = db(cluster)
            rating = yield from client.get(TABLE_MOVIE_INFO, "rating:Tenet")
            movie_reviews = yield from client.get(TABLE_MOVIE_REVIEWS, "Tenet")
            return result, rating["Value"], movie_reviews["Value"]

        result, rating, reviews = cluster.drive(flow(), limit=600.0)
        assert rating == {"count": 1, "total": 8}  # not double-counted
        assert reviews == [result["review_id"]]    # no duplicate entries

    def test_runs_on_beldi_too(self, cluster):
        runtime = BeldiRuntime(cluster)
        frontend = register_full_movie_workflows(runtime, prefix="fm4")

        def flow():
            request = {"user": "u", "movie": "Heat", "text": "t", "rating": 7}
            return (yield from runtime.start_workflow(frontend, request))

        result = cluster.drive(flow(), limit=600.0)
        assert result["avg_rating"] == 7.0
