"""Ablation: replication factors (ndata, nmeta).

DESIGN.md's decomposition claim: because ordering is decoupled from data
replication, raising the metalog replication factor (nmeta) barely moves
append latency (the metalog's quorum round runs concurrently with batching)
while raising the *data* replication factor (ndata) adds storage work per
append and costs throughput.
"""

import pytest

from benchmarks._common import (
    emit_artifact,
    lat_ms,
    make_cluster,
    ms,
    print_table,
    run_once,
    throughput,
)
from repro.core import BokiConfig
from repro.workloads.microbench import append_only

CLIENTS = 32
DURATION = 0.2


def run_config(ndata, nmeta):
    config = BokiConfig(ndata=ndata, nmeta=nmeta)
    cluster = make_cluster(
        num_function_nodes=4,
        num_storage_nodes=max(4, ndata),
        num_sequencer_nodes=nmeta,
        config=config,
        workers_per_node=16,
    )
    return append_only(cluster, num_clients=CLIENTS, duration=DURATION)


def experiment():
    return {
        "ndata=3, nmeta=3": run_config(3, 3),
        "ndata=3, nmeta=5": run_config(3, 5),
        "ndata=3, nmeta=7": run_config(3, 7),
        "ndata=5, nmeta=3": run_config(5, 3),
    }


@pytest.mark.benchmark(group="ablation-replication")
def test_ablation_replication_factors(benchmark):
    results = run_once(benchmark, experiment)

    rows = [
        [name, ms(r.median_latency()), ms(r.p99_latency()), f"{r.throughput / 1e3:.1f}K"]
        for name, r in results.items()
    ]
    print_table(
        "Ablation: replication factors",
        ["config", "append p50", "append p99", "t-put"],
        rows,
    )

    metrics = {}
    for name, r in results.items():
        slug = name.replace("=", "").replace(", ", ".")
        metrics[f"{slug}.append_p50_ms"] = lat_ms(r.median_latency())
        metrics[f"{slug}.append_p99_ms"] = lat_ms(r.p99_latency())
        metrics[f"{slug}.throughput"] = throughput(r.throughput)
    emit_artifact(
        "ablation_replication",
        metrics,
        title="Ablation: replication factors (ndata, nmeta)",
        config={"clients": CLIENTS, "duration_s": DURATION},
    )

    base = results["ndata=3, nmeta=3"]
    # Claim 1: metalog replication is nearly free (within 20% latency even
    # at nmeta=7) — consensus is off the data path.
    for name in ("ndata=3, nmeta=5", "ndata=3, nmeta=7"):
        assert results[name].median_latency() < 1.2 * base.median_latency()
    # Claim 2: data replication is not free — ndata=5 costs throughput or
    # latency versus ndata=3.
    heavier = results["ndata=5, nmeta=3"]
    assert (
        heavier.throughput < base.throughput
        or heavier.median_latency() > base.median_latency()
    )
