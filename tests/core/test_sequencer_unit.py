"""Direct unit tests of sequencer-node handlers (replication protocol)."""

import pytest

from repro.core.config import BokiConfig
from repro.core.metalog import MetalogEntry, SealedError, freeze_progress
from repro.core.placement import build_term
from repro.core.sequencer import SequencerNode
from repro.sim import Environment, Network, Node
from repro.sim.randvar import RandomStreams


@pytest.fixture
def world():
    env = Environment()
    net = Network(env, RandomStreams(seed=31), jitter=0.0)
    config = BokiConfig()
    sequencers = [SequencerNode(env, net, f"q{i}", config) for i in range(3)]
    # Register placeholder engine/storage nodes so placement is valid.
    for name in ["e0", "e1", "s0", "s1", "s2"]:
        net.register(Node(env, name))
    term = build_term(config, 1, ["e0", "e1"], ["s0", "s1", "s2"], ["q0", "q1", "q2"])
    for seq in sequencers:
        seq.configure(term)
    caller = net.register(Node(env, "caller"))
    return env, net, sequencers, term, caller


def entry(index, progress, start_pos):
    return MetalogEntry(index=index, progress=freeze_progress(progress), start_pos=start_pos)


def rpc(env, net, caller, dst, method, payload):
    proc = net.rpc(caller, dst, method, payload, timeout=1.0)
    return env.run_until(proc, limit=60.0)


class TestReplicateHandler:
    def test_accepts_in_order(self, world):
        env, net, sequencers, term, caller = world
        secondary = next(s for s in sequencers if s.name != term.assignment(0).primary)
        ok = rpc(env, net, caller, secondary.name, "seq.replicate",
                 {"term": 1, "log_id": 0, "entry": entry(0, {"e0": 1}, 0)})
        assert ok is True
        assert len(secondary.replicas[(1, 0)]) == 1

    def test_duplicate_is_idempotent(self, world):
        env, net, sequencers, term, caller = world
        secondary = next(s for s in sequencers if s.name != term.assignment(0).primary)
        payload = {"term": 1, "log_id": 0, "entry": entry(0, {"e0": 1}, 0)}
        rpc(env, net, caller, secondary.name, "seq.replicate", payload)
        ok = rpc(env, net, caller, secondary.name, "seq.replicate", payload)
        assert ok is True
        assert len(secondary.replicas[(1, 0)]) == 1

    def test_gap_rejected(self, world):
        env, net, sequencers, term, caller = world
        from repro.sim.network import RpcError

        secondary = next(s for s in sequencers if s.name != term.assignment(0).primary)
        with pytest.raises(RpcError):
            rpc(env, net, caller, secondary.name, "seq.replicate",
                {"term": 1, "log_id": 0, "entry": entry(5, {"e0": 9}, 40)})

    def test_rejected_after_seal(self, world):
        env, net, sequencers, term, caller = world
        from repro.sim.network import RpcError

        secondary = next(s for s in sequencers if s.name != term.assignment(0).primary)
        rpc(env, net, caller, secondary.name, "seq.seal", {"term": 1, "log_id": 0})
        with pytest.raises(RpcError):
            rpc(env, net, caller, secondary.name, "seq.replicate",
                {"term": 1, "log_id": 0, "entry": entry(0, {"e0": 1}, 0)})


class TestSealHandler:
    def test_returns_replica_length(self, world):
        env, net, sequencers, term, caller = world
        secondary = next(s for s in sequencers if s.name != term.assignment(0).primary)
        rpc(env, net, caller, secondary.name, "seq.replicate",
            {"term": 1, "log_id": 0, "entry": entry(0, {"e0": 2}, 0)})
        length = rpc(env, net, caller, secondary.name, "seq.seal", {"term": 1, "log_id": 0})
        assert length == 1

    def test_seal_is_idempotent(self, world):
        env, net, sequencers, term, caller = world
        secondary = next(s for s in sequencers if s.name != term.assignment(0).primary)
        first = rpc(env, net, caller, secondary.name, "seq.seal", {"term": 1, "log_id": 0})
        second = rpc(env, net, caller, secondary.name, "seq.seal", {"term": 1, "log_id": 0})
        assert first == second == 0

    def test_seal_of_unknown_log_reports_empty(self, world):
        env, net, sequencers, term, caller = world
        length = rpc(env, net, caller, sequencers[0].name, "seq.seal",
                     {"term": 9, "log_id": 7})
        assert length == 0


class TestFetchEntries:
    def test_returns_suffix(self, world):
        env, net, sequencers, term, caller = world
        secondary = next(s for s in sequencers if s.name != term.assignment(0).primary)
        for i in range(3):
            rpc(env, net, caller, secondary.name, "seq.replicate",
                {"term": 1, "log_id": 0, "entry": entry(i, {"e0": i + 1}, i)})
        entries = rpc(env, net, caller, secondary.name, "seq.fetch_entries",
                      {"term": 1, "log_id": 0, "from_index": 1})
        assert [e.index for e in entries] == [1, 2]

    def test_unknown_replica_returns_empty(self, world):
        env, net, sequencers, term, caller = world
        entries = rpc(env, net, caller, sequencers[0].name, "seq.fetch_entries",
                      {"term": 4, "log_id": 2, "from_index": 0})
        assert entries == []


class TestTrimHandler:
    def test_primary_buffers_trim(self, world):
        env, net, sequencers, term, caller = world
        primary = next(s for s in sequencers if s.name == term.assignment(0).primary)
        ok = rpc(env, net, caller, primary.name, "seq.append_trim",
                 {"term": 1, "log_id": 0, "book_id": 5, "tag": 2, "until_seqnum": 99})
        assert ok is True
        assert len(primary._primary_state[(1, 0)].pending_trims) == 1

    def test_secondary_rejects_trim(self, world):
        env, net, sequencers, term, caller = world
        from repro.sim.network import RpcError

        secondary = next(s for s in sequencers if s.name != term.assignment(0).primary)
        with pytest.raises(RpcError):
            rpc(env, net, caller, secondary.name, "seq.append_trim",
                {"term": 1, "log_id": 0, "book_id": 5, "tag": 2, "until_seqnum": 99})
