"""Simulated DynamoDB: the cloud database Beldi and BokiFlow store user
data in (§5.1, §7.2).

Implements the subset of DynamoDB both libraries rely on:

- tables of items keyed by a primary key, each item a dict of attributes;
- ``get`` / ``put`` / ``delete``;
- ``update`` with *condition expressions* — the atomic conditional update
  Beldi's linked DAAL and its locks are built on;
- atomic counter-style in-place updates.

Conditions are expressed as simple specs evaluated atomically with the
update: ``("absent",)``, ``("attr_lt", name, value)``, ``("attr_eq", name,
value)``, ``("exists",)``.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from repro.baselines.latency import (
    DYNAMODB_CONCURRENCY,
    DYNAMODB_COND_UPDATE,
    DYNAMODB_GET,
    DYNAMODB_PUT,
)
from repro.sim.kernel import Environment
from repro.sim.network import Network, RpcError
from repro.sim.node import Node
from repro.sim.randvar import RandomStreams
from repro.sim.sync import Resource


class ConditionFailedError(Exception):
    """A conditional update's condition evaluated false."""


def _check_condition(item: Optional[dict], condition: Optional[Tuple]) -> bool:
    if condition is None:
        return True
    kind = condition[0]
    if kind == "absent":
        return item is None
    if kind == "exists":
        return item is not None
    if kind == "attr_lt_or_absent":
        # The idempotent-update guard (Figure 6a): apply if the item does
        # not exist yet or its version is older than ours.
        _, name, value = condition
        return item is None or name not in item or item[name] < value
    if item is None:
        return False
    if kind == "attr_lt":
        _, name, value = condition
        return name in item and item[name] < value
    if kind == "attr_le":
        _, name, value = condition
        return name in item and item[name] <= value
    if kind == "attr_eq":
        _, name, value = condition
        return item.get(name) == value
    if kind == "attr_absent":
        _, name = condition
        return name not in item
    raise ValueError(f"unknown condition kind {kind!r}")


class DynamoDBService:
    """The simulated regional endpoint."""

    def __init__(self, env: Environment, net: Network, streams: RandomStreams, name: str = "dynamodb"):
        self.env = env
        self.net = net
        self.node = net.register(Node(env, name, cpu_capacity=DYNAMODB_CONCURRENCY))
        self._rng = streams.stream(f"{name}-latency")
        self._slots = Resource(env, capacity=DYNAMODB_CONCURRENCY)
        self.tables: Dict[str, Dict[Any, dict]] = {}
        self.op_count = 0
        #: Applied-effect journal (repro.chaos): one entry per *applied*
        #: update that carried an ``effect_id``. A logical effect appearing
        #: twice here means a duplicated side effect (exactly-once
        #: violation); the chaos checkers audit this list.
        self.effect_log: list = []
        #: Optional repro.monitor hub; applied effects feed the online
        #: exactly-once monitor as they happen.
        self.monitor = None
        self.node.handle("ddb.get", self._h_get)
        self.node.handle("ddb.put", self._h_put)
        self.node.handle("ddb.update", self._h_update)
        self.node.handle("ddb.delete", self._h_delete)
        self.node.handle("ddb.scan", self._h_scan)

    def table(self, name: str) -> Dict[Any, dict]:
        return self.tables.setdefault(name, {})

    def _service(self, model) -> Generator:
        self.op_count += 1
        req = self._slots.request()
        yield req
        try:
            yield self.env.timeout(model.sample(self._rng))
        finally:
            self._slots.release(req)

    def _h_get(self, payload: dict) -> Generator:
        yield from self._service(DYNAMODB_GET)
        item = self.table(payload["table"]).get(payload["key"])
        return dict(item) if item is not None else None

    def _h_put(self, payload: dict) -> Generator:
        yield from self._service(DYNAMODB_PUT)
        table = self.table(payload["table"])
        if not _check_condition(table.get(payload["key"]), payload.get("condition")):
            raise ConditionFailedError(payload["key"])
        table[payload["key"]] = dict(payload["item"])
        return True

    def _h_update(self, payload: dict) -> Generator:
        """Atomic read-modify-write of selected attributes, conditional."""
        yield from self._service(DYNAMODB_COND_UPDATE)
        table = self.table(payload["table"])
        item = table.get(payload["key"])
        if not _check_condition(item, payload.get("condition")):
            raise ConditionFailedError(payload["key"])
        if payload.get("effect_id") is not None:
            self.effect_log.append((payload["effect_id"], payload["table"], payload["key"]))
            if self.monitor is not None:
                self.monitor.on_effect(
                    payload["effect_id"], payload["table"], payload["key"]
                )
        if item is None:
            item = table[payload["key"]] = {}
        for name, value in payload.get("set", {}).items():
            item[name] = value
        for name, amount in payload.get("add", {}).items():
            item[name] = item.get(name, 0) + amount
        return dict(item)

    def _h_delete(self, payload: dict) -> Generator:
        yield from self._service(DYNAMODB_PUT)
        table = self.table(payload["table"])
        if not _check_condition(table.get(payload["key"]), payload.get("condition")):
            raise ConditionFailedError(payload["key"])
        table.pop(payload["key"], None)
        return True

    def _h_scan(self, payload: dict) -> Generator:
        yield from self._service(DYNAMODB_GET)
        table = self.table(payload["table"])
        prefix = payload.get("key_prefix")
        if prefix is None:
            return {k: dict(v) for k, v in table.items()}
        return {k: dict(v) for k, v in table.items() if str(k).startswith(prefix)}


class DynamoDBClient:
    """Client handle bound to a caller node; generator methods."""

    def __init__(self, net: Network, node: Node, service_name: str = "dynamodb"):
        self.net = net
        self.node = node
        self.service_name = service_name

    def _call(self, method: str, payload: dict) -> Generator:
        try:
            result = yield self.net.rpc(self.node, self.service_name, method, payload, timeout=30.0)
        except RpcError as exc:
            raise exc.cause from None
        return result

    def get(self, table: str, key: Any) -> Generator:
        return (yield from self._call("ddb.get", {"table": table, "key": key}))

    def put(self, table: str, key: Any, item: dict, condition: Optional[Tuple] = None) -> Generator:
        return (
            yield from self._call(
                "ddb.put", {"table": table, "key": key, "item": item, "condition": condition}
            )
        )

    def update(
        self,
        table: str,
        key: Any,
        set_attrs: Optional[dict] = None,
        add_attrs: Optional[dict] = None,
        condition: Optional[Tuple] = None,
        effect_id: Any = None,
    ) -> Generator:
        return (
            yield from self._call(
                "ddb.update",
                {
                    "table": table,
                    "key": key,
                    "set": set_attrs or {},
                    "add": add_attrs or {},
                    "condition": condition,
                    "effect_id": effect_id,
                },
            )
        )

    def delete(self, table: str, key: Any, condition: Optional[Tuple] = None) -> Generator:
        return (
            yield from self._call(
                "ddb.delete", {"table": table, "key": key, "condition": condition}
            )
        )

    def scan(self, table: str, key_prefix: Optional[str] = None) -> Generator:
        return (yield from self._call("ddb.scan", {"table": table, "key_prefix": key_prefix}))
