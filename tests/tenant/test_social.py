"""The flagship multi-tenant workload: population math, registration,
and an end-to-end smoke run asserting zero cross-tenant leaks.

`repro.workloads.social` models a session-analytics SaaS: Zipfian
tenant sizes over ~1M users, per-tenant QoS, and scans that count any
cross-tenant record as a leak. These tests pin the analytic population
split exactly and drive a short shaped run through the gateway.
"""

import pytest

from repro.core.cluster import BokiCluster
from repro.workloads.harness import FlashCrowdShape
from repro.workloads.social import (
    build_population,
    register_functions,
    run_social,
    zipfian_tenant_sizes,
)

pytestmark = pytest.mark.tenant


# ----------------------------------------------------------------------
# Population math (analytic, no RNG)
# ----------------------------------------------------------------------
def test_zipfian_sizes_sum_exactly_and_rank_descending():
    sizes = zipfian_tenant_sizes(8, 1_000_000)
    assert sum(sizes) == 1_000_000
    assert sizes == sorted(sizes, reverse=True)
    # theta=0.99 over 8 tenants: the whale holds a bit under half the
    # population, the tail tenant only a few percent.
    assert 0.35 < sizes[0] / 1_000_000 < 0.55
    assert sizes[-1] >= 1


def test_zipfian_sizes_rejects_degenerate_populations():
    with pytest.raises(ValueError):
        zipfian_tenant_sizes(0, 100)
    with pytest.raises(ValueError):
        zipfian_tenant_sizes(10, 5)  # fewer users than tenants


def test_zipfian_sizes_are_a_pure_function():
    assert zipfian_tenant_sizes(6, 123_457) == zipfian_tenant_sizes(6, 123_457)


# ----------------------------------------------------------------------
# Population registration
# ----------------------------------------------------------------------
def test_build_population_registers_tenants_with_qos():
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3
    )
    specs = build_population(
        cluster, num_tenants=5, total_users=10_000, pin_top=1,
        rate_caps={"app-4": 50.0},
    )
    hub = cluster.tenancy
    assert hub is not None
    assert [s.name for s in specs] == [f"app-{i}" for i in range(5)]
    assert set(hub.registry.tenants()) >= {s.name for s in specs}
    # Distinct log spaces: every tenant scopes the same raw book id to a
    # different scoped id.
    scoped = {hub.registry.scope_book(s.name, 1) for s in specs}
    assert len(scoped) == len(specs)
    # Weights follow sqrt(users): the whale outweighs the tail but by
    # less than the population ratio.
    whale, tail = specs[0], specs[-1]
    assert whale.weight > tail.weight
    assert whale.weight / tail.weight < whale.users / tail.users
    # pin_top pins exactly the largest tenant; rate caps stick.
    assert whale.pinned and not any(s.pinned for s in specs[1:])
    assert hub.registry.qos("app-4").rate == 50.0
    assert hub.registry.qos("app-0").rate is None


# ----------------------------------------------------------------------
# End-to-end smoke: sessions through the gateway, zero leaks
# ----------------------------------------------------------------------
def test_social_run_smoke_no_leaks():
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3,
        seed=3,
    )
    specs = build_population(cluster, num_tenants=4, total_users=1_000_000)
    register_functions(cluster)
    cluster.boot()

    shape = FlashCrowdShape(
        base_rate=120.0, peak_rate=200.0, surge_at=0.4, ramp=0.1,
        hold=0.2, decay=0.1,
    )
    run = run_social(cluster, specs, shape, duration=1.0, warmup=0.1)

    assert run.result.completed > 50
    assert run.result.errors == 0
    # The isolation invariant: no scan ever surfaced a record stamped by
    # another tenant, across every tenant in the population.
    assert run.leaks() == 0
    per_tenant = run.per_tenant()
    assert set(per_tenant) == {s.name for s in specs}
    # The whale dominates the traffic split, and the per-tenant ledger
    # covers at least the measured window (it also sees warmup and
    # straggler completions, which the window excludes).
    assert per_tenant["app-0"]["ok"] > per_tenant["app-3"]["ok"]
    assert sum(o["ok"] for o in per_tenant.values()) >= run.result.completed
    assert all(o["leaks"] == 0 for o in per_tenant.values())
    # Every ingest fed the per-tenant freshness SLO window.
    snap = cluster.tenancy.fairness_snapshot()
    assert snap["freshness"]["app-0"]["samples"] > 0
    assert snap["freshness"]["app-0"]["p99_s"] is not None


def test_social_run_is_deterministic():
    def fingerprint(seed):
        cluster = BokiCluster(
            num_function_nodes=2, num_storage_nodes=3,
            num_sequencer_nodes=3, seed=seed,
        )
        specs = build_population(cluster, num_tenants=3, total_users=50_000)
        register_functions(cluster)
        cluster.boot()
        shape = FlashCrowdShape(
            base_rate=100.0, peak_rate=100.0, surge_at=10.0,
        )
        run = run_social(cluster, specs, shape, duration=0.6)
        return (
            round(cluster.env.now, 9),
            run.result.completed,
            run.per_tenant(),
        )

    assert fingerprint(7) == fingerprint(7)
