"""Seeded bug injection: the online queue monitor must catch a duplicate
delivery the moment it happens, not at end-of-run reconciliation.

The injected bug makes one queue shard's state machine "forget" to
remove the head element on a chosen pop, so the next pop delivers the
same value again — the classic at-least-once slip an offline checker
only sees after the fact. The QueueMonitor's pop tap must flag it
online, within a bounded number of subsequent monitor events.
"""

import pytest

from repro.core.cluster import BokiCluster
from repro.libs.bokiqueue import queue as queue_mod

pytestmark = [pytest.mark.chaos, pytest.mark.monitor]


class _ForgetfulShardState(queue_mod._ShardState):
    """Applies pops without consuming: pop N of each shard returns the
    head value but leaves it pending, so pop N+1 re-delivers it."""

    buggy_pop = 3  # 1-based index of the pop that forgets to consume
    _pops = 0

    def apply(self, record):
        if record.data["kind"] == "pop" and self.pending:
            type(self)._pops += 1
            if type(self)._pops == self.buggy_pop:
                _, value = self.pending[0]  # deliver without popping
                return value
        return super().apply(record)


def test_duplicate_delivery_caught_online(monkeypatch):
    monkeypatch.setattr(queue_mod, "_ShardState", _ForgetfulShardState)
    _ForgetfulShardState._pops = 0

    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3,
        seed=7,
    )
    hub = cluster.enable_monitoring(context={"test": "duplicate-injection"})
    cluster.boot()
    env = cluster.env
    engine = cluster.engines["func-0"]
    q = queue_mod.BokiQueue(cluster.logbook(1, engine=engine), "bug-q",
                            num_shards=1)
    q.monitor = hub

    total = 8
    delivered = []
    events_at_detection = []

    def producer():
        p = q.producer()
        for i in range(total):
            yield from p.push(f"msg-{i}")
            yield env.timeout(0.01)

    def consumer():
        c = q.consumer(0)
        for _ in range(total + 2):  # the duplicate adds an extra delivery
            value = yield from c.pop_wait(poll_interval=0.01, max_polls=50)
            if value is None:
                break
            delivered.append(value)
            if hub.queue.violations and not events_at_detection:
                events_at_detection.append(hub.events_seen)

    procs = [env.process(producer(), name="p"),
             env.process(consumer(), name="c")]
    env.run_until(env.all_of(procs), limit=120.0)

    # The bug really happened: some value was delivered twice.
    assert len(delivered) > len(set(delivered))
    # ...and the monitor flagged it online, at the offending pop (the
    # violation was visible to the consumer on the very delivery after
    # the duplicate, i.e. within a handful of monitor events).
    assert hub.queue.violations, "duplicate delivery escaped the monitor"
    assert any("duplicate" in v or "already delivered" in v
               for v in hub.queue.violations)
    assert events_at_detection, "violation not observed during the run"
    result = hub.queue.result()
    assert not result.ok


def test_clean_queue_run_has_no_violations():
    """Control: the same workload without the injected bug is clean."""
    cluster = BokiCluster(
        num_function_nodes=2, num_storage_nodes=3, num_sequencer_nodes=3,
        seed=7,
    )
    hub = cluster.enable_monitoring()
    cluster.boot()
    env = cluster.env
    engine = cluster.engines["func-0"]
    q = queue_mod.BokiQueue(cluster.logbook(1, engine=engine), "clean-q",
                            num_shards=1)
    q.monitor = hub

    def producer():
        p = q.producer()
        for i in range(8):
            yield from p.push(f"msg-{i}")
            yield env.timeout(0.01)

    def consumer():
        c = q.consumer(0)
        for _ in range(8):
            value = yield from c.pop_wait(poll_interval=0.01, max_polls=50)
            if value is None:
                break

    procs = [env.process(producer(), name="p"),
             env.process(consumer(), name="c")]
    env.run_until(env.all_of(procs), limit=120.0)
    hub.finish(drained=True)
    assert hub.queue.result().ok, hub.queue.violations
