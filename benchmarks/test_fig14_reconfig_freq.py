"""Figure 14: sensitivity to reconfiguration frequency (§7.5).

Paper: with reconfigurations triggered every 1/3/10/30 seconds (new
sequencer trio chosen from 8 pre-provisioned nodes each time), log *read*
latencies are barely affected, while *append* tail latencies (p99/p99.9)
grow significantly at high frequency. Throughput is unaffected at every
tested frequency.

Scaled: the run is 3 s of virtual time with reconfigurations every
0.1/0.3/1.0 s (and a no-reconfiguration control), appends:reads = 1:4.
"""

import pytest

from benchmarks._common import emit_artifact, info, lat_ms, make_cluster, ms, print_table, run_once
from repro.core import BokiConfig
from repro.sim.kernel import Interrupt
from repro.sim.metrics import percentile
from repro.workloads.microbench import append_latency_timeline

DURATION = 3.0
FREQUENCIES = {"every 0.1s": 0.1, "every 0.3s": 0.3, "every 1s": 1.0, "none": None}


def run_frequency(period):
    cluster = make_cluster(
        num_function_nodes=4, num_storage_nodes=4, num_sequencer_nodes=8,
        workers_per_node=16,
    )
    env = cluster.env
    rng = cluster.streams.stream("fig14-seqpick")

    def reconfigure_loop():
        try:
            while True:
                yield env.timeout(period)
                names = [f"seq-{i}" for i in range(8)]
                rng.shuffle(names)
                chosen, spares = names[:3], names[3:]
                # The incoming trio must be reachable for seal + install;
                # afterwards the idle spares are fenced off (partitioned
                # from the serving cluster, though still connected to each
                # other) until a later round picks them again.
                cluster.net.heal_all()
                yield from cluster.controller.reconfigure(sequencer_names=chosen)
                active = sorted(set(cluster.net.nodes) - set(spares))
                cluster.net.partition_groups([spares, active])
        except Interrupt:
            return

    proc = None
    if period is not None:
        proc = env.process(reconfigure_loop(), name="fig14-reconfig")
    series = append_latency_timeline(cluster, num_clients=16, duration=DURATION, read_ratio=4)
    if proc is not None and proc.is_alive:
        proc.interrupt("done")
    return {
        "append": [lat for _, lat in series["append"].points],
        "read": [lat for _, lat in series["read"].points],
        "reconfigs": cluster.controller.reconfig_count,
    }


def experiment():
    return {name: run_frequency(period) for name, period in FREQUENCIES.items()}


@pytest.mark.benchmark(group="fig14")
def test_fig14_reconfiguration_frequency(benchmark):
    results = run_once(benchmark, experiment)

    rows = []
    for name, data in results.items():
        rows.append(
            [
                name,
                ms(percentile(data["read"], 99)),
                ms(percentile(data["read"], 99.9)),
                ms(percentile(data["append"], 99)),
                ms(percentile(data["append"], 99.9)),
                str(data["reconfigs"]),
            ]
        )
    print_table(
        "Figure 14: latency sensitivity to reconfiguration frequency",
        ["frequency", "read p99", "read p99.9", "append p99", "append p99.9", "#reconfigs"],
        rows,
    )

    metrics = {}
    for name, data in results.items():
        slug = name.replace(" ", "_").replace(".", "p")
        metrics[f"{slug}.read_p99_ms"] = lat_ms(percentile(data["read"], 99))
        metrics[f"{slug}.append_p99_ms"] = lat_ms(percentile(data["append"], 99))
        metrics[f"{slug}.append_p999_ms"] = lat_ms(percentile(data["append"], 99.9))
        metrics[f"{slug}.reconfigs"] = info(float(data["reconfigs"]))
    emit_artifact(
        "fig14_reconfig_freq",
        metrics,
        title="Figure 14: sensitivity to reconfiguration frequency",
        config={"duration_s": DURATION, "frequencies": sorted(FREQUENCIES)},
    )

    base = results["none"]
    frequent = results["every 0.1s"]
    # Claim 1: frequent reconfigurations significantly inflate append tail
    # latencies.
    assert percentile(frequent["append"], 99.9) > 3 * percentile(base["append"], 99.9)
    # Claim 2: read tails are much less affected than append tails.
    read_blowup = percentile(frequent["read"], 99) / percentile(base["read"], 99)
    append_blowup = percentile(frequent["append"], 99) / percentile(base["append"], 99)
    assert read_blowup < append_blowup
    # Claim 3: throughput is not affected (total completions within 20%
    # of the control at every frequency).
    base_ops = len(base["append"]) + len(base["read"])
    for name, data in results.items():
        ops = len(data["append"]) + len(data["read"])
        assert ops > 0.8 * base_ops
    # Claim 4: reconfigurations actually happened at roughly the intended
    # cadence.
    assert results["every 0.1s"]["reconfigs"] >= 15
    assert results["every 1s"]["reconfigs"] in (2, 3)
