"""Controller failure detector + reconfigure() under injected crashes.

These tests drive the controller through the repro.chaos fault machinery
(scheduled FaultPlan events replayed by a FaultInjector) rather than
inline crash calls, covering the failure-detection path end to end:
session expiry -> membership sweep -> seal -> new term.
"""

from repro.chaos.faults import FaultInjector, FaultPlan
from repro.core.cluster import BokiCluster
from repro.core.controller import ReconfigurationFailed
from repro.core.types import seqnum_term


def _drive(cluster, gen, limit=200.0):
    return cluster.drive(gen, limit=limit)


class TestFailureDetector:
    def test_injected_primary_crash_triggers_reconfiguration(self):
        c = BokiCluster(num_sequencer_nodes=6, use_coord_sessions=True)
        c.boot()
        primary = c.term.assignment(0).primary
        plan = FaultPlan().crash(0.1, primary)
        FaultInjector(c.env, c.net, plan).start()

        def flow():
            book = c.logbook(1)
            yield from book.append("pre-crash")
            # Session timeout (2s) + sweep + reconfiguration.
            yield c.env.timeout(6.0)
            return (yield from book.append("post-crash"))

        seqnum = _drive(c, flow())
        assert seqnum_term(seqnum) == 2
        assert c.controller.reconfig_count == 1
        assert primary not in c.controller.current_term.assignment(0).sequencers

    def test_spare_sequencer_crash_does_not_reconfigure(self):
        """A crash of a sequencer outside the serving set expires its
        session but must not trigger a reconfiguration."""
        c = BokiCluster(num_sequencer_nodes=6, use_coord_sessions=True)
        c.boot()
        in_use = set(c.term.assignment(0).sequencers)
        spare = next(q.name for q in c.sequencer_nodes if q.name not in in_use)
        plan = FaultPlan().crash(0.1, spare)
        FaultInjector(c.env, c.net, plan).start()

        def flow():
            yield c.env.timeout(6.0)
            book = c.logbook(1)
            return (yield from book.append("still-term-1"))

        seqnum = _drive(c, flow())
        assert seqnum_term(seqnum) == 1
        assert c.controller.reconfig_count == 0

    def test_back_to_back_primary_crashes(self):
        """Crash the primary, let the detector reconfigure, then crash the
        *new* primary: the detector must reconfigure again."""
        c = BokiCluster(num_sequencer_nodes=9, use_coord_sessions=True)
        c.boot()
        first_primary = c.term.assignment(0).primary
        plan = FaultPlan().crash(0.1, first_primary)
        injector = FaultInjector(c.env, c.net, plan)
        injector.start()

        def flow():
            book = c.logbook(1)
            yield from book.append("term-1")
            yield c.env.timeout(6.0)
            assert c.controller.current_term.term_id == 2
            second_primary = c.controller.current_term.assignment(0).primary
            c.net.nodes[second_primary].crash()
            yield c.env.timeout(6.0)
            return (yield from book.append("term-3"))

        seqnum = _drive(c, flow())
        assert seqnum_term(seqnum) == 3
        assert c.controller.reconfig_count == 2

    def test_injected_storage_crash_excluded_from_next_term(self):
        c = BokiCluster(
            num_storage_nodes=5, num_sequencer_nodes=3, use_coord_sessions=True
        )
        c.boot()
        victim = c.storage_nodes[0].name
        plan = FaultPlan().crash(0.1, victim)
        FaultInjector(c.env, c.net, plan).start()

        def flow():
            book = c.logbook(1)
            yield from book.append("pre")
            yield c.env.timeout(6.0)
            yield from book.append("post")
            tail = yield from book.check_tail()
            return tail.data

        assert _drive(c, flow()) == "post"
        assert c.controller.reconfig_count >= 1
        for backers in c.controller.current_term.assignment(0).shard_storage.values():
            assert victim not in backers


class TestReconfigureUnderCrashes:
    def test_seal_tolerates_minority_sequencer_crash(self):
        """Sealing needs only a quorum of metalog replicas: an explicit
        reconfigure right after one secondary dies must still succeed."""
        c = BokiCluster(num_sequencer_nodes=6)
        c.boot()
        asg = c.term.assignment(0)
        secondary = next(s for s in asg.sequencers if s != asg.primary)

        def flow():
            book = c.logbook(1)
            yield from book.append("pre")
            c.net.nodes[secondary].crash()
            new_term = yield from c.controller.reconfigure(
                sequencer_names=["seq-3", "seq-4", "seq-5"]
            )
            assert new_term.term_id == 2
            return (yield from book.append("post"))

        seqnum = _drive(c, flow())
        assert seqnum_term(seqnum) == 2
        assert c.controller.reconfig_count == 1

    def test_seal_quorum_loss_raises(self):
        """With a majority of the serving sequencers dead, sealing cannot
        reach quorum and reconfigure() must fail loudly."""
        c = BokiCluster(num_sequencer_nodes=6)
        c.boot()
        asg = c.term.assignment(0)
        majority = asg.sequencers[:2]

        def flow():
            book = c.logbook(1)
            yield from book.append("pre")
            for name in majority:
                c.net.nodes[name].crash()
            try:
                yield from c.controller.reconfigure(
                    sequencer_names=["seq-3", "seq-4", "seq-5"]
                )
            except ReconfigurationFailed:
                return "failed"
            return "succeeded"

        assert _drive(c, flow()) == "failed"
        assert c.controller.reconfig_count == 0

    def test_appends_resume_after_detector_driven_reconfig(self):
        """Appends issued while the primary is dead (before detection) are
        retried into the new term; none are lost or duplicated."""
        c = BokiCluster(num_sequencer_nodes=6, use_coord_sessions=True)
        c.boot()
        primary = c.term.assignment(0).primary
        plan = FaultPlan().crash(0.05, primary)
        FaultInjector(c.env, c.net, plan).start()
        results = []

        def appender():
            book = c.logbook(1)
            for i in range(12):
                seqnum = yield from book.append(f"rec-{i}")
                results.append(seqnum)
                yield c.env.timeout(0.02)

        proc = c.env.process(appender())
        c.env.run_until(proc, limit=200.0)
        assert len(results) == 12
        assert results == sorted(results)
        assert len(set(results)) == 12
        # The run straddled the reconfiguration: both terms appear.
        assert {seqnum_term(s) for s in results} == {1, 2}
