"""Tenant registry: tenant -> log space, QoS knobs, placement hints.

Boki's platform is multi-tenant by design: each user of the FaaS
platform gets an isolated shared-log namespace carved out of the common
metalog (§3). The registry is the control-plane source of truth for that
mapping. Registering a tenant assigns it the next *log space* — the
integer prefixed into the high bits of every book id and explicit tag
(:mod:`repro.core.index`) — plus its :class:`TenantQoS` contract: a
scheduling weight, an optional token-bucket rate limit, and placement
hints (pinning, population size).

The reserved ``default`` tenant owns log space 0, which maps
*identically* (scoped id == raw id). That identity is the layer-off
transparency guarantee: a cluster that never configures tenancy — or
enables it but registers no tenants — produces byte-identical runs to
the historical single-tenant seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.index import (
    DEFAULT_LOGSPACE,
    logspace_of,
    scope_book,
    scope_tag,
    unscope_tag,
)

#: The reserved tenant every unlabelled invocation belongs to.
DEFAULT_TENANT = "default"


class UnknownTenantError(KeyError):
    """An operation named a tenant that was never registered."""

    def __init__(self, tenant: str):
        super().__init__(f"unknown tenant {tenant!r}: register it first "
                         f"(only {DEFAULT_TENANT!r} is implicit)")
        self.tenant = tenant


@dataclass
class TenantQoS:
    """One tenant's quality-of-service contract.

    ``weight`` is the deficit-round-robin / fair-share weight (relative
    to other tenants); ``rate``/``burst`` configure the gateway token
    bucket (``rate=None`` = unlimited); ``pinned`` asks tenant-aware
    placement for dedicated engines; ``users`` records the simulated
    population size (workload sizing and placement heat, not enforced).
    """

    weight: float = 1.0
    rate: Optional[float] = None
    burst: float = 1.0
    pinned: bool = False
    users: int = 0

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1 token, got {self.burst}")


class TagScope:
    """Scoping hook a :class:`~repro.core.logbook.LogBook` applies to the
    explicit tags crossing its API (identity is modelled as *no* hook, so
    the default tenant's fast path is unchanged)."""

    __slots__ = ("logspace",)

    def __init__(self, logspace: int):
        self.logspace = logspace

    def scope(self, tag: int) -> int:
        return scope_tag(self.logspace, tag)

    def unscope(self, tag: int) -> int:
        return unscope_tag(self.logspace, tag)


class TenantRegistry:
    """Assigns log spaces and holds every tenant's QoS contract."""

    def __init__(self):
        self._qos: Dict[str, TenantQoS] = {DEFAULT_TENANT: TenantQoS()}
        self._logspaces: Dict[str, int] = {DEFAULT_TENANT: DEFAULT_LOGSPACE}
        self._by_logspace: Dict[int, str] = {DEFAULT_LOGSPACE: DEFAULT_TENANT}
        self._next_logspace = 1

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, tenant: str, qos: Optional[TenantQoS] = None,
                 **kwargs) -> TenantQoS:
        """Register ``tenant`` (idempotent), assigning the next log space.

        QoS can be given as a :class:`TenantQoS` or as its keyword fields.
        Re-registering updates the QoS but never the log space — data
        written under the old contract stays reachable.
        """
        if qos is not None and kwargs:
            raise ValueError("pass a TenantQoS or keyword fields, not both")
        qos = qos or TenantQoS(**kwargs)
        if tenant == DEFAULT_TENANT:
            if qos.pinned:
                raise ValueError("the default tenant cannot be pinned")
        elif tenant not in self._logspaces:
            self._logspaces[tenant] = self._next_logspace
            self._by_logspace[self._next_logspace] = tenant
            self._next_logspace += 1
        self._qos[tenant] = qos
        return qos

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def known(self, tenant: str) -> bool:
        return tenant in self._logspaces

    def require(self, tenant: str) -> None:
        if tenant not in self._logspaces:
            raise UnknownTenantError(tenant)

    def tenants(self) -> List[str]:
        """Every registered tenant, default first, then registration
        order (== log-space order: deterministic)."""
        return sorted(self._logspaces, key=self._logspaces.__getitem__)

    def qos(self, tenant: str) -> TenantQoS:
        self.require(tenant)
        return self._qos[tenant]

    def weight(self, tenant: str) -> float:
        return self.qos(tenant).weight

    def logspace(self, tenant: str) -> int:
        self.require(tenant)
        return self._logspaces[tenant]

    def tenant_of_logspace(self, logspace: int) -> Optional[str]:
        """Reverse lookup (scheduling derives the tenant from a scoped
        book id); None for an unassigned log space."""
        return self._by_logspace.get(logspace)

    def tenant_of_book(self, scoped_book_id: int) -> Optional[str]:
        return self.tenant_of_logspace(logspace_of(scoped_book_id))

    # ------------------------------------------------------------------
    # Scoping
    # ------------------------------------------------------------------
    def scope_book(self, tenant: str, book_id: Optional[int]) -> Optional[int]:
        """Namespace a raw book id into the tenant's log space (None
        passes through: the invocation uses no shared log)."""
        if book_id is None:
            return None
        return scope_book(self.logspace(tenant), book_id)

    def tag_scope(self, tenant: Optional[str]) -> Optional[TagScope]:
        """The LogBook tag hook for ``tenant``; None (identity, zero
        overhead) for the default tenant and unlabelled handles."""
        if tenant is None:
            return None
        logspace = self.logspace(tenant)
        if logspace == DEFAULT_LOGSPACE:
            return None
        return TagScope(logspace)
