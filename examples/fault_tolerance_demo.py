"""Fault-tolerance demo: crash the primary sequencer, watch Boki recover.

Run:  python examples/fault_tolerance_demo.py

Starts a cluster with coordination-service sessions enabled (every node
holds an ephemeral znode), runs a continuous append workload, then kills
the primary sequencer. The controller detects the expired session, seals
the term's metalogs (Delos-style), and installs a new term on spare
sequencers (§4.5); in-flight appends retry transparently and the workload
continues — exactly the Figure 10 experiment, narrated.
"""

from repro.core import BokiCluster
from repro.core.types import seqnum_term
from repro.sim.kernel import Interrupt


def main():
    cluster = BokiCluster(
        num_function_nodes=4,
        num_storage_nodes=3,
        num_sequencer_nodes=6,  # 3 active + 3 spares
        use_coord_sessions=True,
    )
    cluster.boot()
    env = cluster.env
    appended = []

    def appender():
        book = cluster.logbook(book_id=3)
        try:
            while True:
                seqnum = yield from book.append({"n": len(appended)})
                appended.append(seqnum)
        except Interrupt:
            return

    worker = env.process(appender())

    def narrate():
        yield env.timeout(0.25)
        primary = cluster.term.assignment(0).primary
        count_before = len(appended)
        print(f"t={env.now:.3f}s: {count_before} appends so far in term "
              f"{cluster.term.term_id}; killing primary sequencer {primary!r}")
        cluster.controller.components[primary].node.crash()
        # Session timeout (2s) + sweep + reconfiguration.
        yield env.timeout(6.0)
        new_term = cluster.controller.current_term
        print(f"t={env.now:.3f}s: controller detected the failure and installed "
              f"term {new_term.term_id} on sequencers "
              f"{new_term.assignment(0).sequencers}")
        print(f"reconfiguration protocol took "
              f"{cluster.controller.last_reconfig_duration * 1e3:.1f} ms")
        yield env.timeout(0.25)

    env.run_until(env.process(narrate()), limit=60.0)
    worker.interrupt("demo over")

    terms = sorted({seqnum_term(s) for s in appended})
    per_term = {t: sum(1 for s in appended if seqnum_term(s) == t) for t in terms}
    print(f"appends completed per term: {per_term}")
    print(f"total order preserved: {appended == sorted(appended)}")
    assert appended == sorted(appended)
    assert len(terms) == 2  # appends landed in both terms
    print("the shared log survived the sequencer failure with no lost appends.")


if __name__ == "__main__":
    main()
