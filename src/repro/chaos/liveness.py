"""Liveness metrics: availability and recovery time from histories.

The safety checkers (``repro.chaos.checkers``) prove nothing bad
happened; this module measures whether anything *good* kept happening.
Two Jepsen-style liveness figures are computed from a recorded
:class:`~repro.chaos.history.History` and the fault injection time:

- **availability** — goodput during the fault window: the fraction of
  client operations invoked at or after the fault that completed ``ok``.
  A cluster that recovers by retrying through reconfiguration keeps this
  near 1.0; a cluster without recovery serves errors for the whole
  failure-detection + reconfiguration window.
- **RTO** (recovery time objective) — virtual time from fault injection
  to the first *post-fault* successful completion; None when nothing
  ever succeeded after the fault (recovery failed outright).

:func:`check_recovery_slo` turns the metrics into a
:class:`~repro.chaos.checkers.CheckResult` so recovery objectives sit in
verdicts next to the safety checkers.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.chaos.checkers import CheckResult
from repro.chaos.history import History
from repro.obs.monitor import SuccessWindow


def recovery_metrics(
    history: History,
    fault_at: float,
    kinds: Optional[Iterable[str]] = None,
    enabled: bool = True,
) -> dict:
    """Availability + RTO over the operations invoked at/after ``fault_at``.

    ``kinds`` restricts the measured operations (e.g. only ``store.put``/
    ``store.get``); ``enabled`` records whether the resilience layer was
    on for this run (carried into the verdict so degraded baselines are
    self-describing). The dict is JSON-serializable and deterministic.

    Availability is computed on a
    :class:`~repro.obs.monitor.SuccessWindow` — the same incremental
    windowed success counter behind the online availability monitor and
    its burn-rate rules — fed one sample per operation at its invoke
    time, so online and offline availability share one windowing
    implementation instead of recomputing from raw samples here.
    """
    kind_set = set(kinds) if kinds is not None else None
    window = SuccessWindow()
    for op in history.ops:  # ops are appended in invoke order: time-sorted
        if kind_set is not None and op.kind not in kind_set:
            continue
        if op.t_invoke < fault_at:
            continue
        window.record(
            op.t_invoke,
            op.status == "ok",
            t_done=op.t_return if op.status == "ok" else None,
        )
    window_ops, window_ok = window.counts(start=fault_at)
    availability = window.availability(start=fault_at)
    first_ok = window.first_ok_after(fault_at)
    return {
        "enabled": enabled,
        "fault_at_s": round(fault_at, 6),
        "window_ops": window_ops,
        "window_ok": window_ok,
        "availability": round(availability, 6) if availability is not None else None,
        "rto_s": round(first_ok - fault_at, 6) if first_ok is not None else None,
    }


def check_recovery_slo(
    metrics: dict,
    min_availability: float = 0.9,
    max_rto: Optional[float] = None,
) -> CheckResult:
    """Recovery SLO as a checker: availability during the fault window
    must reach ``min_availability`` and a post-fault success must exist
    (finite RTO, optionally bounded by ``max_rto`` seconds)."""
    violations = []
    availability = metrics.get("availability")
    rto = metrics.get("rto_s")
    if metrics.get("window_ops", 0) == 0:
        violations.append("no operations invoked during the fault window")
    if availability is not None and availability < min_availability:
        violations.append(
            f"availability {availability} below SLO {min_availability}"
        )
    if rto is None:
        violations.append("no successful operation after the fault (RTO unbounded)")
    elif max_rto is not None and rto > max_rto:
        violations.append(f"RTO {rto}s exceeds objective {max_rto}s")
    return CheckResult("recovery-slo", violations, metrics.get("window_ops", 0))
