"""BokiFlow transactions: lock-based, Beldi-compatible (§5.1).

Beldi builds serializable transactions from its locks: acquire a lock per
touched key, buffer writes, apply them exactly-once at commit, release the
locks. BokiFlow keeps that structure, with locks backed by LogBook state
machines (:mod:`repro.libs.bokiflow.locks`) instead of DynamoDB conditional
updates. Locks are acquired in sorted key order (deadlock avoidance); a
failed acquisition aborts the transaction, releasing everything held.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

from repro.libs.bokiflow.env import WorkflowEnv
from repro.libs.bokiflow.locks import LockState, try_lock, unlock


class TxnAbortedError(Exception):
    """The transaction could not acquire a lock (after retries)."""


class WorkflowTxn:
    """A transaction within a workflow step sequence.

    Usage::

        txn = WorkflowTxn(env)
        ok = yield from txn.acquire([("flights", fid), ("hotels", hid)])
        if not ok:
            return "unavailable"
        seats = yield from txn.read("flights", fid)
        txn.write("flights", fid, seats - 1)
        yield from txn.commit()      # or yield from txn.abort()
    """

    MAX_LOCK_RETRIES = 3
    RETRY_BACKOFF = 0.002

    def __init__(self, env: WorkflowEnv):
        self.env = env
        self.holder_id = f"{env.workflow_id}/txn@{env.step}"
        self._locks: List[Tuple[Tuple[str, Any], LockState]] = []
        self._writes: Dict[Tuple[str, Any], Any] = {}
        self._done = False

    def acquire(self, keys: List[Tuple[str, Any]]) -> Generator:
        """Lock every (table, key); returns False (and releases all) if any
        lock is unavailable after retries."""
        for table_key in sorted(set(keys), key=repr):
            state = None
            for attempt in range(self.MAX_LOCK_RETRIES):
                state = yield from try_lock(self.env, table_key, self.holder_id)
                if state is not None:
                    break
                yield self.env.book.env.timeout(self.RETRY_BACKOFF * (attempt + 1))
            if state is None:
                yield from self._release_all()
                return False
            self._locks.append((table_key, state))
        return True

    def read(self, table: str, key: Any) -> Generator:
        """Read-through: buffered writes win over the database."""
        if (table, key) in self._writes:
            return self._writes[(table, key)]
        return (yield from self.env.read(table, key))

    def write(self, table: str, key: Any, value: Any) -> None:
        """Buffer a write; applied exactly-once at commit."""
        if self._done:
            raise TxnAbortedError("transaction already finished")
        self._writes[(table, key)] = value

    def commit(self) -> Generator:
        """Apply buffered writes (each an exactly-once logged step), then
        release the locks."""
        if self._done:
            raise TxnAbortedError("transaction already finished")
        for (table, key), value in self._writes.items():
            yield from self.env.write(table, key, value)
        yield from self._release_all()
        self._done = True

    def abort(self) -> Generator:
        if self._done:
            return
        self._writes.clear()
        yield from self._release_all()
        self._done = True

    def _release_all(self) -> Generator:
        for table_key, state in reversed(self._locks):
            yield from unlock(self.env, table_key, state)
        self._locks = []
